#!/usr/bin/env python3
"""Firefighter scenario — the paper's motivating application.

A fireman crosses a sensor field instrumented with temperature sensors
while two fire fronts grow and drift.  His handheld proxy issues a
spatiotemporal MAX query: "every 2 seconds, the hottest reading within
150 m of me, at most 1 second old".  Just-in-time prefetching keeps the
answers flowing even though the sensors sleep 98.9% of the time, and the
hot-spot readings visibly rise as his route passes near the fronts.

This example wires the library's layers together explicitly (instead of
using ``run_experiment``) to show the composable API: network + CCP +
routing + MobiQuery protocol + planner-provided motion profiles.

Run:
    python examples/firefighter.py
"""

import os

from repro.core.gateway import MobiQueryGateway
from repro.core.metrics import build_session_metrics
from repro.core.query import Aggregation, QuerySpec
from repro.core.service import MobiQueryConfig, MobiQueryProtocol
from repro.geometry.vec import Vec2
from repro.mobility.models import patrol_path
from repro.mobility.planner import FullKnowledgeProvider
from repro.net.field import fire_scenario_field
from repro.net.network import NetworkConfig, build_network
from repro.net.node import MobileEndpoint
from repro.net.routing import GeoRouter
from repro.power.ccp import CcpProtocol
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

#: override for quick smoke runs (CI examples-smoke)
DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "160"))


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(2026)
    tracer = Tracer()

    # --- the burning sensor field -----------------------------------
    field = fire_scenario_field(region_side=450.0)
    network_config = NetworkConfig(sleep_period_s=9.0)
    network = build_network(sim, network_config, streams, tracer, field_model=field)
    CcpProtocol().apply(network, streams)
    print(f"CCP backbone: {len(network.active_nodes)}/{network_config.n_nodes} "
          f"nodes stay awake")

    # --- the fireman's route (he knows where he is heading) ----------
    route = patrol_path(
        [Vec2(40, 40), Vec2(220, 120), Vec2(360, 300), Vec2(200, 380)],
        speed=4.0,
    )
    proxy = MobileEndpoint(
        node_id=90_000,
        sim=sim,
        channel=network.channel,
        rng=streams.stream("proxy"),
        position_fn=route.position_at,
        tracer=tracer,
    )
    network.channel.register_mobile(proxy)

    # --- the spatiotemporal query ------------------------------------
    spec = QuerySpec(
        attribute="temperature",
        aggregation=Aggregation.MAX,
        radius_m=150.0,
        period_s=2.0,
        freshness_s=1.0,
        lifetime_s=DURATION_S,
    )
    protocol = MobiQueryProtocol(network, GeoRouter(network, tracer),
                                 MobiQueryConfig(prefetch_policy="jit"), tracer)
    gateway = MobiQueryGateway(
        proxy, network, spec, protocol,
        FullKnowledgeProvider(route, DURATION_S), tracer,
    )
    gateway.start()

    print("Fireman advancing at 4 m/s; querying MAX temperature "
          f"in a {spec.radius_m:.0f} m disk every {spec.period_s:.0f} s...\n")
    sim.run(until=DURATION_S + 0.5)

    # --- the temperature picture he saw ------------------------------
    metrics = build_session_metrics(gateway, network, spec, route, DURATION_S)
    print(" t(s)   position          hottest reading   fidelity")
    print(" ----   ---------------   ---------------   --------")
    for record in metrics.records:
        if record.k % 5 != 0:
            continue
        pos = record.user_position
        value = "   (missed)" if record.value is None else f"{record.value:9.1f} C"
        print(f" {record.deadline:5.0f}   ({pos.x:5.0f}, {pos.y:5.0f})   "
              f"{value}       {record.fidelity:6.1%}")

    peak = max((r.value for r in metrics.records if r.value is not None))
    print(f"\nHottest reading on the route: {peak:.1f} C")
    print(f"Success ratio: {metrics.success_ratio():.1%}  "
          f"(fidelity >= 95% and on-time)")
    print(f"Mean power per sleeping sensor: "
          f"{__import__('repro').measure_power(network).mean_sleeper_power_w * 1000:.0f} mW")


if __name__ == "__main__":
    main()
