#!/usr/bin/env python3
"""Search-and-rescue robot — motion planner vs history predictor.

The paper's second motivating application: an autonomous robot explores a
field, periodically querying surrounding sensors for hazard levels.  A
robot *plans* its motion, so profiles can be handed to MobiQuery ahead of
time (positive advance time Ta); a human-carried proxy must *predict*
motion from GPS history (negative Ta, plus location error).

This example runs the same mission twice — once with planner profiles
(Ta = +10 s) and once with a GPS-error history predictor — and compares
the service quality, reproducing the paper's Section 6.3 message: advance
knowledge buys near-perfect service; prediction still works, at a cost.

Run:
    python examples/rescue_robot.py
"""

import os

from repro.experiments.config import paper_section63_config
from repro.experiments.runner import run_experiment

#: override for quick smoke runs (CI examples-smoke)
DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "240"))
CHANGE_INTERVAL_S = 70.0


def describe(label: str, result) -> None:
    metrics = result.metrics
    print(f"\n--- {label} ---")
    print(f"success ratio        : {metrics.success_ratio():.1%}")
    print(f"mean data fidelity   : {metrics.mean_fidelity():.1%}")
    print(f"deadline-met ratio   : {metrics.deadline_ratio():.1%}")
    mean_err = sum(r.prediction_error_m for r in metrics.records) / len(metrics.records)
    print(f"mean prediction error: {mean_err:.1f} m")
    low = [r.k for r in metrics.records if r.fidelity < 0.95]
    print(f"below-bar periods    : {len(low)} of {metrics.num_periods}")


def main() -> None:
    print("Mission: query hazard levels every 2 s within 150 m, "
          f"for {DURATION_S:.0f} s; motion changes every {CHANGE_INTERVAL_S:.0f} s.")

    print("\n[1/2] Robot with a motion planner (profiles 10 s in advance)...")
    planner_result = run_experiment(
        paper_section63_config(
            sleep_period_s=9.0,
            change_interval_s=CHANGE_INTERVAL_S,
            advance_time_s=10.0,
            seed=42,
            duration_s=DURATION_S,
        )
    )
    describe("motion planner, Ta = +10 s", planner_result)

    print("\n[2/2] Human-carried proxy with GPS-history prediction "
          "(10 m fixes, 8 s sampling)...")
    predictor_result = run_experiment(
        paper_section63_config(
            sleep_period_s=9.0,
            change_interval_s=CHANGE_INTERVAL_S,
            gps_error_m=10.0,
            seed=42,
            duration_s=DURATION_S,
        )
    )
    describe("history predictor, GPS error <= 10 m", predictor_result)

    gain = (
        planner_result.metrics.success_ratio()
        - predictor_result.metrics.success_ratio()
    )
    print(f"\nAdvance knowledge bought {gain:+.1%} success ratio — the paper's")
    print("Section 6.3 conclusion: MobiQuery exploits early profiles when it")
    print("can, and degrades gracefully under late, noisy prediction.")


if __name__ == "__main__":
    main()
