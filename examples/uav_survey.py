#!/usr/bin/env python3
"""UAV survey — approximate queries on the accuracy/energy frontier.

Four survey UAVs mow the field in fast lawnmower sweeps (12 m/s).  At
that speed the exact protocol pays heavily: every period it builds a
collection tree the vehicle has already half-outrun.  The ``repro.approx``
summary plane answers the same queries from cached per-region partial
aggregates instead — zero new frames on air — and declares a per-period
``error_bound`` so the user knows exactly what the discount cost.

This example runs the pinned ``uav-survey`` scenario twice — once at its
native ``coarse`` accuracy, once as the ``exact`` twin — and prints the
frontier: frames on air, success, and the observed-vs-declared error for
every period both legs delivered.

Run:
    python examples/uav_survey.py
"""

import os

from repro.api.scenarios import get_scenario, run_scenario

#: override for quick smoke runs (CI examples-smoke)
DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "60"))


def main() -> None:
    spec = get_scenario("uav-survey").with_overrides(
        duration_s=min(DURATION_S, 60.0)
    )
    print(f"scenario={spec.name} duration={spec.duration_s:.0f}s "
          f"(4 UAVs, 70 m disks, 3 s periods, 12 m/s sweeps)\n")

    coarse = run_scenario(spec)                      # native accuracy
    exact = run_scenario(spec, accuracy="exact")     # the exact twin

    print(f"{'leg':<8} {'frames':>7} {'collided':>9} {'success':>8} "
          f"{'events':>7}")
    print("-" * 44)
    for name, result in (("coarse", coarse), ("exact", exact)):
        print(f"{name:<8} {result.frames_sent:>7} "
              f"{result.frames_collided:>9} {result.mean_success:>7.1%} "
              f"{result.events_executed:>7}")

    ratio = exact.frames_sent / max(1, coarse.frames_sent)
    print(f"\nframe ratio exact/coarse: {ratio:.0f}x")

    # Per-period honesty: the coarse answer must sit within its own
    # declared error bound of whatever the exact protocol computed.
    compared = 0
    worst = 0.0
    violations = 0
    for h_coarse, h_exact in zip(coarse.handles, exact.handles):
        for k in range(1, h_coarse.spec.num_periods + 1):
            oc = h_coarse.period_outcome(k)
            oe = h_exact.period_outcome(k)
            if oc is None or oe is None:
                continue
            if not (oc.delivered and oe.delivered):
                continue
            if oc.value is None or oe.value is None:
                continue
            error = abs(oc.value - oe.value)
            worst = max(worst, error)
            compared += 1
            if error > (oc.error_bound or 0.0) + 1e-9:
                violations += 1

    print(f"error bounds: {compared} delivered period pairs compared, "
          f"worst observed error {worst:.4f}, "
          f"{violations} bound violations")
    if violations:
        raise SystemExit("declared error bounds were violated")
    print("\nevery coarse answer honoured its declared error bound")


if __name__ == "__main__":
    main()
