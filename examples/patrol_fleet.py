#!/usr/bin/env python3
"""Patrol fleet — N robots querying one shared sensor field concurrently.

A security fleet patrols a 450 m x 450 m sensor field: each robot loops a
rectangular beat at walking speed, continuously asking "average hazard
reading within 60 m of me, every 2 s, data at most 1 s old".  All robots
share one network, one duty-cycling backbone and one protocol instance —
their query trees coexist on the same nodes, keyed by ``(user_id,
query_id)`` — and the fleet is dispatched one robot every few seconds,
which also desynchronises the report bursts of neighbouring beats.

This is the quickstart for the **service API** with custom motion: each
robot is one ``QueryRequest`` carrying its own patrol path, submitted to
a shared ``MobiQueryService``.  Midway through the run one robot is
recalled — ``handle.cancel()`` tears down every piece of its in-network
state (collector chain, query trees, buffered setups) while the rest of
the fleet keeps patrolling.

The same fleet also exists declaratively: ``repro scenario patrol-fleet``.

Run:
    python examples/patrol_fleet.py
"""

import os

from repro import ExperimentConfig, MobiQueryService, QueryRequest, MODE_JIT
from repro.core.query import Aggregation
from repro.geometry.vec import Vec2
from repro.mobility.models import patrol_path

NUM_ROBOTS = 6
DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "90"))
PATROL_SPEED_MPS = 4.0
QUERY_RADIUS_M = 60.0
DISPATCH_SPACING_S = 2.5
RECALL_ROBOT = 4          # recalled to base mid-run
RECALL_AT_S = DURATION_S / 2


def beat_waypoints(index: int) -> list:
    """Rectangular beats tiling the field, one per robot (wrap after 6)."""
    col, row = index % 3, (index // 3) % 2
    x0, y0 = 40.0 + col * 130.0, 50.0 + row * 190.0
    w, h = 110.0, 150.0
    return [
        Vec2(x0, y0),
        Vec2(x0 + w, y0),
        Vec2(x0 + w, y0 + h),
        Vec2(x0, y0 + h),
        Vec2(x0, y0),
    ]


def main() -> None:
    print(f"Dispatching {NUM_ROBOTS} patrol robots onto one shared field...")
    service = MobiQueryService(
        ExperimentConfig(mode=MODE_JIT, seed=11, duration_s=DURATION_S)
    )
    print(f"Backbone: {service.backbone_size} of "
          f"{service.config.network.n_nodes} nodes stay awake (CCP)")

    handles = []
    for robot in range(NUM_ROBOTS):
        start = robot * DISPATCH_SPACING_S
        handle = service.submit(
            QueryRequest(
                attribute="hazard",
                aggregation=Aggregation.AVG,
                radius_m=QUERY_RADIUS_M,
                period_s=2.0,
                freshness_s=1.0,
                start_s=start,
                path=patrol_path(
                    beat_waypoints(robot), speed=PATROL_SPEED_MPS, loops=4
                ),
            )
        )
        handles.append(handle)
        print(f"  robot {handle.user_id}: beat at {beat_waypoints(robot)[0]}, "
              f"dispatched t={start:.1f}s")

    # Patrol until mid-run, then recall one robot: cancel() releases all
    # of its in-network state while the rest of the fleet keeps going.
    service.run_until(RECALL_AT_S)
    recalled = handles[RECALL_ROBOT]
    recalled.cancel()
    key = recalled.session_key
    print(f"\nRecalled robot {recalled.user_id} at t={RECALL_AT_S:.0f}s: "
          f"{service.protocol.tree_state_count(session=key)} tree states, "
          f"{len(service.protocol.live_collector_periods(session=key))} "
          f"collectors left in-network (all torn down)")

    result = service.finalize()

    print("\n robot  status     start  periods  success  fidelity")
    print(" -----  ---------  -----  -------  -------  --------")
    for handle, session in zip(handles, result.sessions):
        m = session.metrics
        print(f" {session.user_id:>5}  {handle.status:<9}  "
              f"{session.start_s:4.1f}s  {m.num_periods:>7}  "
              f"{m.success_ratio():6.1%}  {m.mean_fidelity():7.1%}")
    print(f"\nFleet mean success ratio: {result.mean_success_ratio():.1%}")
    print(f"Fleet worst user        : {result.min_success_ratio():.1%}")
    channel = service.network.channel
    print(f"Frames on air: {channel.frames_sent}, "
          f"collided receptions: {channel.frames_collided}")
    # drain the 2 s state-GC grace past the last deadlines
    service.run_until(DURATION_S + 3.0)
    print(f"Live in-network sessions after the run: "
          f"{len(service.protocol.active_sessions())} (all state GC'd)")


if __name__ == "__main__":
    main()
