#!/usr/bin/env python3
"""Patrol fleet — N robots querying one shared sensor field concurrently.

A security fleet patrols a 450 m x 450 m sensor field: each robot loops a
rectangular beat at walking speed, continuously asking "average reading
within 60 m of me, every 2 s, data at most 1 s old".  All robots share
one network, one duty-cycling backbone and one MobiQuery protocol
instance — their query trees coexist on the same nodes, keyed by
``(user_id, query_id)`` — and the fleet is dispatched one robot every
few seconds (staggered arrivals), which also desynchronises the report
bursts of neighbouring beats.

This is the quickstart for the ``repro.workload`` layer: build plans,
add users to a :class:`Workload`, run the shared kernel, score each
session independently.

Run:
    python examples/patrol_fleet.py
"""

from repro.core.gateway import SessionScheduler  # noqa: F401  (part of the tour)
from repro.core.query import Aggregation, QuerySpec
from repro.core.service import MobiQueryConfig, MobiQueryProtocol
from repro.geometry.vec import Vec2
from repro.mobility.models import patrol_path
from repro.mobility.planner import FullKnowledgeProvider
from repro.net.network import NetworkConfig, build_network
from repro.net.routing import GeoRouter
from repro.power.ccp import CcpProtocol
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer
from repro.workload import UserPlan, Workload, arrival_times

NUM_ROBOTS = 6
DURATION_S = 90.0
PATROL_SPEED_MPS = 4.0
QUERY_RADIUS_M = 60.0
DISPATCH_SPACING_S = 2.5


def beat_waypoints(index: int) -> list:
    """Rectangular beats tiling the field, one per robot (wrap after 6)."""
    col, row = index % 3, (index // 3) % 2
    x0, y0 = 40.0 + col * 130.0, 50.0 + row * 190.0
    w, h = 110.0, 150.0
    return [
        Vec2(x0, y0),
        Vec2(x0 + w, y0),
        Vec2(x0 + w, y0 + h),
        Vec2(x0, y0 + h),
        Vec2(x0, y0),
    ]


def main() -> None:
    print(f"Dispatching {NUM_ROBOTS} patrol robots onto one shared field...")
    sim = Simulator()
    streams = RandomStreams(11)
    tracer = Tracer()
    network = build_network(sim, NetworkConfig(), streams, tracer)
    CcpProtocol().apply(network, streams)
    geo = GeoRouter(network)
    protocol = MobiQueryProtocol(network, geo, MobiQueryConfig(), tracer)

    workload = Workload(network, tracer)
    starts = arrival_times(
        NUM_ROBOTS, process="staggered", spacing_s=DISPATCH_SPACING_S
    )
    for robot in range(NUM_ROBOTS):
        path = patrol_path(
            beat_waypoints(robot), speed=PATROL_SPEED_MPS, loops=4
        )
        spec = QuerySpec(
            attribute="hazard",
            aggregation=Aggregation.AVG,
            radius_m=QUERY_RADIUS_M,
            period_s=2.0,
            freshness_s=1.0,
            lifetime_s=DURATION_S - starts[robot],
            user_id=robot,
            start_s=starts[robot],
        )
        plan = UserPlan(
            user_id=robot,
            spec=spec,
            path=path,
            provider=FullKnowledgeProvider(path, DURATION_S),
        )
        workload.add_mobiquery_user(
            plan, protocol, rng=streams.stream(f"proxy.{robot}")
        )
        print(f"  robot {robot}: beat at {beat_waypoints(robot)[0]}, "
              f"dispatched t={starts[robot]:.1f}s")

    print(f"\nBackbone: {len(network.active_nodes)} of "
          f"{network.config.n_nodes} nodes stay awake (CCP)")
    # tail covers the last deliveries plus the 2 s state-GC grace
    workload.run(until=DURATION_S + 3.0)
    result = workload.finalize(DURATION_S)

    print("\n robot  start  periods  success  fidelity  deliveries")
    print(" -----  -----  -------  -------  --------  ----------")
    for session in result.sessions:
        m = session.metrics
        print(
            f" {session.user_id:>5}  {session.start_s:4.1f}s  "
            f"{m.num_periods:>7}  {m.success_ratio():6.1%}  "
            f"{m.mean_fidelity():7.1%}  {session.deliveries:>10}"
        )
    print(f"\nFleet mean success ratio: {result.mean_success_ratio():.1%}")
    print(f"Fleet worst user        : {result.min_success_ratio():.1%}")
    print(f"Frames on air: {network.channel.frames_sent}, "
          f"collided receptions: {network.channel.frames_collided}")
    print(f"Live in-network sessions after the run: "
          f"{len(protocol.active_sessions())} (all state GC'd)")


if __name__ == "__main__":
    main()
