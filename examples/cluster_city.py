#!/usr/bin/env python3
"""Cluster city — 64 mobile users served by 4 regional shard worlds.

A city-scale deployment: 64 users roam a 450 m x 450 m sensor field, far
past the ~32-user point where one shared medium (and one Python kernel)
saturates.  ``ClusterService`` partitions the field into 4 near-square
regions (balanced-kd), instantiates one *full world* per region — its own
kernel, channel, duty-cycling backbone and protocol engine — and routes
every query to the shard its geometry lives in.  The caller-facing API is
exactly the single-world one: the same ``submit()``, the same
``SessionHandle`` streaming/cancel/result lifecycle — callers cannot tell
a cluster from a single world (``shards=1`` is bit-identical to
``MobiQueryService``).

Requests with explicit paths route by footprint overlap (shown below with
four district patrols); requests without a path spread least-loaded and
the serving shard synthesises the walk inside its own region.  With
``workers=N`` on a multi-core machine the batch path runs shard kernels
in worker processes for real parallel speedup; on one core it falls back
to in-process lockstep epochs (still faster than one big world — four
50-node regions do less per-frame work than one 200-node field).

Run:
    python examples/cluster_city.py
"""

import os
import time

from repro import ClusterService, ExperimentConfig, QueryRequest, MODE_JIT
from repro.geometry.vec import Vec2
from repro.mobility.models import patrol_path

NUM_USERS = 64
NUM_SHARDS = 4
WORKERS = 4                      # engages on multi-core machines only
DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "60"))
QUERY_RADIUS_M = 60.0
DISPATCH_SPACING_S = max(0.1, (DURATION_S - 5.0) / NUM_USERS)


def district_patrol(region_center: Vec2) -> "patrol_path":
    """A small patrol loop around one shard's district centre."""
    c = region_center
    return patrol_path(
        [
            Vec2(c.x - 30, c.y - 30),
            Vec2(c.x + 30, c.y - 30),
            Vec2(c.x + 30, c.y + 30),
            Vec2(c.x - 30, c.y + 30),
            Vec2(c.x - 30, c.y - 30),
        ],
        speed=4.0,
        loops=6,
    )


def main() -> None:
    cluster = ClusterService(
        ExperimentConfig(mode=MODE_JIT, seed=1, duration_s=DURATION_S),
        shards=NUM_SHARDS,
        workers=WORKERS,
    )
    print(f"City cluster: {cluster.num_shards} regional worlds "
          f"({cluster.partitioner.describe()}), "
          f"{sum(c.network.n_nodes for c in cluster.shard_configs)} sensors total")
    for index, (region, config) in enumerate(
        zip(cluster.regions, cluster.shard_configs)
    ):
        print(f"  shard {index}: [{region.x_min:.0f},{region.y_min:.0f}]–"
              f"[{region.x_max:.0f},{region.y_max:.0f}] m, "
              f"{config.network.n_nodes} nodes, seed {config.seed}")

    # Four named district patrols route by geometry; the rest of the city
    # submits pathless requests that spread least-loaded.
    handles = []
    for index, region in enumerate(cluster.regions):
        handle = cluster.submit(
            QueryRequest(
                radius_m=QUERY_RADIUS_M,
                period_s=2.0,
                freshness_s=1.0,
                path=district_patrol(region.center()),
            )
        )
        handles.append(handle)
        print(f"  patrol {handle.user_id} routed to shard "
              f"{cluster.shard_of(handle)} (footprint overlap)")
    for user in range(NUM_USERS - NUM_SHARDS):
        handles.append(
            cluster.submit(
                QueryRequest(
                    radius_m=QUERY_RADIUS_M,
                    period_s=2.0,
                    freshness_s=1.0,
                    start_s=user * DISPATCH_SPACING_S,
                )
            )
        )
    loads = [service.admitted_count() for service in cluster.services]
    print(f"\n{len(handles)} users admitted; per-shard load: {loads}")

    started = time.perf_counter()
    result = cluster.close()        # workers=N path on multi-core machines
    wall = time.perf_counter() - started

    stats = cluster.stats()
    ratios = result.success_ratios()
    print(f"\nRan {stats.now:.0f} simulated seconds in {wall:.2f} s wall"
          + (" (parallel shard workers)" if cluster.parallel_used
             else " (in-process lockstep)"))
    print(f"Fleet mean success ratio: {result.mean_success_ratio():.1%}")
    print(f"Fleet worst user        : {min(ratios):.1%}")
    print(f"Frames on air: {stats.frames_sent}, collided receptions: "
          f"{stats.frames_collided}, kernel events: {stats.events_executed}, "
          f"backbone: {stats.backbone_size} nodes across "
          f"{stats.shards} shards")


if __name__ == "__main__":
    main()
