#!/usr/bin/env python3
"""Blackout drill: inject a regional outage and read the recovery marks.

A 16-user fleet queries the field while a power failure takes out every
node within 100 m of the field centre for a fifth of the run, with a 30%
radio-corruption window layered on top.  The fault plane is declarative
and deterministic: the plan below is plain data (the ``faults`` key of a
scenario, or ``repro run --faults plan.json``), executed off a dedicated
RNG stream — so the fault-free twin run in the second half is
*bit-identical* to a world with no fault plane at all, and the two runs
only diverge once the first fault fires.

Recovery is the protocol's job, not the injector's: collectors killed by
the outage are re-elected onto surviving backbone nodes (bounded retry +
backoff), reports re-route around dead parents, and periods the protocol
could not serve cleanly are *marked degraded* in the scored session
rather than silently dropped.  The drill prints those marks next to the
fault-free twin so the outage's cost — and the recovery — is visible.

Run:
    python examples/blackout_drill.py
"""

import os

from repro import ExperimentConfig, MobiQueryService, MODE_JIT, Tracer
from repro.api.scenarios import ScenarioSpec, build_requests

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "90"))


def drill_spec() -> ScenarioSpec:
    """The blackout-recovery drill, fault times scaled to the duration."""
    d = DURATION_S
    return ScenarioSpec(
        name="blackout-drill",
        seed=7,
        duration_s=d,
        faults={
            "blackouts": [
                {"x": 225.0, "y": 225.0, "radius_m": 100.0,
                 "at_s": d / 3, "duration_s": 2 * d / 9}
            ],
            "degradations": [
                {"at_s": d * 35 / 90, "duration_s": d / 18,
                 "corruption_prob": 0.3}
            ],
        },
        requests=(
            {"radius_m": 60.0, "period_s": 2.5, "freshness_s": 1.25,
             "count": 16, "spacing_s": 1.5},
        ),
    )


def run(spec: ScenarioSpec, faults: bool):
    tracer = Tracer(keep=[
        "blackout-start", "blackout-end",
        "degradation-start", "degradation-end",
        "node-crashed", "node-recovered", "collector-reelected",
    ])
    config = ExperimentConfig(mode=MODE_JIT, seed=spec.seed,
                              duration_s=spec.duration_s)
    service = MobiQueryService(
        config, tracer=tracer,
        faults=spec.fault_plan() if faults else None,
    )
    for request in build_requests(spec):
        service.submit(request).require_admitted()
    return service.close(), tracer


def main() -> None:
    spec = drill_spec()
    faulted, tracer = run(spec, faults=True)
    clean, _ = run(spec, faults=False)

    print("Fault timeline (all deterministic, dedicated 'faults' RNG stream):")
    for kind in ("blackout-start", "blackout-end",
                 "degradation-start", "degradation-end"):
        for record in tracer.records(kind):
            print(f"  t={record.time:6.1f}s  {kind:<18} {record.fields}")
    print(f"  nodes crashed/recovered: {tracer.counts['node-crashed']}"
          f"/{tracer.counts['node-recovered']}, collector re-elections: "
          f"{tracer.counts['collector-reelected']}\n")

    print("Reading the degradation marks — periods the protocol could not")
    print("serve cleanly during the outage are counted per session, never")
    print("silently dropped (SessionResult.degraded_periods):\n")
    print(" user  degraded  success(drill)  success(no-fault)")
    print(" ----  --------  --------------  -----------------")
    clean_by_user = {s.user_id: s for s in clean.sessions}
    for session in faulted.sessions:
        twin = clean_by_user[session.user_id]
        marker = "  <- outage path" if session.degraded_periods else ""
        print(f" {session.user_id:>4}  {session.degraded_periods:>8}  "
              f"{session.success_ratio:14.3f}  "
              f"{twin.success_ratio:17.3f}{marker}")

    print(f"\nfleet mean success: {faulted.mean_success_ratio():.3f} under "
          f"the drill vs {clean.mean_success_ratio():.3f} fault-free")
    degraded = sum(s.degraded_periods for s in faulted.sessions)
    print(f"degraded periods : {degraded} across "
          f"{sum(1 for s in faulted.sessions if s.degraded_periods)} sessions")
    print("\nThe same drill is pinned as a benchmark gate "
          "(benchmarks/test_blackout_recovery.py): post-recovery success "
          "must stay within 5 pp of the fault-free twin.")


if __name__ == "__main__":
    main()
