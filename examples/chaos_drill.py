#!/usr/bin/env python3
"""Chaos drill: a hostile wire, a resilient client, and a crash-safe log.

This example walks the whole PR-9 robustness surface in one sitting:

1. **Wire chaos** — the scenario's fault plan grows a ``wire`` section
   (connection resets, injected 5xx, truncated response bodies, delays).
   The daemon executes it as HTTP middleware off a dedicated
   ``"faults.wire"`` RNG stream, so the simulated world underneath stays
   bit-identical to a chaos-free run.
2. **Edge admission** — a per-tenant token bucket plus live overload
   ceilings (live sessions, pump lag) shed excess submits *before* they
   touch any state: typed ``429 rate-limited`` / ``503 overloaded``
   responses carrying ``Retry-After``, zero replay perturbation.
3. **The resilient client** — bounded retries with decorrelated-jitter
   backoff (its own seeded stream) plus an idempotency key per submit:
   a committed submit whose response died on the wire retries into the
   *same* session, never a duplicate.
4. **The crash-safe WAL** — every committed op is appended to
   ``SERVE_<name>.wal`` as it happens.  We SIGKILL the daemon (well:
   stop answering and never drain, the in-process equivalent) and prove
   the flushed prefix replays bit-identically, twice over.

The CLI twin of this script is ``make chaos-smoke``::

    repro serve --file chaos_scenario.json --time-scale 4 --wal-flush 2 &
    repro slam  --file chaos_scenario.json --retries 8 --rate 16
    kill -KILL %1                         # no drain, no mercy
    repro replay --partial SERVE_<name>.wal

Run:
    python examples/chaos_drill.py
"""

import os
import tempfile
import threading

from repro.api.scenarios import get_scenario
from repro.serve import (
    EdgeConfig,
    EdgeGuard,
    ServeApp,
    SlamConfig,
    WireError,
    load_partial_log,
    make_server,
    markdown_table,
    run_slam,
    verify_partial_log,
)

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "24"))

#: every wire failure mode on, none overwhelming — a client with a few
#: retries should sail through
WIRE_CHAOS = {
    "reset_prob": 0.06,
    "delay_prob": 0.10,
    "delay_s": 0.05,
    "error_prob": 0.06,
    "truncate_prob": 0.06,
}


def demo_edge_guard() -> None:
    """The admission edge, in isolation on a fake clock.

    Rate 2/s with burst 2: two submits pass, the third is a typed 429
    whose Retry-After is the exact refill arithmetic; half a second
    later a token has accrued and the tenant is welcome again.  The
    other tenant never notices.
    """
    clock = [0.0]
    guard = EdgeGuard(EdgeConfig(rate=2.0, burst=2.0), clock=lambda: clock[0])
    for tenant, expect in [("alice", "ok"), ("alice", "ok"),
                           ("alice", "shed"), ("bob", "ok")]:
        try:
            guard.admit(tenant, live_sessions=0, pump_lag_s=0.0)
            verdict = "admitted"
        except WireError as exc:
            verdict = (f"shed: {exc.code} (Retry-After "
                       f"{exc.retry_after_s:g}s)")
        print(f"  t={clock[0]:.1f}s  {tenant:<5} -> {verdict}")
        assert verdict.startswith("admitted" if expect == "ok" else "shed")
    clock[0] = 0.5  # one token has refilled
    guard.admit("alice", live_sessions=0, pump_lag_s=0.0)
    print(f"  t={clock[0]:.1f}s  alice -> admitted (bucket refilled)")
    print(f"  edge counters: {guard.snapshot()!r}\n")


def main() -> int:
    spec = get_scenario("rush-hour-burst").with_overrides(
        duration_s=DURATION_S, faults={"wire": WIRE_CHAOS}
    )
    print(f"=== chaos_drill: {spec.name}, {spec.duration_s:g} sim-s, "
          f"wire chaos ON ===\n")

    # -- the edge, demonstrated deterministically ----------------------
    print("edge admission (token bucket, fake clock):")
    demo_edge_guard()

    # -- the daemon: chaos middleware + crash-safe WAL -----------------
    wal_path = os.path.join(tempfile.mkdtemp(), "SERVE_chaos-drill.wal")
    app = ServeApp(spec, time_scale=4.0, wal_path=wal_path, wal_flush_every=2)
    app.start()
    server = make_server(app, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address
    url = f"http://{host}:{port}"
    print(f"daemon listening on {url} (chaos plane armed, WAL at "
          f"{wal_path})\n")

    # -- the slam: retrying clients vs the hostile wire ----------------
    config = SlamConfig(
        url=url, rate=16.0, clients=4, duration_s=90.0, retries=8, seed=1
    )
    report = run_slam(spec, config)
    print()
    print(markdown_table(report))
    counts = report["counts"]
    chaos = app.chaos.snapshot()
    print(f"\nchaos fired: {chaos['resets']} resets, "
          f"{chaos['injected_errors']} injected 5xx, "
          f"{chaos['truncations']} truncations, {chaos['delays']} delays")
    print(f"client absorbed: {counts['retries']} retries, "
          f"{counts['gave_up']} gave up, "
          f"{counts['sessions_finished']}/{counts['admitted']} sessions "
          f"completed")

    # -- the SIGKILL: stop answering, never drain, read the WAL --------
    server.shutdown()
    server.server_close()
    data = load_partial_log(wal_path)
    submits = [op for op in data["ops"] if op["op"] == "submit"]
    unique = len({op["session"] for op in submits})
    print(f"\nWAL after the 'crash': {len(data['ops'])} flushed ops, "
          f"{len(submits)} submits, {unique} unique sessions "
          f"(double-admits: {len(submits) - unique})")
    ok, first, second = verify_partial_log(data)
    if not ok:
        print("PARTIAL REPLAY DIVERGED — determinism broken!")
        return 1
    print(f"partial replay: two independent executions agree bit for bit "
          f"({len(first['sessions'])} sessions, "
          f"frames sent={first['frames_sent']})")
    return 0 if counts["errors"] == 0 and len(submits) == unique else 1


if __name__ == "__main__":
    raise SystemExit(main())
