#!/usr/bin/env python3
"""Quickstart: submit one query to the service and stream its results.

A user walks through a 200-node sensor field asking the MobiQuery
service: "every 2 seconds, give me the average temperature within 150 m
of wherever I am, aggregated from readings at most 1 second old".  The
network duty-cycles at 1.1% (100 ms awake per 9 s); just-in-time
prefetching wakes exactly the right nodes at the right time.

This is the three-step service API:

1. build a ``MobiQueryService`` (the world: network + kernel + protocol),
2. ``submit()`` a ``QueryRequest`` and get back a session handle,
3. iterate ``handle.results()`` — each outcome arrives as its period's
   deadline passes on the simulated clock.

Run:
    python examples/quickstart.py
"""

import os

from repro import ExperimentConfig, MobiQueryService, QueryRequest, MODE_JIT

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "120"))


def main() -> None:
    service = MobiQueryService(
        ExperimentConfig(
            mode=MODE_JIT,  # the paper's just-in-time prefetching
            seed=7,
            duration_s=DURATION_S,
        )
    )
    print(f"Backbone: {service.backbone_size} of "
          f"{service.config.network.n_nodes} nodes stay awake (CCP)")

    handle = service.submit(
        QueryRequest(
            attribute="temperature",
            radius_m=150.0,   # Rq
            period_s=2.0,     # Tperiod
            freshness_s=1.0,  # Tfresh
        )
    )
    print(f"Session admitted: user {handle.user_id}, query {handle.query_id}\n")

    print(" k   deadline  value    on-time  contributors")
    print(" --  --------  -------  -------  ------------")
    for outcome in handle.results():  # advances the simulated clock
        value = "-" if outcome.value is None else f"{outcome.value:7.2f}"
        print(f" {outcome.k:>2}  {outcome.deadline:7.1f}s  {value:>7}  "
              f"{'yes' if outcome.on_time else 'NO':>7}  "
              f"{outcome.contributors:>12}")

    result = handle.result()  # the scored session
    metrics = result.metrics
    print(f"\nSuccess ratio (deadline met & fidelity >= 95%): "
          f"{metrics.success_ratio():.1%}")
    print(f"Mean data fidelity: {metrics.mean_fidelity():.1%}")
    print(f"Warmup periods at session start: "
          f"{metrics.warmup_periods_observed()}")
    print(f"Max trees prefetched ahead of the user: "
          f"{service.storage.max_prefetch_length}")
    print(f"Frames on air: {service.network.channel.frames_sent}")


if __name__ == "__main__":
    main()
