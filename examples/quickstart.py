#!/usr/bin/env python3
"""Quickstart: run one MobiQuery session and print the per-period results.

A user walks through a 200-node sensor field issuing a spatiotemporal
query: "every 2 seconds, give me the average temperature within 150 m of
wherever I am, aggregated from readings at most 1 second old".  The
network duty-cycles at 1.1% (100 ms awake per 9 s); just-in-time
prefetching wakes exactly the right nodes at the right time.

Run:
    python examples/quickstart.py
"""

from repro import ExperimentConfig, MODE_JIT, run_experiment


def main() -> None:
    config = ExperimentConfig(
        mode=MODE_JIT,  # the paper's just-in-time prefetching
        seed=7,
        duration_s=120.0,  # a 1-minute session (60 query periods)
    )
    print("Building the sensor field and running the query session...")
    result = run_experiment(config)
    metrics = result.metrics
    assert metrics is not None

    print(f"\nBackbone: {result.backbone_size} of "
          f"{config.network.n_nodes} nodes stay awake (CCP)")
    print(f"Frames on air: {result.frames_sent}")
    print(f"Max trees prefetched ahead of the user: {result.max_prefetch_length}")

    print("\n k   deadline  fidelity  value    on-time")
    print(" --  --------  --------  -------  -------")
    for record in metrics.records:
        value = "-" if record.value is None else f"{record.value:7.2f}"
        print(
            f" {record.k:>2}  {record.deadline:7.1f}s  "
            f"{record.fidelity:8.2f}  {value}  {'yes' if record.on_time else 'NO'}"
        )

    print(f"\nSuccess ratio (deadline met & fidelity >= 95%): "
          f"{metrics.success_ratio():.1%}")
    print(f"Mean data fidelity: {metrics.mean_fidelity():.1%}")
    print(f"Warmup periods at session start: {metrics.warmup_periods_observed()}")
    print(f"Mean power per sleeping node: "
          f"{result.power.mean_sleeper_power_w * 1000:.0f} mW")


if __name__ == "__main__":
    main()
