#!/usr/bin/env python3
"""Backbone ablation — CCP vs SPAN vs GAF vs always-on.

The paper runs MobiQuery over CCP but notes any backbone-maintaining power
management protocol (SPAN, GAF) composes with it.  This example measures
what the choice costs: backbone size, sensing coverage, connectivity, and
the steady-state power bill.

Run:
    python examples/backbone_ablation.py
"""

import os

from repro.core.metrics import measure_power
from repro.net.network import NetworkConfig, build_network
from repro.power.base import PowerManagementProtocol
from repro.power.ccp import CcpProtocol
from repro.power.coverage import covered_fraction
from repro.power.gaf import AlwaysOnProtocol, GafProtocol
from repro.power.span import SpanProtocol
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams

SEED = 11
#: override for quick smoke runs (CI examples-smoke)
SETTLE_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "120"))


def evaluate(protocol: PowerManagementProtocol):
    sim = Simulator()
    streams = RandomStreams(SEED)
    network = build_network(sim, NetworkConfig(sleep_period_s=9.0), streams)
    active = protocol.apply(network, streams)
    sim.run(until=SETTLE_S)
    power = measure_power(network)
    mean_node_power = (
        power.mean_active_power_w * power.active_count
        + power.mean_sleeper_power_w * power.sleeper_count
    ) / (power.active_count + power.sleeper_count)
    return {
        "backbone": len(active),
        "coverage": covered_fraction(network, active, step_m=15.0),
        "connected": network.is_backbone_connected(),
        "mean_node_power_w": mean_node_power,
    }


def main() -> None:
    protocols = [
        ("CCP (paper)", CcpProtocol()),
        ("SPAN", SpanProtocol()),
        ("GAF", GafProtocol()),
        ("always-on", AlwaysOnProtocol()),
    ]
    print(f"{'protocol':<12} {'backbone':>8} {'coverage':>9} "
          f"{'connected':>10} {'mean power':>11}")
    print("-" * 55)
    rows = {}
    for name, protocol in protocols:
        stats = evaluate(protocol)
        rows[name] = stats
        print(
            f"{name:<12} {stats['backbone']:>5}/200 {stats['coverage']:>8.1%} "
            f"{str(stats['connected']):>10} {stats['mean_node_power_w']*1000:>8.0f} mW"
        )

    print("\nReading the table:")
    print(" * CCP keeps full sensing coverage with a modest backbone —")
    print("   what MobiQuery's query areas rely on.")
    print(" * SPAN/GAF guarantee connectivity only; coverage may dip, so")
    print("   some query-area sensors would never report.")
    print(" * always-on is the fidelity ceiling at ~5-6x the power bill.")
    assert rows["CCP (paper)"]["coverage"] > rows["GAF"]["coverage"] - 1e-9


if __name__ == "__main__":
    main()
