#!/usr/bin/env python3
"""Serve and slam: the always-on daemon, its wire API, and the proof.

``repro serve`` puts a query backend behind an HTTP/JSON session API:
clients POST query payloads, long-poll per-period outcomes as the
simulated world advances in real (scaled) time, and cancel mid-flight —
each under its own ``X-Repro-Token`` identity, with foreign sessions
refused by a typed error contract.  ``repro slam`` is the load
generator: it replays a scenario's arrival process at a configured rate
from N concurrent clients and reports admission/latency/success
percentiles.

The determinism lever: the daemon records every submission (payload +
admission decision + arrival time) in an op log.  After the drain this
script hands that log to ``replay_submission_log`` and checks the
in-process re-execution reproduces the live run's result fingerprints
bit for bit — a load test and a determinism proof in one artifact.

Everything here runs in-process on an ephemeral port; the CLI twin is::

    repro serve rush-hour-burst --port 8600 --time-scale 6 &
    repro slam  rush-hour-burst --url http://127.0.0.1:8600 --rate 16
    kill -TERM %1   # graceful drain, writes SERVE_<name>.json
    repro replay SERVE_rush-hour-burst.json

Run:
    python examples/serve_and_slam.py
"""

import json
import os
import threading

from repro.api.scenarios import get_scenario
from repro.serve import (
    ServeApp,
    ServeClient,
    SlamConfig,
    make_server,
    markdown_table,
    run_slam,
    verify_submission_log,
)

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "30"))


def main() -> int:
    spec = get_scenario("rush-hour-burst").with_overrides(
        duration_s=DURATION_S
    )
    print(f"=== serve_and_slam: {spec.name}, {spec.duration_s:g} sim-s ===\n")

    # -- the daemon: any QueryBackend behind HTTP/JSON -----------------
    # time_scale = simulated seconds per wall second.  Paced, so the
    # slam's burst lands before the horizon; the CLI default is 8.
    app = ServeApp(spec, time_scale=6.0)
    app.start()
    server = make_server(app, port=0)  # ephemeral port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address
    url = f"http://{host}:{port}"
    print(f"daemon listening on {url}")
    print(f"healthz: {ServeClient(url, 'probe').healthz()}\n")

    # -- the load generator: N clients replaying the arrival process ---
    config = SlamConfig(url=url, rate=16.0, clients=4, duration_s=90.0)
    report = run_slam(spec, config)
    print(markdown_table(report))

    # -- tenancy: a foreign token cannot touch another client's session
    victim = report["submissions"][0]["session"]
    status, resp = ServeClient(url, "mallory").request(
        "DELETE", f"/sessions/{victim}"
    )
    print(f"\nforeign cancel of session {victim}: HTTP {status} "
          f"{resp['error']['code']}")

    # -- graceful drain: no new submits, in-flight sessions finish -----
    app.begin_drain()
    drained = app.wait_drained(timeout_s=120.0)
    summary = app.finish()
    server.shutdown()
    server.server_close()
    sessions = summary["sessions"]
    print(f"\ndrain {'clean' if drained else 'TIMED OUT'}: "
          f"submitted={sessions['submitted']} admitted={sessions['admitted']} "
          f"rejected={sessions['rejected']} leak_total={summary['leak_total']}")

    # -- the replay proof ----------------------------------------------
    log = json.loads(
        json.dumps(app.log.to_dict(fingerprints=summary["fingerprints"]))
    )
    ok, recorded, replayed = verify_submission_log(log)
    fp = replayed
    print(f"replay {'ok' if ok else 'MISMATCH'}: "
          f"{len(fp['sessions'])} sessions, frames sent={fp['frames_sent']} "
          f"collided={fp['frames_collided']} "
          f"delivered={fp['frames_delivered']}")
    if not ok:
        print(f"  recorded: {recorded}\n  replayed: {replayed}")
        return 1
    if summary["leak_total"] or report["counts"]["errors"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
