"""Robustness and failure-injection integration tests."""

import pytest

from repro.core.gateway import MobiQueryGateway
from repro.core.metrics import build_session_metrics
from repro.core.query import QuerySpec
from repro.core.service import MobiQueryConfig, MobiQueryProtocol
from repro.geometry.vec import Vec2
from repro.mobility.path import PiecewisePath, Waypoint
from repro.mobility.planner import PlannerProfileProvider
from repro.net.node import MobileEndpoint
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

from .test_core_service import Stack


class TestMotionChangeAndCancel:
    def _turning_stack(self, sim, advance_time=0.0, tracer=None):
        """User walks east, then turns north at t=14 s."""
        path = PiecewisePath(
            [
                Waypoint(0.0, Vec2(60, 105)),
                Waypoint(14.0, Vec2(116, 105)),
                Waypoint(28.0, Vec2(116, 161)),
            ]
        )
        tracer = tracer if tracer is not None else Tracer()
        stack = Stack(
            sim,
            user_path=path,
            duration=28.0,
            tracer=tracer,
            provider=PlannerProfileProvider(path, 28.0, advance_time_s=advance_time),
        )
        return stack

    def test_cancel_releases_stale_collectors(self, sim):
        tracer = Tracer(keep=["collector-released"])
        stack = self._turning_stack(sim, advance_time=0.0, tracer=tracer)
        stack.run()
        reasons = {r.get("reason") for r in tracer.records("collector-released")}
        assert "cancelled" in reasons or "superseded" in reasons

    def test_results_continue_after_turn(self, sim):
        stack = self._turning_stack(sim, advance_time=0.0)
        stack.run()
        delivered_ks = {d.k for d in stack.gateway.deliveries}
        post_turn = {k for k in delivered_ks if k > 7}
        assert len(post_turn) >= 5

    def test_positive_advance_time_covers_the_turn(self, sim):
        stack = self._turning_stack(sim, advance_time=10.0)
        stack.run()
        metrics = build_session_metrics(
            stack.gateway, stack.network, stack.spec, stack.path, 28.0
        )
        post_turn = [r for r in metrics.records if r.k >= 8]
        good = sum(1 for r in post_turn if r.fidelity >= 0.95)
        assert good >= len(post_turn) - 2

    def test_reparenting_keeps_members_on_new_generation(self, sim):
        tracer = Tracer(keep=["collector-assigned"])
        stack = self._turning_stack(sim, advance_time=6.0, tracer=tracer)
        stack.run()
        # the same period may be claimed by two generations; the tree state
        # count must still drain to zero (no orphaned duplicates)
        sim.run(until=40.0)
        assert stack.protocol.tree_state_count() == 0


class TestFailureInjection:
    def test_collector_crash_loses_one_period_not_the_session(self, sim):
        tracer = Tracer(keep=["collector-assigned"])
        stack = Stack(sim, tracer=tracer)
        crashed = []

        def crash_first_collector():
            records = tracer.records("collector-assigned")
            if not records:
                sim.schedule(0.5, crash_first_collector)
                return
            target_k = None
            for r in records:
                if r["k"] >= 6:
                    target_k = r["k"]
                    node = stack.network.node_by_id(r["node"])
                    node.radio.sleep()  # crash: radio dies
                    # keep it dead by blocking wake
                    node.radio.wake = lambda: None
                    crashed.append(target_k)
                    return
            sim.schedule(0.5, crash_first_collector)

        sim.schedule(1.0, crash_first_collector)
        stack.run()
        assert crashed, "no collector found to crash"
        delivered_ks = {d.k for d in stack.gateway.deliveries}
        # the session survives: most later periods still deliver
        later = set(range(crashed[0] + 3, 15))
        assert len(later & delivered_ks) >= len(later) - 2

    def test_jammed_channel_recovers(self, sim):
        """Saturate the channel around the user for 3 s; service recovers."""
        from repro.net.packet import BROADCAST, Frame

        stack = Stack(sim)
        jammer = stack.network.node_by_id(14)  # mid-grid backbone node

        def jam():
            if sim.now > 9.0:
                return
            if not jammer.radio.is_sleeping and not jammer.radio.is_transmitting:
                stack.network.channel.transmit(
                    jammer, Frame("jam", jammer.node_id, BROADCAST, 1200)
                )
            sim.schedule(0.006, jam)

        sim.schedule(6.0, jam)
        stack.run()
        delivered_ks = {d.k for d in stack.gateway.deliveries}
        assert {12, 13, 14} <= delivered_ks  # post-jam periods recover


class TestConcurrentQueries:
    def test_two_users_do_not_interfere_logically(self, sim):
        stack = Stack(sim)
        # second user with an independent query on the same network
        path2 = PiecewisePath.stationary(Vec2(84, 126))
        proxy2 = MobileEndpoint(
            node_id=50_001,
            sim=sim,
            channel=stack.network.channel,
            rng=RandomStreams(88).stream("proxy2"),
            position_fn=path2.position_at,
        )
        stack.network.channel.register_mobile(proxy2)
        spec2 = QuerySpec(radius_m=80.0, period_s=2.0, freshness_s=1.0, lifetime_s=30.0)
        from repro.mobility.planner import FullKnowledgeProvider

        gateway2 = MobiQueryGateway(
            proxy2, stack.network, spec2, stack.protocol,
            FullKnowledgeProvider(path2, 30.0), stack.tracer,
        )
        gateway2.start()
        stack.run()
        ks1 = {d.k for d in stack.gateway.deliveries}
        ks2 = {d.k for d in gateway2.deliveries}
        assert len(ks1) >= 12
        assert len(ks2) >= 12
        # results are tagged with the right query and areas stay distinct
        for d in gateway2.deliveries:
            assert d.area_center.distance_to(Vec2(84, 126)) < 1.0


class TestCancelCrashChurn:
    """Heavy interleaved cancel + node-crash churn must leave *zero*
    residual state: no kernel events beyond the PSM floor, no wake-wheel
    registrations, no flood-dedup entries, no scheduler slots.  The probe
    is the same census ``repro sweep`` runs per grid cell."""

    def _spec(self, faults):
        from repro.api.scenarios import ScenarioSpec

        return ScenarioSpec(
            name="churn",
            seed=5,
            duration_s=24.0,
            network={"n_nodes": 60, "sleep_period_s": 3.0},
            requests=(
                {"radius_m": 50.0, "period_s": 2.0, "freshness_s": 1.0,
                 "count": 4, "spacing_s": 1.0},
            ),
            faults=faults,
        )

    def test_cancel_churn_leaves_no_residue_fault_free(self):
        from repro.faults.sweep import churn_leak_probe

        leaks = churn_leak_probe(self._spec({}))
        assert leaks == {k: 0 for k in leaks}, leaks

    def test_cancel_churn_leaves_no_residue_under_faults(self):
        from repro.faults.sweep import churn_leak_probe

        faults = {
            "blackouts": [
                {"x": 112, "y": 112, "radius_m": 80, "at_s": 6.0,
                 "duration_s": 5.0}
            ],
            "degradations": [
                {"at_s": 12.0, "duration_s": 3.0, "corruption_prob": 0.4}
            ],
            "crashes": [{"node_id": 7, "at_s": 4.0}],  # never recovers
        }
        leaks = churn_leak_probe(self._spec(faults))
        assert leaks == {k: 0 for k in leaks}, leaks

    def test_recovering_nodes_cannot_resurrect_cancelled_state(self, sim):
        """A crash window spanning a cancellation: when the victims wake,
        the dead-session guards must drop any stale tree state instead of
        re-growing it."""
        from repro.api import MobiQueryService, QueryRequest
        from repro.experiments.config import ExperimentConfig, QueryParams
        from repro.faults import FaultPlan
        from repro.net.network import NetworkConfig

        plan = FaultPlan.from_dict(
            {"blackouts": [{"x": 60, "y": 60, "radius_m": 90, "at_s": 6.0,
                            "duration_s": 6.0}]}
        )
        config = ExperimentConfig(
            mode="jit", seed=5, duration_s=24.0,
            network=NetworkConfig(n_nodes=60, sleep_period_s=3.0),
            query=QueryParams(radius_m=50.0, period_s=2.0, freshness_s=1.0),
        )
        service = MobiQueryService(config, faults=plan)
        handle = service.submit(
            QueryRequest(radius_m=50.0, period_s=2.0, freshness_s=1.0)
        ).require_admitted()
        service.advance(8.0)   # mid-blackout
        handle.cancel()
        service.advance(30.0)  # recovery + drain window
        assert service.protocol.tree_state_count() == 0
        assert len(service.protocol._collectors) == 0
        assert service.flood.live_flood_count() == 0


class TestMetricsEdges:
    def test_no_deliveries_scores_zero(self, sim):
        stack = Stack(sim)
        # deaf proxy: results never arrive
        stack.proxy._handlers.pop("mq-result")
        stack.proxy.register_handler("mq-result", lambda p, f: None)
        sim.run(until=8.0)
        metrics = build_session_metrics(
            stack.gateway, stack.network, stack.spec, stack.path, 8.0
        )
        assert metrics.success_ratio() == 0.0
        assert all(r.delivered_at is None for r in metrics.records)

    def test_area_clipped_at_region_corner(self, sim):
        """A user near the field corner has a small (but valid) area."""
        path = PiecewisePath.stationary(Vec2(10, 10))
        stack = Stack(sim, user_path=path)
        stack.run(until=10.0)
        metrics = build_session_metrics(
            stack.gateway, stack.network, stack.spec, path, 10.0
        )
        for record in metrics.records:
            assert record.area_node_count > 0
            assert record.fidelity <= 1.0
