"""Tests for the NP baseline and the proxy-side gateways."""

import pytest

from repro.core.baseline import NoPrefetchProtocol
from repro.core.gateway import MobiQueryGateway, NoPrefetchGateway
from repro.core.query import QuerySpec
from repro.core.service import MobiQueryConfig, MobiQueryProtocol
from repro.geometry.vec import Vec2
from repro.mobility.path import PiecewisePath
from repro.mobility.planner import FullKnowledgeProvider
from repro.mobility.profile import MotionProfile
from repro.net.flooding import FloodManager
from repro.net.node import MobileEndpoint
from repro.net.routing import GeoRouter
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

from .conftest import make_network
from .test_core_service import Stack, grid_positions


class NpStack:
    """NP baseline over the same grid network as the MobiQuery Stack."""

    def __init__(self, sim, sleep_period=6.0, psm_offset=2.0, duration=30.0):
        self.sim = sim
        self.tracer = Tracer()
        self.network = make_network(
            sim,
            grid_positions(6, 6, 42.0),
            sleep_period=sleep_period,
            psm_offset=psm_offset,
            region_side=250.0,
            tracer=self.tracer,
        )
        self.network.apply_backbone(
            [n.node_id for n in self.network.nodes if n.node_id % 2 == 0]
        )
        self.geo = GeoRouter(self.network, self.tracer)
        self.flood = FloodManager(self.network, self.tracer)
        self.spec = QuerySpec(radius_m=100.0, period_s=2.0, freshness_s=1.0, lifetime_s=duration)
        self.protocol = NoPrefetchProtocol(self.network, self.geo, self.flood, tracer=self.tracer)
        self.proxy = MobileEndpoint(
            node_id=50_000,
            sim=sim,
            channel=self.network.channel,
            rng=RandomStreams(77).stream("proxy"),
            position_fn=lambda t: Vec2(105, 105),
            tracer=self.tracer,
        )
        self.network.channel.register_mobile(self.proxy)
        self.gateway = NoPrefetchGateway(
            self.proxy, self.network, self.spec, self.protocol, self.flood, self.tracer
        )
        self.gateway.start()
        self.duration = duration

    def run(self):
        self.sim.run(until=self.duration + 0.5)


class TestNoPrefetch:
    def test_backbone_nodes_respond(self, sim):
        stack = NpStack(sim)
        stack.run()
        active_ids = {n.node_id for n in stack.network.active_nodes}
        ks = sorted({d.k for d in stack.gateway.deliveries})
        assert len(ks) >= 12  # most periods produce at least some reports
        final = stack.gateway.deliveries_for(10)[-1]
        assert set(final.contributors) & active_ids

    def test_sleepers_rarely_contribute(self, sim):
        """NP cannot forewarn sleepers: their participation is limited to
        periods adjacent to a beacon window."""
        stack = NpStack(sim, sleep_period=6.0)
        stack.run()
        sleeper_ids = {n.node_id for n in stack.network.sleeper_nodes}
        per_period = []
        for k in range(2, 15):
            records = stack.gateway.deliveries_for(k)
            got = set(records[-1].contributors) if records else set()
            per_period.append(len(got & sleeper_ids) > 0)
        assert not all(per_period), "NP should miss sleepers in most periods"

    def test_np_fidelity_below_mobiquery(self, sim):
        from repro.sim.kernel import Simulator

        np_stack = NpStack(sim)
        np_stack.run()
        sim2 = Simulator()
        mq_stack = Stack(sim2)
        mq_stack.run()
        area = 100.0

        def mean_contributors(gateway, network):
            totals = []
            for k in range(8, 15):
                records = gateway.deliveries_for(k)
                totals.append(len(records[-1].contributors) if records else 0)
            return sum(totals) / len(totals)

        np_mean = mean_contributors(np_stack.gateway, np_stack.network)
        mq_mean = mean_contributors(mq_stack.gateway, mq_stack.network)
        assert mq_mean > np_mean

    def test_np_query_ignored_after_deadline(self, sim):
        stack = NpStack(sim)
        stack.run()
        # no reports recorded after their period deadline + tolerance
        for d in stack.gateway.deliveries:
            assert d.time <= stack.spec.deadline(d.k) + stack.spec.period_s


class TestMobiQueryGatewayLogic:
    def _gateway(self, sim):
        stack = Stack(sim)
        return stack, stack.gateway

    def test_injection_start_with_no_previous(self, sim):
        stack, gateway = self._gateway(sim)
        profile = MotionProfile(
            path=PiecewisePath.stationary(Vec2(105, 105)),
            ts=0.0, validity_s=30.0, tg=0.0,
        )
        assert gateway._injection_start_period(None, profile, 1) == 1

    def test_injection_waits_for_profile_ts(self, sim):
        stack, gateway = self._gateway(sim)
        profile = MotionProfile(
            path=PiecewisePath.stationary(Vec2(105, 105)),
            ts=10.0, validity_s=20.0, tg=0.0,
        )
        k = gateway._injection_start_period(None, profile, 1)
        assert stack.spec.deadline(k) >= 10.0
        assert stack.spec.deadline(k - 1) < 10.0

    def test_injection_skips_undiverged_periods(self, sim):
        stack, gateway = self._gateway(sim)
        old = MotionProfile(
            path=PiecewisePath.stationary(Vec2(105, 105)),
            ts=0.0, validity_s=30.0, tg=0.0,
        )
        # new prediction diverges only after t=20 (drift grows 5 m/s)
        new = MotionProfile(
            path=PiecewisePath.from_velocity(Vec2(105, 105), Vec2(5, 0), 0.0, 30.0),
            ts=0.0, validity_s=30.0, tg=0.0,
        )
        k = gateway._injection_start_period(old, new, 1)
        # drift exceeds 25 m after t = 5 s -> period 3
        assert k == 3

    def test_injection_skip_when_nothing_diverged(self, sim):
        stack, gateway = self._gateway(sim)
        old = MotionProfile(
            path=PiecewisePath.stationary(Vec2(105, 105)),
            ts=0.0, validity_s=30.0, tg=0.0,
        )
        new = MotionProfile(
            path=PiecewisePath.stationary(Vec2(106, 105)),
            ts=0.0, validity_s=30.0, tg=0.0,
        )
        assert gateway._injection_start_period(old, new, 1) > stack.spec.num_periods

    def test_stale_profile_ignored(self, sim):
        """A profile generated from older knowledge than the current one
        (earlier tg) must not replace it."""
        stack, gateway = self._gateway(sim)
        stack.run(until=1.0)
        adopted = gateway.current_profile
        stale = MotionProfile(
            path=PiecewisePath.stationary(Vec2(0, 0)),
            ts=0.0, validity_s=30.0, tg=adopted.tg - 5.0,
        )
        gateway._on_profile(stale)
        assert gateway.current_profile is adopted

    def test_watchdog_reinjects_after_silence(self, sim):
        tracer = Tracer()
        stack = Stack(sim, tracer=tracer)
        # Sabotage: drop every result frame by making the proxy deaf to them.
        stack.proxy._handlers.pop("mq-result")
        stack.proxy.register_handler("mq-result", lambda p, f: None)
        stack.run(until=12.0)
        assert tracer.count("watchdog-reinject") >= 1


class TestDeliveryRecords:
    def test_mobiquery_delivery_has_area_center(self, sim):
        stack = Stack(sim)
        stack.run()
        assert stack.gateway.deliveries
        for d in stack.gateway.deliveries:
            assert d.area_center is not None
            assert d.area_center.distance_to(Vec2(105, 105)) < 1.0

    def test_np_delivery_has_area_center(self, sim):
        stack = NpStack(sim)
        stack.run()
        assert stack.gateway.deliveries
        for d in stack.gateway.deliveries:
            assert d.area_center is not None

    def test_deliveries_sorted_per_k(self, sim):
        stack = NpStack(sim)
        stack.run()
        for k in range(1, 15):
            records = stack.gateway.deliveries_for(k)
            times = [r.time for r in records]
            assert times == sorted(times)
