"""Approximate-session lifecycle: admission, teardown, exactness, wiring.

End-to-end contracts for the ``repro.approx`` subsystem:

* an ``accuracy="coarse"`` session is served entirely from the summary
  plane — zero frames on air — and still scores healthy success;
* cancel mid-drill-down releases every piece of summary state (the
  churn-leak census gained a ``summary_sessions`` key for this);
* ``accuracy="exact"`` is bit-identical to the pre-approx code: the
  golden fingerprints must not move with the accuracy field threaded;
* stale summaries surface as ``degraded_periods``, never silently;
* the NP baseline rejects approximate submissions loudly;
* the daemon-posture scenario keys validate and round-trip;
* the sweep's accuracy axis rewrites cell templates;
* the cluster composes per-shard summaries into boundary-free answers.
"""

import pytest

from repro.api import MobiQueryService, QueryRequest
from repro.api.scenarios import (
    ScenarioSpec,
    build_requests,
    build_service,
    get_scenario,
    run_scenario,
)
from repro.core.query import Aggregation
from repro.experiments.config import (
    MODE_JIT,
    MODE_NP,
    ExperimentConfig,
    QueryParams,
)
from repro.experiments.runner import run_experiment
from repro.faults.sweep import SweepAxes, build_cells, leak_census
from repro.geometry.vec import Vec2
from repro.mobility.models import patrol_path
from repro.workload.arrivals import ARRIVAL_STAGGERED

# The same pins tests/test_golden_determinism.py guards.  Duplicated here
# on purpose: this file asserts the *accuracy field itself* cannot move
# them — ``accuracy="exact"`` threaded explicitly through QueryParams
# must leave the pre-approx hot path untouched, frame for frame.
GOLDEN_SINGLE_USER = {
    "frames_sent": 1701,
    "frames_delivered": 26903,
    "frames_collided": 62,
    "success_ratios": (0.9666666666666667,),
    "events_executed": 6309,
}


def sweep_path(cx=200.0, cy=200.0, half=30.0, speed=12.0):
    return patrol_path(
        [
            Vec2(cx - half, cy),
            Vec2(cx + half, cy),
            Vec2(cx + half, cy + 10.0),
            Vec2(cx - half, cy + 10.0),
        ],
        speed=speed,
        loops=4,
    )


def approx_request(accuracy="coarse", freshness_s=3.0, start_s=0.0):
    return QueryRequest(
        radius_m=70.0,
        period_s=3.0,
        freshness_s=freshness_s,
        start_s=start_s,
        accuracy=accuracy,
        path=sweep_path(),
    )


def make_service(mode=MODE_JIT, duration=30.0, sleep_period=3.0):
    from repro.net.network import NetworkConfig

    config = ExperimentConfig(
        mode=mode,
        seed=3,
        duration_s=duration,
        network=NetworkConfig(sleep_period_s=sleep_period),
    )
    return MobiQueryService(config)


class TestApproxSessions:
    def test_coarse_session_sends_no_frames(self):
        service = make_service()
        handle = service.submit(approx_request())
        assert handle.accepted
        result = service.finalize()
        session = result.sessions[0]
        assert service.stats().frames_sent == 0
        assert session.success_ratio == 1.0
        assert session.deliveries > 0

    def test_outcomes_carry_error_bounds(self):
        service = make_service()
        handle = service.submit(approx_request())
        service.run()
        service.finalize()
        outcomes = [
            handle.period_outcome(k)
            for k in range(1, handle.spec.num_periods + 1)
        ]
        delivered = [o for o in outcomes if o is not None and o.delivered]
        assert delivered
        for outcome in delivered:
            assert outcome.error_bound is not None
            assert outcome.error_bound >= 0.0

    def test_plane_created_lazily_on_first_approx_admission(self):
        service = make_service()
        assert service.summary_plane is None
        service.submit(
            QueryRequest(radius_m=70.0, period_s=3.0, freshness_s=3.0)
        )
        assert service.summary_plane is None  # exact sessions never build it
        service.submit(approx_request(start_s=1.0))
        assert service.summary_plane is not None
        # registration happens when the gateway *starts*, not at submit
        assert service.summary_plane.live_session_count() == 0
        service.advance(2.0)
        assert service.summary_plane.live_session_count() == 1
        service.finalize()

    def test_stale_summaries_surface_as_degraded_periods(self):
        # 9 s beacon cycle vs a 1 s freshness bound: most periods answer
        # from a snapshot older than the bound — that must be *declared*.
        service = make_service(sleep_period=9.0)
        handle = service.submit(approx_request(freshness_s=1.0))
        service.run()
        result = service.finalize()
        session = result.sessions[0]
        assert session.degraded_periods > 0
        outcomes = [
            handle.period_outcome(k)
            for k in range(1, handle.spec.num_periods + 1)
        ]
        stale = [
            o for o in outcomes if o is not None and o.delivered
        ]
        assert stale, "stale answers are still delivered, just flagged"

    def test_fresh_summaries_are_not_degraded(self):
        service = make_service(sleep_period=3.0)
        service.submit(approx_request(freshness_s=3.0))
        result = service.finalize()
        assert result.sessions[0].degraded_periods == 0

    def test_np_mode_rejects_approximate_accuracy(self):
        service = make_service(mode=MODE_NP)
        with pytest.raises(ValueError, match="exact queries only"):
            service.submit(approx_request())


class TestCancelReleasesSummaryState:
    def test_cancel_mid_drilldown_leaves_zero_summary_residue(self):
        service = make_service(duration=30.0)
        handles = [
            service.submit(approx_request(start_s=float(i))) for i in range(3)
        ]
        service.advance(10.0)  # sessions live, drill state populated
        assert service.summary_plane.live_session_count() == 3
        handles[0].cancel()
        assert service.summary_plane.live_session_count() == 2
        service.advance(18.0)
        for handle in handles[1:]:
            handle.cancel()
        assert service.summary_plane.live_session_count() == 0
        census = leak_census(service)
        assert "summary_sessions" in census
        assert census == {key: 0 for key in census}

    def test_census_counts_live_approx_sessions(self):
        service = make_service(duration=30.0)
        service.submit(approx_request())
        service.advance(10.0)
        census = leak_census(service)  # mid-run: the session is live
        assert census["summary_sessions"] == 1
        service.finalize()

    def test_uav_survey_churn_probe_is_leak_free(self):
        from repro.faults.sweep import churn_leak_probe

        spec = get_scenario("uav-survey").with_overrides(duration_s=18.0)
        census = churn_leak_probe(spec)
        assert census == {key: 0 for key in census}


class TestExactBitIdentity:
    def test_exact_accuracy_leaves_golden_fingerprints_untouched(self):
        config = ExperimentConfig(
            mode=MODE_JIT,
            seed=1,
            duration_s=120.0,
            query=QueryParams(radius_m=60.0, accuracy="exact"),
        )
        result = run_experiment(config)
        assert result.frames_sent == GOLDEN_SINGLE_USER["frames_sent"]
        assert result.frames_delivered == GOLDEN_SINGLE_USER["frames_delivered"]
        assert result.frames_collided == GOLDEN_SINGLE_USER["frames_collided"]
        assert (
            tuple(result.user_success_ratios)
            == GOLDEN_SINGLE_USER["success_ratios"]
        )
        assert result.events_executed == GOLDEN_SINGLE_USER["events_executed"]

    def test_mixed_run_exact_sessions_unperturbed(self):
        """An approx session sharing the world must not move an exact one.

        The plane draws no RNG and schedules no kernel events, so the
        exact session's per-period outcomes are identical with and
        without an approximate neighbour.
        """
        def run(with_approx):
            service = make_service(duration=24.0)
            exact = service.submit(
                QueryRequest(radius_m=60.0, period_s=2.0, freshness_s=1.5)
            )
            if with_approx:
                service.submit(approx_request(start_s=0.5))
            service.run()
            service.finalize()
            return (
                exact.result().success_ratio,
                exact.result().deliveries,
                service.stats().events_executed,
            )

        alone = run(with_approx=False)
        mixed = run(with_approx=True)
        assert alone[0] == mixed[0]
        assert alone[1] == mixed[1]


class TestPostureKeys:
    def test_round_trip(self):
        payload = get_scenario("uav-survey").to_dict()
        payload.update(
            edge_rate=4.0, edge_burst=8.0, max_live_sessions=6, wal_flush=1
        )
        spec = ScenarioSpec.from_dict(payload)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.edge_rate == 4.0
        assert clone.edge_burst == 8.0
        assert clone.max_live_sessions == 6
        assert clone.wal_flush == 1

    @pytest.mark.parametrize(
        "key,value",
        [
            ("edge_rate", -1.0),
            ("edge_burst", -0.5),
            ("max_live_sessions", -1),
            ("max_live_sessions", True),
            ("wal_flush", 0),
            ("wal_flush", True),
        ],
    )
    def test_validation(self, key, value):
        payload = get_scenario("uav-survey").to_dict()
        payload[key] = value
        with pytest.raises((ValueError, TypeError)):
            ScenarioSpec.from_dict(payload)


class TestAccuracyThreading:
    def test_with_accuracy_rewrites_every_template(self):
        spec = get_scenario("uav-survey").with_accuracy("exact")
        assert all(t["accuracy"] == "exact" for t in spec.requests)
        for request in build_requests(spec):
            assert request.accuracy == "exact"

    def test_with_accuracy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown accuracy"):
            get_scenario("uav-survey").with_accuracy("psychic")

    def test_sweep_accuracy_axis_rewrites_cells(self):
        base = get_scenario("uav-survey").with_overrides(duration_s=18.0)
        axes = SweepAxes(
            users=(2,),
            shards=(1,),
            intensities=(0.0,),
            arrivals=(ARRIVAL_STAGGERED,),
            accuracies=("exact", "coarse"),
        )
        cells = build_cells(base, axes)
        assert len(cells) == 2
        by_accuracy = {c.accuracy: c for c in cells}
        assert by_accuracy["exact"].payload["requests"][0]["accuracy"] == "exact"
        assert (
            by_accuracy["coarse"].payload["requests"][0]["accuracy"] == "coarse"
        )
        # default accuracy keeps the legacy cell name; coarse grows a suffix
        assert ".a-" not in by_accuracy["exact"].payload["name"]
        assert ".a-coarse" in by_accuracy["coarse"].payload["name"]

    def test_sweep_rejects_unknown_accuracy(self):
        with pytest.raises(ValueError, match="unknown sweep accuracy"):
            SweepAxes(accuracies=("fuzzy",))

    def test_density_axis_overrides_network(self):
        base = get_scenario("uav-survey").with_overrides(duration_s=18.0)
        axes = SweepAxes(
            users=(2,),
            shards=(1,),
            intensities=(0.0,),
            arrivals=(ARRIVAL_STAGGERED,),
            densities=(150,),
            radio_ranges=(90.0,),
        )
        (cell,) = build_cells(base, axes)
        assert cell.payload["network"]["n_nodes"] == 150
        assert cell.payload["network"]["comm_range_m"] == 90.0
        assert ".n150" in cell.payload["name"]
        assert ".r90" in cell.payload["name"]


class TestClusterSummaries:
    def test_cluster_merge_is_boundary_free(self):
        from repro.api.admission import make_admission_policy
        from repro.api.scenarios import _scenario_config
        from repro.cluster.service import ClusterService

        spec = get_scenario("uav-survey").with_overrides(
            duration_s=18.0, shards=4
        )
        cluster = ClusterService(
            _scenario_config(spec),
            shards=4,
            admission=make_admission_policy(spec.admission),
            partitioner=spec.partitioner,
            workers=0,
            faults=spec.fault_plan(),
        )
        cluster.advance(6.0)
        center = Vec2(225.0, 225.0)  # straddles all four shard corners
        merged = cluster.summary_answer(center, 80.0, Aggregation.AVG)
        assert merged is not None
        partials = [
            s.summary_answer(center, 80.0, Aggregation.AVG)
            for s in cluster.services
        ]
        live = [p for p in partials if p is not None]
        assert len(live) > 1, "the disk must span multiple shards"
        assert merged.contributors == sum(p.contributors for p in live)
        total = sum(p.total for p in live)
        count = sum(p.count for p in live)
        assert merged.value == pytest.approx(total / count)

    def test_cluster_skips_shards_the_disk_misses(self):
        from repro.api.admission import make_admission_policy
        from repro.api.scenarios import _scenario_config
        from repro.cluster.service import ClusterService

        spec = get_scenario("uav-survey").with_overrides(
            duration_s=18.0, shards=4
        )
        cluster = ClusterService(
            _scenario_config(spec),
            shards=4,
            admission=make_admission_policy(spec.admission),
            partitioner=spec.partitioner,
            workers=0,
            faults=spec.fault_plan(),
        )
        cluster.advance(6.0)
        # a small disk deep inside one shard's region
        merged = cluster.summary_answer(Vec2(60.0, 60.0), 30.0, Aggregation.AVG)
        assert merged is not None
        corner = cluster.services[0].summary_answer(
            Vec2(60.0, 60.0), 30.0, Aggregation.AVG
        )
        assert merged.contributors == corner.contributors


class TestScenarioRun:
    def test_uav_survey_coarse_by_default(self):
        spec = get_scenario("uav-survey").with_overrides(duration_s=18.0)
        result = run_scenario(spec)
        assert result.frames_sent == 0
        assert result.admitted == 4
        assert result.mean_success == 1.0

    def test_accuracy_override_runs_the_exact_twin(self):
        spec = get_scenario("uav-survey").with_overrides(duration_s=18.0)
        result = run_scenario(spec, accuracy="exact")
        assert result.frames_sent > 0
