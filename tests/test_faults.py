"""The deterministic fault plane: plans, injection, recovery, the sweep.

Covers the four layers of ``repro.faults``:

* **Plans** — strict validation (unknown keys rejected at every nesting
  level with a one-line error), value checks, dict round-trips.
* **Injection** — crash/recover semantics (forced sleep + blocked wake),
  region blackouts, degradation windows, out-of-shard crash ids skipped.
* **Recovery** — a blackout over the query area triggers collector
  re-election, the session survives, and unrecoverable periods surface
  as ``SessionResult.degraded_periods``.
* **Lifecycle** — ``ServiceClosedError`` on submit/stream/score after
  ``close()`` on both backends, and the worker-kill replay path.
* **Sweep** — grid expansion, the metamorphic invariant checks, and the
  CLI's exit codes (2 = bad spec, 3 = violated invariant).
"""

import json

import pytest

from repro.api import MobiQueryService, QueryRequest, ServiceClosedError
from repro.api.scenarios import ScenarioSpec
from repro.cli import main as cli_main
from repro.cluster import ClusterService
from repro.experiments.config import ExperimentConfig, QueryParams
from repro.faults import (
    FaultInjector,
    FaultPlan,
    NodeCrash,
    RadioDegradation,
    RegionBlackout,
    WorkerKill,
    load_fault_file,
)
from repro.faults.sweep import (
    ARRIVAL_BURST,
    SweepAxes,
    build_cells,
    check_invariants,
    plan_for_intensity,
)
from repro.net.network import NetworkConfig
from repro.sim.trace import Tracer

from .test_cluster_service import small_config, submit_fleet


def _tiny_config(duration_s: float = 30.0, seed: int = 1) -> ExperimentConfig:
    return ExperimentConfig(
        mode="jit",
        seed=seed,
        duration_s=duration_s,
        query=QueryParams(radius_m=60.0, period_s=2.0, freshness_s=1.0),
    )


# ----------------------------------------------------------------------
# Plans: strict validation + round trips
# ----------------------------------------------------------------------
class TestFaultPlanValidation:
    def test_unknown_top_level_key_is_named(self):
        with pytest.raises(ValueError, match="unknown fault plan key 'blackoutz'"):
            FaultPlan.from_dict({"blackoutz": []})

    @pytest.mark.parametrize(
        "kind,entry,what",
        [
            ("crashes", {"node_id": 1, "at_s": 1.0, "when": 2}, "fault crash"),
            (
                "blackouts",
                {"x": 0, "y": 0, "radius_m": 5, "at_s": 1, "duration_s": 1, "r": 2},
                "fault blackout",
            ),
            (
                "degradations",
                {"at_s": 1, "duration_s": 1, "corruption_prob": 0.5, "p": 1},
                "fault degradation",
            ),
            ("worker_kills", {"shard": 0, "pid": 7}, "fault worker_kill"),
        ],
    )
    def test_unknown_nested_key_is_named(self, kind, entry, what):
        with pytest.raises(ValueError, match=f"unknown {what} key"):
            FaultPlan.from_dict({kind: [entry]})

    @pytest.mark.parametrize(
        "bad",
        [
            {"crashes": [{"node_id": -1, "at_s": 0.0}]},
            {"crashes": [{"node_id": 1, "at_s": 5.0, "recover_s": 5.0}]},
            {"blackouts": [{"x": 0, "y": 0, "radius_m": 0, "at_s": 0, "duration_s": 1}]},
            {"degradations": [{"at_s": 0, "duration_s": 1, "corruption_prob": 1.5}]},
            {"worker_kills": [{"shard": -2}]},
        ],
    )
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_dict(bad)

    def test_round_trip(self):
        plan = FaultPlan(
            crashes=(NodeCrash(node_id=3, at_s=1.0, recover_s=4.0),),
            blackouts=(RegionBlackout(x=10, y=20, radius_m=30, at_s=2, duration_s=5),),
            degradations=(RadioDegradation(at_s=1, duration_s=2, corruption_prob=0.4),),
            worker_kills=(WorkerKill(shard=1),),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_and_world_empty(self):
        assert FaultPlan().empty and FaultPlan().world_empty
        kills_only = FaultPlan(worker_kills=(WorkerKill(shard=0),))
        assert not kills_only.empty
        assert kills_only.world_empty  # touches the pool, not the world
        crash = FaultPlan(crashes=(NodeCrash(node_id=1, at_s=1.0),))
        assert not crash.empty and not crash.world_empty

    def test_load_fault_file_rejects_non_object(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="must hold a JSON object"):
            load_fault_file(str(path))

    def test_scenario_spec_validates_faults_at_load(self):
        with pytest.raises(ValueError, match="unknown fault plan key"):
            ScenarioSpec(name="x", faults={"oops": []})


# ----------------------------------------------------------------------
# Injection semantics
# ----------------------------------------------------------------------
class TestInjection:
    def test_crash_blocks_wake_until_recovery(self):
        plan = FaultPlan.from_dict(
            {"crashes": [{"node_id": 5, "at_s": 2.0, "recover_s": 6.0}]}
        )
        service = MobiQueryService(_tiny_config(), faults=plan)
        node = service.network.node_by_id(5)
        service.advance(3.0)
        assert node.crashed
        assert node.radio.is_sleeping
        node.radio.wake()  # protocol/PSM wake attempts are no-ops
        assert node.radio.is_sleeping
        service.advance(7.0)
        assert not node.crashed
        assert "wake" not in node.radio.__dict__  # shadow removed

    def test_crash_id_outside_world_is_skipped(self):
        plan = FaultPlan.from_dict({"crashes": [{"node_id": 10_000, "at_s": 1.0}]})
        service = MobiQueryService(_tiny_config(), faults=plan)
        service.advance(2.0)  # would raise inside node_by_id if scheduled

    def test_blackout_recovers_exactly_its_victims(self):
        tracer = Tracer(keep=["blackout-start", "node-crashed", "node-recovered"])
        plan = FaultPlan.from_dict(
            {"blackouts": [{"x": 225, "y": 225, "radius_m": 120,
                            "at_s": 2.0, "duration_s": 4.0}]}
        )
        service = MobiQueryService(_tiny_config(), tracer=tracer, faults=plan)
        service.advance(10.0)
        (start,) = tracer.records("blackout-start")
        assert start["victims"] > 0
        assert tracer.counts["node-crashed"] == start["victims"]
        assert tracer.counts["node-recovered"] == start["victims"]

    def test_degradation_window_installs_and_removes_jam_hook(self):
        plan = FaultPlan.from_dict(
            {"degradations": [{"at_s": 1.0, "duration_s": 2.0,
                               "corruption_prob": 0.5}]}
        )
        service = MobiQueryService(_tiny_config(), faults=plan)
        channel = service.network.channel
        assert channel.fault_jam is None
        service.advance(1.5)
        assert channel.fault_jam is not None
        service.advance(3.5)
        assert channel.fault_jam is None

    def test_empty_plan_builds_no_injector(self):
        service = MobiQueryService(_tiny_config(), faults=FaultPlan())
        assert service.fault_injector is None
        kills_only = FaultPlan(worker_kills=(WorkerKill(shard=0),))
        service = MobiQueryService(_tiny_config(), faults=kills_only)
        assert service.fault_injector is None

    def test_injector_draws_only_from_faults_stream(self):
        """A plan without degradations never touches the faults RNG."""
        plan = FaultPlan.from_dict(
            {"crashes": [{"node_id": 5, "at_s": 2.0, "recover_s": 4.0}]}
        )
        service = MobiQueryService(_tiny_config(), faults=plan)
        probe = service.streams.stream("faults")  # the injector's generator
        before = probe.bit_generator.state
        service.advance(6.0)
        assert probe.bit_generator.state == before


# ----------------------------------------------------------------------
# Recovery: re-election + degraded accounting
# ----------------------------------------------------------------------
class TestRecovery:
    def test_blackout_over_query_area_reelects_and_marks_degraded(self):
        tracer = Tracer(
            keep=["node-crashed", "node-recovered", "collector-reelected"]
        )
        plan = FaultPlan.from_dict(
            {"blackouts": [{"x": 60, "y": 60, "radius_m": 90,
                            "at_s": 8.0, "duration_s": 6.0}]}
        )
        service = MobiQueryService(_tiny_config(), tracer=tracer, faults=plan)
        service.submit(
            QueryRequest(radius_m=60.0, period_s=2.0, freshness_s=1.0)
        ).require_admitted()
        result = service.close()
        (session,) = result.sessions
        assert tracer.counts["node-crashed"] > 0
        assert tracer.counts["node-recovered"] == tracer.counts["node-crashed"]
        assert tracer.counts["collector-reelected"] > 0
        # Unrecoverable periods are *marked*, not silently dropped.
        assert session.degraded_periods > 0
        # The session survives the outage: it still delivers results.
        assert session.deliveries > 0

    def test_fault_free_run_has_no_degraded_periods(self):
        service = MobiQueryService(_tiny_config())
        service.submit(
            QueryRequest(radius_m=60.0, period_s=2.0, freshness_s=1.0)
        ).require_admitted()
        result = service.close()
        assert result.sessions[0].degraded_periods == 0


# ----------------------------------------------------------------------
# Lifecycle: typed errors after close()
# ----------------------------------------------------------------------
class TestServiceClosedErrors:
    def test_is_a_value_error(self):
        assert issubclass(ServiceClosedError, ValueError)

    def test_submit_after_close_single_world(self):
        service = MobiQueryService(small_config())
        submit_fleet(service, 1)
        service.close()
        with pytest.raises(ServiceClosedError, match="closed service"):
            submit_fleet(service, 1)

    def test_submit_after_horizon_names_the_horizon(self):
        service = MobiQueryService(small_config())
        submit_fleet(service, 1)
        service.run()
        with pytest.raises(ServiceClosedError, match="horizon has passed"):
            submit_fleet(service, 1)

    def test_handle_scoring_after_close_single_world(self):
        service = MobiQueryService(small_config())
        (handle,) = submit_fleet(service, 1)
        service.close()
        with pytest.raises(ServiceClosedError, match="handle of a closed service"):
            handle.result()
        with pytest.raises(ServiceClosedError, match="handle of a closed service"):
            list(handle.results())

    def test_handle_scoring_after_close_cluster(self):
        cluster = ClusterService(small_config(), shards=2)
        (handle,) = submit_fleet(cluster, 1)
        cluster.close()
        with pytest.raises(ServiceClosedError, match="handle of a closed service"):
            handle.result()

    def test_cluster_submit_after_close(self):
        cluster = ClusterService(small_config(), shards=2)
        submit_fleet(cluster, 1)
        cluster.close()
        with pytest.raises(ServiceClosedError, match="closed cluster"):
            submit_fleet(cluster, 1)


# ----------------------------------------------------------------------
# Worker kill/restart (cluster pool path)
# ----------------------------------------------------------------------
class TestWorkerKillReplay:
    def test_killed_shard_replays_bit_identically(self):
        config = small_config().with_num_users(4)
        baseline = ClusterService(config, shards=2, workers=2)
        submit_fleet(baseline, 4)
        base_workload = baseline.close()

        plan = FaultPlan(worker_kills=(WorkerKill(shard=0),))
        killed = ClusterService(config, shards=2, workers=2, faults=plan)
        submit_fleet(killed, 4)
        workload = killed.close()

        assert [
            (s.user_id, s.success_ratio, s.deliveries)
            for s in workload.sessions
        ] == [
            (s.user_id, s.success_ratio, s.deliveries)
            for s in base_workload.sessions
        ]
        assert killed.stats().frames_sent == baseline.stats().frames_sent
        if killed.parallel_used:
            counts = killed.services[0].tracer.counts
            assert counts["worker-killed"] == 1
            assert counts["worker-restarted"] == 1

    def test_kill_of_nonexistent_shard_is_ignored(self):
        plan = FaultPlan(worker_kills=(WorkerKill(shard=9),))
        cluster = ClusterService(
            small_config(), shards=2, workers=2, faults=plan
        )
        submit_fleet(cluster, 2)
        workload = cluster.close()
        assert len(workload.sessions) == 2


# ----------------------------------------------------------------------
# The sweep: grid expansion + invariant checks
# ----------------------------------------------------------------------
class TestSweepAxes:
    def test_unknown_axis_key_is_named(self):
        with pytest.raises(ValueError, match="unknown sweep-axis key 'userz'"):
            SweepAxes.from_dict({"userz": [4]})

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="intensity must be in"):
            SweepAxes(intensities=(1.5,))
        with pytest.raises(ValueError, match="unknown sweep arrival"):
            SweepAxes(arrivals=("poisson",))
        with pytest.raises(ValueError, match="must not be empty"):
            SweepAxes(users=())

    def test_cell_count(self):
        axes = SweepAxes(users=(2, 4), shards=(1,), intensities=(0.0, 1.0),
                         arrivals=("staggered",))
        assert axes.cell_count() == 4


class TestSweepCells:
    def _base(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="mini",
            duration_s=24.0,
            requests=({"radius_m": 50.0, "period_s": 2.0, "freshness_s": 1.0,
                       "count": 2, "spacing_s": 1.5},),
        )

    def test_grid_expansion_and_burst_spacing(self):
        axes = SweepAxes(users=(2, 3), shards=(1,), intensities=(0.0, 1.0),
                         arrivals=("staggered", "burst"))
        cells = build_cells(self._base(), axes)
        assert len(cells) == axes.cell_count() == 8
        for cell in cells:
            (template,) = cell.payload["requests"]
            assert template["count"] == cell.users
            if cell.arrival == ARRIVAL_BURST:
                assert template["spacing_s"] == 0.0
            else:
                assert template["spacing_s"] == 1.5
            # every payload re-validates as a full spec
            ScenarioSpec.from_dict(cell.payload)

    def test_intensity_zero_is_the_empty_plan(self):
        base = self._base()
        assert plan_for_intensity(base, 0.0) == {}
        mild = plan_for_intensity(base, 0.5)
        severe = plan_for_intensity(base, 1.0)
        assert mild["blackouts"][0]["radius_m"] < severe["blackouts"][0]["radius_m"]
        assert (mild["degradations"][0]["corruption_prob"]
                < severe["degradations"][0]["corruption_prob"])
        # pure function: same inputs, same plan
        assert plan_for_intensity(base, 0.5) == mild

    def test_base_faults_merge_with_derived(self):
        base = ScenarioSpec(
            name="mini",
            duration_s=24.0,
            faults={"crashes": [{"node_id": 3, "at_s": 1.0}]},
            requests=({"radius_m": 50.0, "count": 2},),
        )
        cells = build_cells(base, SweepAxes(users=(2,), shards=(1,),
                                            intensities=(1.0,),
                                            arrivals=("staggered",)))
        faults = cells[0].payload["faults"]
        assert faults["crashes"] and faults["blackouts"] and faults["degradations"]


class TestSweepInvariants:
    def _row(self, **over):
        row = {
            "users": 2, "shards": 1, "intensity": 0.0, "arrival": "staggered",
            "mean_success": 0.9, "min_success": 0.8, "degraded_periods": 0,
        }
        row.update(over)
        return row

    def test_clean_grid_passes(self):
        rows = [self._row(), self._row(intensity=1.0, mean_success=0.5)]
        assert check_invariants(rows) == []

    def test_monotonicity_violation_is_named(self):
        rows = [
            self._row(mean_success=0.5),
            self._row(intensity=1.0, mean_success=0.9),
        ]
        (violation,) = check_invariants(rows)
        assert violation.startswith("fault-monotonicity:")

    def test_small_wobble_within_tolerance_passes(self):
        rows = [
            self._row(mean_success=0.900),
            self._row(intensity=1.0, mean_success=0.905),
        ]
        assert check_invariants(rows) == []

    def test_identity_and_leak_violations_are_named(self):
        rows = [
            self._row(identity_ok=False),
            self._row(intensity=0.5, leak_total=2,
                      leaks={"tree_states": 2, "collectors": 0}),
        ]
        violations = check_invariants(rows)
        kinds = {v.split(":")[0] for v in violations}
        assert kinds == {"shards1-identity", "churn-no-leak"}


# ----------------------------------------------------------------------
# CLI exit codes (strict-validation parity)
# ----------------------------------------------------------------------
class TestCliExitCodes:
    def test_run_with_unknown_fault_key_exits_2(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"blackoutz": []}))
        code = cli_main(["run", "--duration", "10", "--faults", str(plan)])
        assert code == 2
        assert "unknown fault plan key 'blackoutz'" in capsys.readouterr().err

    def test_run_with_missing_fault_file_exits_2(self, capsys):
        code = cli_main(["run", "--faults", "/nonexistent/plan.json"])
        assert code == 2
        assert "repro run: error:" in capsys.readouterr().err

    def test_sweep_with_unknown_axis_key_exits_2(self, tmp_path, capsys):
        axes = tmp_path / "axes.json"
        axes.write_text(json.dumps({"userz": [2]}))
        code = cli_main(["sweep", "paper-default", "--axes", str(axes)])
        assert code == 2
        assert "unknown sweep-axis key 'userz'" in capsys.readouterr().err

    def test_sweep_with_bad_axis_value_exits_2(self, capsys):
        code = cli_main(["sweep", "paper-default", "--users", "0"])
        assert code == 2
        assert "users must be >= 1" in capsys.readouterr().err

    def test_sweep_without_base_exits_2(self, capsys):
        code = cli_main(["sweep"])
        assert code == 2
        assert "repro sweep: error:" in capsys.readouterr().err

    def test_scenario_file_with_unknown_fault_key_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "bad",
            "requests": [{"radius_m": 50.0}],
            "faults": {"crashes": [{"node_id": 1, "at_s": 1.0, "boom": True}]},
        }))
        code = cli_main(["scenario", "--file", str(spec)])
        assert code == 2
        assert "unknown fault crash key 'boom'" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The admission axis (sweep) and the admission-no-harm invariant
# ----------------------------------------------------------------------
class TestAdmissionAxis:
    def _base(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="mini",
            duration_s=24.0,
            requests=({"radius_m": 50.0, "period_s": 2.0, "freshness_s": 1.0,
                       "count": 2, "spacing_s": 1.5},),
        )

    def test_unknown_admission_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep admission"):
            SweepAxes(admissions=("vip-only",))
        with pytest.raises(ValueError, match="must not be empty"):
            SweepAxes(admissions=())

    def test_from_dict_accepts_admissions(self):
        axes = SweepAxes.from_dict(
            {"users": [2], "shards": [1], "intensities": [0.0],
             "arrivals": ["staggered"],
             "admissions": ["accept-all", "per-area-cap", "phase-assign"]}
        )
        assert axes.admissions == ("accept-all", "per-area-cap",
                                   "phase-assign")
        assert axes.cell_count() == 3

    def test_build_cells_expands_admission_configs(self):
        axes = SweepAxes(users=(2,), shards=(1,), intensities=(0.0,),
                         arrivals=("staggered",),
                         admissions=("accept-all", "per-area-cap",
                                     "phase-assign"))
        cells = build_cells(self._base(), axes)
        assert [c.admission for c in cells] == [
            "accept-all", "per-area-cap", "phase-assign"
        ]
        by_name = {c.admission: c for c in cells}
        assert by_name["accept-all"].payload["admission"] == {}
        assert by_name["per-area-cap"].payload["admission"] == {
            "policy": "per-area-cap", "max_overlapping": 3
        }
        assert by_name["phase-assign"].payload["admission"] == {
            "policy": "phase-assign", "slots": 4
        }
        for cell in cells:
            assert cell.payload["name"].endswith(f".{cell.admission}")
            ScenarioSpec.from_dict(cell.payload)

    def _row(self, **over):
        row = {
            "users": 2, "shards": 1, "intensity": 0.0, "arrival": "staggered",
            "admission": "accept-all", "rejected": 0,
            "mean_success": 0.9, "min_success": 0.8, "degraded_periods": 0,
        }
        row.update(over)
        return row

    def test_admission_no_harm_violation_is_named(self):
        rows = [
            self._row(),
            self._row(admission="per-area-cap", rejected=1,
                      mean_success=0.7),
        ]
        (violation,) = check_invariants(rows)
        assert violation.startswith("admission-no-harm:")
        assert "per-area-cap" in violation

    def test_admission_no_harm_within_tolerance_passes(self):
        rows = [
            self._row(mean_success=0.900),
            self._row(admission="per-area-cap", rejected=1,
                      mean_success=0.895),
        ]
        assert check_invariants(rows) == []

    def test_admission_without_rejections_is_not_judged(self):
        # A policy that rejected nobody ran the same workload; its score
        # may wobble freely without implicating admission control.
        rows = [
            self._row(),
            self._row(admission="phase-assign", rejected=0,
                      mean_success=0.2),
        ]
        assert check_invariants(rows) == []

    def test_small_real_grid_carries_admission_and_passes(self):
        from repro.faults.sweep import build_cells as bc, run_sweep_cell

        axes = SweepAxes(users=(2,), shards=(1,), intensities=(0.0,),
                         arrivals=("staggered",),
                         admissions=("accept-all", "phase-assign"))
        base = ScenarioSpec(
            name="mini",
            duration_s=16.0,
            requests=({"radius_m": 60.0, "period_s": 2.0, "freshness_s": 1.0,
                       "count": 2, "spacing_s": 1.0},),
        )
        rows = [run_sweep_cell(cell) for cell in bc(base, axes)]
        assert [r["admission"] for r in rows] == ["accept-all",
                                                 "phase-assign"]
        assert all("rejected" in r for r in rows)
        assert check_invariants(rows) == []
