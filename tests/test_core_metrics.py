"""Tests for metrics: fidelity, success ratio, storage/contention trackers."""

import pytest

from repro.core.metrics import (
    ContentionTracker,
    SessionMetrics,
    PeriodRecord,
    StorageTracker,
    measure_power,
)
from repro.core.query import QuerySpec
from repro.geometry.vec import Vec2
from repro.sim.trace import Tracer

from .conftest import all_active, line_positions, make_network


def record(k, fidelity, on_time=True, threshold=0.95):
    return PeriodRecord(
        k=k,
        deadline=k * 2.0,
        user_position=Vec2(0, 0),
        area_node_count=20,
        delivered_at=k * 2.0 - 0.05 if on_time else None,
        value=1.0,
        contributors_in_area=int(fidelity * 20),
        fidelity=fidelity,
        fidelity_actual=fidelity,
        prediction_error_m=0.0,
        on_time=on_time,
        success=on_time and fidelity >= threshold,
    )


class TestSessionMetrics:
    def test_success_ratio(self):
        metrics = SessionMetrics([record(1, 1.0), record(2, 0.5), record(3, 0.96)])
        assert metrics.success_ratio() == pytest.approx(2 / 3)

    def test_deadline_ratio(self):
        metrics = SessionMetrics(
            [record(1, 1.0), record(2, 1.0, on_time=False), record(3, 0.2)]
        )
        assert metrics.deadline_ratio() == pytest.approx(2 / 3)

    def test_mean_fidelity(self):
        metrics = SessionMetrics([record(1, 1.0), record(2, 0.5)])
        assert metrics.mean_fidelity() == pytest.approx(0.75)

    def test_empty_session(self):
        metrics = SessionMetrics([])
        assert metrics.success_ratio() == 0.0
        assert metrics.mean_fidelity() == 0.0

    def test_fidelity_series(self):
        metrics = SessionMetrics([record(1, 0.9), record(2, 1.0)])
        assert metrics.fidelity_series() == [(1, 0.9), (2, 1.0)]

    def test_warmup_detection(self):
        records = [record(k, 0.3) for k in range(1, 5)] + [
            record(k, 1.0) for k in range(5, 12)
        ]
        metrics = SessionMetrics(records)
        assert metrics.warmup_periods_observed() == 4

    def test_warmup_zero_when_immediately_good(self):
        metrics = SessionMetrics([record(k, 1.0) for k in range(1, 6)])
        assert metrics.warmup_periods_observed() == 0

    def test_warmup_never_stabilizes(self):
        metrics = SessionMetrics([record(k, 0.3) for k in range(1, 6)])
        assert metrics.warmup_periods_observed() == 5

    def test_warmup_ignores_transient_recovery(self):
        fidelities = [0.3, 1.0, 0.3, 1.0, 1.0, 1.0, 1.0]
        metrics = SessionMetrics([record(k + 1, f) for k, f in enumerate(fidelities)])
        assert metrics.warmup_periods_observed(run_length=3) == 3


class TestStorageTracker:
    def test_prefetch_length_counts_future_trees(self):
        tracer = Tracer()
        spec = QuerySpec(period_s=2.0, lifetime_s=40.0)
        tracker = StorageTracker(tracer, spec)
        # at t=1 (period 0), collectors exist for k = 3, 4, 5
        for k in (3, 4, 5):
            tracer.emit("collector-assigned", 1.0, k=k)
        assert tracker.max_prefetch_length == 3

    def test_released_collectors_not_counted(self):
        tracer = Tracer()
        spec = QuerySpec(period_s=2.0, lifetime_s=40.0)
        tracker = StorageTracker(tracer, spec)
        tracer.emit("collector-assigned", 1.0, k=3)
        tracer.emit("collector-released", 2.0, k=3)
        tracer.emit("collector-assigned", 2.5, k=9)
        assert tracker.max_prefetch_length == 1

    def test_heterogeneous_periods_use_each_sessions_own_clock(self):
        """Mixed period lengths: prefetch windows computed per session.

        A fast user (Tperiod=2 s, origin 0) and a slow user (Tperiod=5 s,
        origin 3 s) hold collectors at the same ``k`` values.  At t=11 the
        fast user is in period 5, so k=6,7 are 2 ahead; the slow user is in
        period 1, so k=2..4 are 3 ahead.  The old single-period fallback
        folded the slow user onto the fast spec's clock (period_index(11)
        = 5) and would have counted 0 for it.
        """
        tracer = Tracer()
        fast = QuerySpec(period_s=2.0, lifetime_s=40.0, user_id=0)
        slow = QuerySpec(period_s=5.0, lifetime_s=35.0, user_id=1, start_s=3.0)
        tracker = StorageTracker(tracer, fast, specs=[fast, slow])
        for k in (6, 7):
            tracer.emit(
                "collector-assigned", 11.0, k=k, user=0, query=fast.query_id
            )
        assert tracker.max_prefetch_length == 2
        for k in (2, 3, 4):
            tracer.emit(
                "collector-assigned", 11.0, k=k, user=1, query=slow.query_id
            )
        # worst chain is now the slow user's: k=2,3,4 vs current period 1
        assert tracker.max_prefetch_length == 3

    def test_register_spec_after_construction(self):
        """The service admits sessions mid-run; specs register dynamically."""
        tracer = Tracer()
        tracker = StorageTracker(tracer)
        late = QuerySpec(period_s=4.0, lifetime_s=40.0, user_id=7, start_s=2.0)
        # Unregistered session with no fallback spec: skipped, not crashed.
        tracer.emit("collector-assigned", 3.0, k=5, user=7, query=late.query_id)
        assert tracker.max_prefetch_length == 0
        tracker.register_spec(late)
        tracer.emit("collector-assigned", 3.1, k=6, user=7, query=late.query_id)
        # t=3.1 is period 0 of the late session; k=5 and k=6 are both ahead
        assert tracker.max_prefetch_length == 2

    def test_tree_state_peak(self):
        tracer = Tracer()
        tracker = StorageTracker(tracer, QuerySpec(period_s=2.0, lifetime_s=40.0))
        for n in range(5):
            tracer.emit("tree-created", 1.0, node=n, k=1)
        tracer.emit("tree-released", 2.0, node=0, k=1)
        tracer.emit("tree-created", 3.0, node=9, k=2)
        assert tracker.max_tree_states == 5
        assert tracker.live_tree_states == 5


class TestContentionTracker:
    def _tracker(self, tracer):
        return ContentionTracker(
            tracer,
            sleep_period_s=9.0,
            active_window_s=0.1,
            query_radius_m=150.0,
            comm_range_m=105.0,
        )

    def test_overlapping_nearby_setups_interfere(self):
        tracer = Tracer()
        tracker = self._tracker(tracer)
        for i in range(3):
            tracer.emit(
                "tree-setup-start", 1.0 + i * 0.1, k=i, pickup_x=10.0 * i, pickup_y=0.0
            )
        # all three share the window ending at 9.1 and sit within range
        assert tracker.interference_length() == 2

    def test_time_separated_setups_do_not_interfere(self):
        tracer = Tracer()
        tracker = self._tracker(tracer)
        tracer.emit("tree-setup-start", 1.0, k=1, pickup_x=0.0, pickup_y=0.0)
        tracer.emit("tree-setup-start", 20.0, k=2, pickup_x=0.0, pickup_y=0.0)
        assert tracker.interference_length() == 0

    def test_space_separated_setups_do_not_interfere(self):
        tracer = Tracer()
        tracker = self._tracker(tracer)
        tracer.emit("tree-setup-start", 1.0, k=1, pickup_x=0.0, pickup_y=0.0)
        tracer.emit("tree-setup-start", 1.1, k=2, pickup_x=1000.0, pickup_y=0.0)
        assert tracker.interference_length() == 0


class TestPowerReport:
    def test_measures_both_roles(self, sim):
        network = make_network(sim, line_positions(4, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0, 1])
        sim.run(until=90.0)
        report = measure_power(network)
        assert report.active_count == 2
        assert report.sleeper_count == 2
        # active nodes idle at 830 mW; sleepers mostly at 130 mW
        assert report.mean_active_power_w == pytest.approx(0.830, abs=0.02)
        assert 0.13 <= report.mean_sleeper_power_w <= 0.20

    def test_sleeper_power_decreases_with_sleep_period(self):
        from repro.sim.kernel import Simulator

        results = []
        for period in (3.0, 15.0):
            sim = Simulator()
            network = make_network(
                sim, line_positions(4, 50.0), sleep_period=period, psm_offset=1.0
            )
            network.apply_backbone([0])
            sim.run(until=120.0)
            results.append(measure_power(network).mean_sleeper_power_w)
        assert results[1] < results[0]
