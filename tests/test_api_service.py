"""Service façade tests: session lifecycle, heterogeneity, admission.

These pin the API contract the redesign introduced:

* heterogeneous per-user queries (mixed periods/radii/aggregations) run
  concurrently on one shared world and score independently;
* ``handle.results()`` streams per-period outcomes while advancing the
  shared clock;
* ``handle.cancel()`` mid-run releases *all* ``(user_id, query_id)``
  in-network state — collector chains, tree states, flood dedup,
  scheduler slots — and in-flight frames cannot resurrect it;
* admission rejection provably leaves the kernel untouched, and a
  rejected user can resubmit successfully once the area drains.
"""

import pytest

from repro.api import (
    AcceptAllPolicy,
    AdmissionError,
    PerAreaCapPolicy,
    PhaseAssignPolicy,
    QueryRequest,
    MobiQueryService,
    STATUS_ADMITTED,
    STATUS_CANCELLED,
    STATUS_COMPLETED,
    STATUS_REJECTED,
)
from repro.core.query import Aggregation
from repro.experiments.config import (
    MODE_IDLE,
    MODE_JIT,
    MODE_NP,
    ExperimentConfig,
)
from repro.geometry.vec import Vec2
from repro.mobility.models import patrol_path


def make_service(mode=MODE_JIT, duration=30.0, seed=1, admission=None):
    config = ExperimentConfig(mode=mode, seed=seed, duration_s=duration)
    return MobiQueryService(config, admission=admission)


def square_path(cx, cy, half=20.0, speed=3.0, loops=8):
    """A small deterministic loop centred at (cx, cy)."""
    return patrol_path(
        [
            Vec2(cx - half, cy - half),
            Vec2(cx + half, cy - half),
            Vec2(cx + half, cy + half),
            Vec2(cx - half, cy + half),
            Vec2(cx - half, cy - half),
        ],
        speed=speed,
        loops=loops,
    )


# ----------------------------------------------------------------------
# Heterogeneous workloads
# ----------------------------------------------------------------------
class TestHeterogeneousWorkload:
    def test_eight_user_mixed_run_scores_per_user(self):
        """The acceptance scenario: 8 mixed requests, per-user scoring."""
        service = make_service(duration=40.0, seed=5)
        mixes = [
            (2.0, 60.0, 1.0, Aggregation.AVG),
            (1.5, 40.0, 0.75, Aggregation.MAX),
            (3.0, 90.0, 1.5, Aggregation.MIN),
            (2.0, 75.0, 0.8, Aggregation.COUNT),
            (4.0, 120.0, 2.0, Aggregation.AVG),
            (1.5, 50.0, 1.0, Aggregation.AVG),
            (2.5, 60.0, 1.2, Aggregation.SUM),
            (3.0, 100.0, 1.0, Aggregation.MAX),
        ]
        handles = []
        for i, (period, radius, fresh, agg) in enumerate(mixes):
            handles.append(
                service.submit(
                    QueryRequest(
                        period_s=period,
                        radius_m=radius,
                        freshness_s=fresh,
                        aggregation=agg,
                        start_s=i * 2.5,
                    )
                )
            )
        assert all(h.accepted for h in handles)
        result = service.finalize()
        assert result.num_users == 8
        for i, handle in enumerate(handles):
            session = result.session_for(handle.user_id)
            period, _, _, _ = mixes[i]
            expected_periods = int((40.0 - i * 2.5) / period + 1e-9)
            assert session.metrics.num_periods == expected_periods
            # heterogeneity survives into the spec the protocol served
            assert handle.spec.period_s == period
        # the shared medium is imperfect but every user got real service
        assert result.min_success_ratio() > 0.5

    def test_aggregation_values_differ_by_function(self):
        """COUNT and AVG users over the same field see different values."""
        service = make_service(duration=12.0, seed=2)
        count_h = service.submit(
            QueryRequest(aggregation=Aggregation.COUNT, radius_m=80.0)
        )
        avg_h = service.submit(
            QueryRequest(aggregation=Aggregation.AVG, radius_m=80.0, start_s=1.0)
        )
        service.run()
        count_values = [
            o.value for o in count_h.results() if o.value is not None
        ]
        avg_values = [o.value for o in avg_h.results() if o.value is not None]
        assert count_values and avg_values
        # COUNT returns integers equal to the contributor count
        assert all(v == int(v) and v >= 1 for v in count_values)


# ----------------------------------------------------------------------
# Streaming results
# ----------------------------------------------------------------------
class TestStreaming:
    def test_results_stream_advances_the_clock(self):
        service = make_service(duration=16.0)
        handle = service.submit(QueryRequest(radius_m=60.0, period_s=2.0))
        seen = []
        for outcome in handle.results():
            assert service.sim.now >= outcome.deadline
            seen.append(outcome)
        assert [o.k for o in seen] == list(range(1, 9))
        assert all(
            later.deadline > earlier.deadline
            for earlier, later in zip(seen, seen[1:])
        )
        delivered = [o for o in seen if o.on_time]
        assert len(delivered) >= 6  # JIT at quick scale serves nearly all
        assert all(o.value is not None for o in delivered)

    def test_rejected_handle_refuses_streaming(self):
        service = make_service(admission=PerAreaCapPolicy(max_overlapping=1))
        first = service.submit(
            QueryRequest(radius_m=150.0, path=square_path(225.0, 225.0))
        )
        assert first.accepted
        second = service.submit(
            QueryRequest(radius_m=150.0, path=square_path(225.0, 225.0))
        )
        assert second.status == STATUS_REJECTED
        with pytest.raises(AdmissionError):
            list(second.results())
        with pytest.raises(AdmissionError):
            second.result()


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancel_mid_run_releases_all_in_network_state(self):
        service = make_service(duration=30.0)
        keeper = service.submit(QueryRequest(radius_m=60.0))
        victim = service.submit(QueryRequest(radius_m=60.0, start_s=2.0))
        service.run_until(10.0)
        key = victim.session_key
        protocol = service.protocol
        # mid-run the victim really owns state (a live prefetch chain)
        assert protocol.live_collector_periods(session=key)
        victim.cancel()
        assert victim.status == STATUS_CANCELLED
        # immediately after cancel: no collectors, no tree states, no slot
        assert protocol.live_collector_periods(session=key) == []
        assert protocol.tree_state_count(session=key) == 0
        assert key not in service.workload.scheduler.session_keys()
        assert victim.session.proxy.node_id not in (
            service.network.channel._mobile
        )
        deliveries_at_cancel = len(victim.session.gateway.deliveries)
        # in-flight frames must not resurrect the chain by the run's end
        result = service.finalize()
        assert protocol.live_collector_periods(session=key) == []
        assert protocol.tree_state_count(session=key) == 0
        assert len(victim.session.gateway.deliveries) == deliveries_at_cancel
        # the keeper kept running and scored over the full horizon
        keeper_score = result.session_for(keeper.user_id)
        assert keeper_score.metrics.num_periods == 15
        # the victim is scored only over its pre-cancel periods
        victim_score = result.session_for(victim.user_id)
        assert victim_score.metrics.num_periods == int((10.0 - 2.0) / 2.0)

    def test_cancel_before_start_releases_slot_silently(self):
        service = make_service(duration=20.0)
        service.submit(QueryRequest(radius_m=60.0))
        late = service.submit(QueryRequest(radius_m=60.0, start_s=15.0))
        late.cancel()
        assert late.status == STATUS_CANCELLED
        assert late.session_key not in service.workload.scheduler.session_keys()
        service.run()
        assert late.session.gateway.deliveries == []
        assert service.workload.scheduler.started_count() == 1

    def test_np_cancel_releases_flood_dedup_state(self):
        service = make_service(mode=MODE_NP, duration=20.0)
        keeper = service.submit(QueryRequest(radius_m=60.0))
        victim = service.submit(QueryRequest(radius_m=60.0, start_s=1.0))
        service.run_until(8.0)
        assert victim.session.gateway._flood_ids  # floods were launched
        floods_before = service.flood.live_flood_count()
        assert service.np_protocol.session_state_count(*victim.session_key) > 0
        victim.cancel()
        assert service.flood.live_flood_count() < floods_before
        assert service.np_protocol.session_state_count(*victim.session_key) == 0
        assert victim.session.gateway._flood_ids == []
        service.finalize()
        # dead-session guard: nothing regrew from in-flight frames
        assert service.np_protocol.session_state_count(*victim.session_key) == 0
        assert keeper.session.gateway.deliveries  # keeper unaffected

    def test_np_cancel_with_frames_in_flight_does_not_reflood(self):
        """A straggler flood frame must not re-seed released dedup state."""
        service = make_service(mode=MODE_NP, duration=16.0)
        victim = service.submit(QueryRequest(radius_m=60.0))
        # stop right after the first issue: the flood's rebroadcast wave
        # (jittered relays, frames on the air) is still in flight
        service.run_until(0.002)
        assert victim.session.gateway._flood_ids
        victim.cancel()
        assert service.flood.live_flood_count() == 0
        service.run()
        assert service.flood.live_flood_count() == 0

    def test_cancel_after_completion_keeps_completed_status(self):
        service = make_service(duration=12.0)
        handle = service.submit(QueryRequest(radius_m=60.0))
        service.finalize()
        handle.cancel()  # no-op: the session already ran to the horizon
        assert handle.status == STATUS_COMPLETED
        assert handle.cancelled_at is None

    def test_cancel_is_idempotent_and_skips_rejected(self):
        service = make_service(admission=PerAreaCapPolicy(max_overlapping=1))
        a = service.submit(QueryRequest(path=square_path(225.0, 225.0)))
        b = service.submit(QueryRequest(path=square_path(225.0, 225.0)))
        assert not b.accepted
        b.cancel()  # no-op, no raise
        a.cancel()
        a.cancel()  # idempotent
        assert a.status == STATUS_CANCELLED


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_rejection_leaves_kernel_untouched(self):
        service = make_service(admission=PerAreaCapPolicy(max_overlapping=1))
        admitted = service.submit(
            QueryRequest(radius_m=150.0, path=square_path(225.0, 225.0))
        )
        assert admitted.accepted
        seq_before = service.sim._seq
        sessions_before = len(service.workload.sessions)
        mobiles_before = set(service.network.channel._mobile)
        rejected = service.submit(
            QueryRequest(radius_m=150.0, path=square_path(240.0, 240.0))
        )
        assert rejected.status == STATUS_REJECTED
        assert "area cap" in rejected.reason
        # no event entered the kernel, no session, no proxy on the channel
        assert service.sim._seq == seq_before
        assert len(service.workload.sessions) == sessions_before
        assert set(service.network.channel._mobile) == mobiles_before
        # after some simulated time, only the admitted session owns state
        service.run_until(4.0)
        assert service.protocol.active_sessions() == [admitted.session_key]

    def test_rejected_then_resubmitted_user_succeeds(self):
        service = make_service(
            duration=30.0, admission=PerAreaCapPolicy(max_overlapping=1)
        )
        blocker = service.submit(
            QueryRequest(radius_m=150.0, path=square_path(225.0, 225.0))
        )
        comeback = service.submit(
            QueryRequest(
                radius_m=150.0, user_id=7, path=square_path(225.0, 225.0)
            )
        )
        assert not comeback.accepted
        service.run_until(6.0)
        blocker.cancel()  # the area drains
        retry = service.submit(
            QueryRequest(
                radius_m=150.0, user_id=7, path=square_path(225.0, 225.0)
            )
        )
        assert retry.accepted
        assert retry.status == STATUS_ADMITTED
        result = service.finalize()
        score = result.session_for(7)
        assert score.metrics.num_periods > 0
        assert score.metrics.success_ratio() > 0.0

    def test_phase_assign_spreads_simultaneous_starts(self):
        service = make_service(
            duration=30.0, admission=PhaseAssignPolicy(slots=4)
        )
        handles = [
            service.submit(QueryRequest(radius_m=60.0, period_s=2.0))
            for _ in range(4)
        ]
        starts = [h.spec.start_s for h in handles]
        assert starts == [0.0, 0.5, 1.0, 1.5]

    def test_duplicate_live_user_id_is_a_clean_error(self):
        service = make_service()
        service.submit(QueryRequest(user_id=3))
        with pytest.raises(ValueError, match="already has a live session"):
            service.submit(QueryRequest(user_id=3))

    def test_idle_service_accepts_no_queries(self):
        service = make_service(mode=MODE_IDLE)
        with pytest.raises(ValueError, match="idle"):
            service.submit(QueryRequest())


# ----------------------------------------------------------------------
# Request validation at the boundary
# ----------------------------------------------------------------------
class TestRequestValidation:
    def test_freshness_beyond_period_rejected(self):
        with pytest.raises(ValueError, match="must not exceed"):
            QueryRequest(freshness_s=3.0, period_s=2.0)

    def test_non_positive_radius_rejected(self):
        with pytest.raises(ValueError, match="radius must be > 0"):
            QueryRequest(radius_m=0.0)

    def test_start_beyond_horizon_rejected(self):
        service = make_service(duration=10.0)
        with pytest.raises(ValueError, match="no serviceable period"):
            service.submit(QueryRequest(start_s=9.5, period_s=2.0))

    def test_auto_user_ids_skip_live_ones(self):
        service = make_service()
        a = service.submit(QueryRequest())
        b = service.submit(QueryRequest())
        assert a.user_id == 0
        assert b.user_id == 1


# ----------------------------------------------------------------------
# Handle lifecycle edges: idempotence after completion and re-iteration
# ----------------------------------------------------------------------
class TestLifecycleEdges:
    def _completed_handle(self, duration=12.0):
        service = make_service(duration=duration)
        handle = service.submit(QueryRequest(radius_m=60.0, period_s=2.0))
        service.finalize()
        return service, handle

    def test_cancel_after_natural_completion_is_a_noop(self):
        service, handle = self._completed_handle()
        assert handle.status == STATUS_COMPLETED
        result_before = handle.result()
        handle.cancel()
        assert handle.status == STATUS_COMPLETED
        assert handle.cancelled_at is None
        assert handle.result() is result_before

    def test_double_cancel_is_a_noop(self):
        service = make_service(duration=20.0)
        handle = service.submit(QueryRequest(radius_m=60.0, period_s=2.0))
        service.run_until(6.0)
        handle.cancel()
        assert handle.status == STATUS_CANCELLED
        first_cancelled_at = handle.cancelled_at
        events_after_first = service.sim.events_executed
        service.run_until(8.0)
        handle.cancel()  # second cancel: state unchanged, no new teardown
        assert handle.status == STATUS_CANCELLED
        assert handle.cancelled_at == first_cancelled_at
        # and the service still scores the truncated session
        result = handle.result()
        assert result.metrics.num_periods <= 3
        assert events_after_first <= service.sim.events_executed

    def test_cancel_rejected_handle_is_a_noop(self):
        class RejectAll(AcceptAllPolicy):
            def decide(self, spec, path, service):
                from repro.api import AdmissionDecision

                return AdmissionDecision.reject("closed for testing")

        service = make_service(admission=RejectAll())
        handle = service.submit(QueryRequest())
        assert handle.status == STATUS_REJECTED
        handle.cancel()
        assert handle.status == STATUS_REJECTED
        assert service.sim.events_executed == 0

    def test_results_reiteration_is_safe_and_consistent(self):
        """A second results() pass replays the same outcomes (the world
        already advanced; records are immutable at their deadlines)."""
        service, handle = self._completed_handle()
        first = list(handle.results())
        second = list(handle.results())
        assert [o.k for o in first] == [o.k for o in second]
        assert [o.on_time for o in first] == [o.on_time for o in second]
        assert [o.value for o in first] == [o.value for o in second]
        assert [o.delivered_at for o in first] == [
            o.delivered_at for o in second
        ]

    def test_results_after_cancel_stop_at_cancellation(self):
        service = make_service(duration=20.0)
        handle = service.submit(QueryRequest(radius_m=60.0, period_s=2.0))
        stream = handle.results()
        first = next(stream)
        assert first.k == 1
        handle.cancel()
        remaining = list(stream)
        assert all(o.deadline <= handle.cancelled_at for o in remaining)
        # a fresh iteration honours the cancellation cutoff too
        replay = list(handle.results())
        assert [o.k for o in replay][: 1 + len(remaining)] == [
            o.k for o in [first] + remaining
        ]

    def test_result_on_rejected_handle_raises(self):
        class RejectAll(AcceptAllPolicy):
            def decide(self, spec, path, service):
                from repro.api import AdmissionDecision

                return AdmissionDecision.reject("no")

        service = make_service(admission=RejectAll())
        handle = service.submit(QueryRequest())
        with pytest.raises(AdmissionError, match="rejected"):
            handle.result()
        with pytest.raises(AdmissionError, match="rejected"):
            list(handle.results())
