"""The overload-resilient serving edge: token buckets, guards, shedding.

The load-bearing property — proved here from several angles — is that a
shed submit leaves *zero* state behind: no log op, no backend submit, no
RNG draw.  The edge can throttle as hard as it likes without ever
perturbing the replay identity.
"""

import json

import pytest

from repro.api.scenarios import ScenarioSpec
from repro.serve.daemon import ServeApp
from repro.serve.edge import EdgeConfig, EdgeGuard, TokenBucket
from repro.serve.errors import WireError
from repro.serve.log import verify_submission_log


def tiny_spec(**overrides):
    data = {
        "name": "edge-tiny",
        "description": "edge test world",
        "mode": "jit",
        "seed": 2,
        "duration_s": 12.0,
        "requests": [],
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


PAYLOAD = {"radius_m": 60.0, "period_s": 2.0, "freshness_s": 1.0}


# ----------------------------------------------------------------------
# TokenBucket arithmetic (fake clock, no sleeping)
# ----------------------------------------------------------------------
def test_token_bucket_refill_arithmetic():
    bucket = TokenBucket(rate=2.0, burst=2.0)
    assert bucket.try_take(0.0) == (True, 0.0)
    assert bucket.try_take(0.0) == (True, 0.0)
    ok, retry = bucket.try_take(0.0)
    assert not ok
    assert retry == pytest.approx(0.5)  # 1 token at 2/s = 0.5s away
    # 0.25s later: half a token accrued, still short by half
    ok, retry = bucket.try_take(0.25)
    assert not ok
    assert retry == pytest.approx(0.25, abs=1e-9)
    # full refill after the wait; burst caps accrual
    assert bucket.try_take(10.0) == (True, 0.0)
    assert bucket.try_take(10.0) == (True, 0.0)
    ok, _ = bucket.try_take(10.0)
    assert not ok


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=2.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.5)


# ----------------------------------------------------------------------
# EdgeConfig
# ----------------------------------------------------------------------
def test_edge_config_defaults_are_disabled():
    config = EdgeConfig()
    assert not config.enabled
    # A disabled guard is a no-op: no counters move, nothing raises.
    guard = EdgeGuard(config)
    guard.admit("anyone", live_sessions=10**6, pump_lag_s=10**6)
    assert guard.counters["checked"] == 0


def test_edge_config_validation_and_effective_burst():
    assert EdgeConfig(rate=4.0).effective_burst == 8.0
    assert EdgeConfig(rate=0.25).effective_burst == 1.0
    assert EdgeConfig(rate=4.0, burst=3.0).effective_burst == 3.0
    for bad in (
        {"rate": -1.0},
        {"burst": -1.0},
        {"max_live_sessions": -1},
        {"max_pump_lag_s": -0.1},
        {"overload_retry_s": 0.0},
    ):
        with pytest.raises(ValueError):
            EdgeConfig(**bad)


# ----------------------------------------------------------------------
# EdgeGuard decisions (fake clock)
# ----------------------------------------------------------------------
def test_guard_rate_limits_per_tenant_with_retry_after():
    clock = {"now": 0.0}
    guard = EdgeGuard(
        EdgeConfig(rate=1.0, burst=1.0), clock=lambda: clock["now"]
    )
    guard.admit("alice", live_sessions=0, pump_lag_s=0.0)
    with pytest.raises(WireError) as info:
        guard.admit("alice", live_sessions=0, pump_lag_s=0.0)
    assert info.value.code == "rate-limited"
    assert info.value.http_status == 429
    assert info.value.retry_after_s == pytest.approx(1.0)
    # Buckets are per tenant: bob is untouched by alice's burn.
    guard.admit("bob", live_sessions=0, pump_lag_s=0.0)
    # And alice recovers once her bucket refills.
    clock["now"] = 1.5
    guard.admit("alice", live_sessions=0, pump_lag_s=0.0)
    assert guard.counters == {
        "checked": 4, "admitted": 3, "rate_limited": 1, "overloaded": 0,
    }
    snap = guard.snapshot()
    assert snap["enabled"] and snap["tenants"] == 2


def test_guard_sheds_on_live_session_and_pump_lag_ceilings():
    guard = EdgeGuard(
        EdgeConfig(max_live_sessions=2, max_pump_lag_s=0.5, overload_retry_s=2.0)
    )
    guard.admit("alice", live_sessions=1, pump_lag_s=0.0)
    with pytest.raises(WireError) as info:
        guard.admit("alice", live_sessions=2, pump_lag_s=0.0)
    assert info.value.code == "overloaded"
    assert info.value.http_status == 503
    assert info.value.retry_after_s == 2.0
    with pytest.raises(WireError) as info:
        guard.admit("alice", live_sessions=0, pump_lag_s=0.75)
    assert "pump" in info.value.message
    assert guard.counters["overloaded"] == 2


# ----------------------------------------------------------------------
# The daemon integration: sheds leave zero state
# ----------------------------------------------------------------------
def test_daemon_shed_leaves_no_log_op_and_no_backend_submit():
    app = ServeApp(
        tiny_spec(), time_scale=0.0, edge=EdgeConfig(max_live_sessions=1)
    )
    first = app.submit("alice", dict(PAYLOAD))
    assert first["status"] == "admitted"
    with pytest.raises(WireError) as info:
        app.submit("alice", dict(PAYLOAD))
    assert info.value.code == "overloaded"
    # The shed consumed nothing: one log op, one backend submission.
    assert len(app.log.ops) == 1
    assert app.backend.stats().submitted == 1
    # An edge-shed invalid payload still never reaches validation state.
    with pytest.raises(WireError) as info:
        app.submit("alice", {"radius_m": -1})
    assert info.value.code == "overloaded"
    assert len(app.log.ops) == 1
    # Counters surface in GET /stats.
    app.start()
    edge_stats = app.stats_payload()["server"]["edge"]
    assert edge_stats["overloaded"] == 2
    assert edge_stats["admitted"] == 1
    # ...and the run still proves the replay identity.
    app.begin_drain()
    assert app.wait_drained(60.0)
    summary = app.finish()
    log = json.loads(
        json.dumps(app.log.to_dict(fingerprints=summary["fingerprints"]))
    )
    ok, recorded, replayed = verify_submission_log(log)
    assert ok, f"replay diverged:\nlive    {recorded}\nreplay  {replayed}"


def test_daemon_rate_limit_is_per_tenant():
    app = ServeApp(
        tiny_spec(),
        time_scale=0.0,
        edge=EdgeConfig(rate=0.001, burst=1.0),
    )
    assert app.submit("alice", dict(PAYLOAD))["status"] == "admitted"
    with pytest.raises(WireError) as info:
        app.submit("alice", dict(PAYLOAD))
    assert info.value.code == "rate-limited"
    assert info.value.retry_after_s > 0
    # A different tenant still gets through.
    assert app.submit("bob", dict(PAYLOAD))["status"] == "admitted"
    app.start()
    app.begin_drain()
    assert app.wait_drained(60.0)
    app.finish()
