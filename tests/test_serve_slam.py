"""repro slam against a live in-process daemon, plus the replay CLI.

The slam tests spin up the real HTTP server on an ephemeral port with
``time_scale=0`` (free-run: simulated seconds cost only compute), fire
the load generator at it, and check the whole chain: admission counts,
streamed outcomes, percentile report, JSON artifact, clean drain, and
the bit-identical replay of the recorded submission log.
"""

import json
import threading

import pytest

from repro.api.scenarios import get_scenario
from repro.cli import main
from repro.serve.daemon import ServeApp, make_server
from repro.serve.log import verify_submission_log
from repro.serve.slam import (
    SlamConfig,
    markdown_table,
    run_slam,
    write_slam_outputs,
)


@pytest.fixture()
def live_daemon():
    """A rush-hour-burst daemon on an ephemeral port.

    Paced (time_scale=4): a free-running daemon would sprint the 16 s
    horizon past the submitter before the burst lands, turning the tail
    of the burst into spurious horizon-passed refusals.
    """
    spec = get_scenario("rush-hour-burst").with_overrides(duration_s=16.0)
    app = ServeApp(spec, time_scale=4.0)
    app.start()
    server = make_server(app, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    try:
        yield spec, app, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        app.finish()


def test_slam_sustains_the_burst_and_replays(live_daemon, tmp_path):
    spec, app, url = live_daemon
    config = SlamConfig(
        url=url, rate=50.0, clients=3, duration_s=60.0, wait_s=0.2
    )
    report = run_slam(spec, config)

    counts = report["counts"]
    assert counts["payloads"] == 12  # the 12-user burst
    assert counts["submitted"] == 12
    assert counts["admitted"] == 12  # phase-assign shifts, never rejects
    assert counts["rejected"] == 0
    assert counts["errors"] == 0
    assert counts["sessions_finished"] == 12
    assert counts["outcomes"] > 0
    assert report["achieved_rate"] > 0

    latency = report["latency_ms"]
    for leg in ("submit", "poll"):
        assert latency[leg] is not None
        assert set(latency[leg]) == {
            "count", "mean", "p50", "p90", "p99", "max",
        }
    assert report["success"] is not None
    assert 0.0 <= report["success"]["mean"] <= 1.0

    table = markdown_table(report)
    assert "| metric | value |" in table
    assert "rush-hour-burst" in table

    path = write_slam_outputs(report, str(tmp_path), name="slamtest")
    assert path.endswith("SLAM_slamtest.json")
    on_disk = json.loads((tmp_path / "SLAM_slamtest.json").read_text())
    assert on_disk["counts"]["admitted"] == 12
    assert len(on_disk["submissions"]) == 12

    # Drain the daemon and prove the whole slammed run replays
    # bit-identically from its submission log.
    app.begin_drain()
    assert app.wait_drained(60.0)
    summary = app.finish()
    assert summary["leak_total"] == 0, summary["leaks"]
    assert summary["sessions"]["admitted"] == 12
    log = json.loads(
        json.dumps(app.log.to_dict(fingerprints=summary["fingerprints"]))
    )
    ok, recorded, replayed = verify_submission_log(log)
    assert ok, f"replay diverged:\nlive    {recorded}\nreplay  {replayed}"


def test_slam_cli_exit_codes(tmp_path):
    # unreachable daemon: the healthz fail-fast maps to exit 3
    rc = main([
        "slam", "rush-hour-burst", "--sim-duration", "16",
        "--url", "http://127.0.0.1:9", "--duration", "1",
        "--out-dir", str(tmp_path),
    ])
    assert rc == 3
    # usage errors: unknown scenario, bad config
    assert main(["slam", "no-such-scenario", "--out-dir", str(tmp_path)]) == 2
    assert main([
        "slam", "rush-hour-burst", "--rate", "0",
        "--out-dir", str(tmp_path),
    ]) == 2


def test_slam_config_validation():
    good = dict(url="http://x", rate=1.0, clients=1, duration_s=1.0)
    SlamConfig(**good)
    for field, bad in (
        ("rate", 0.0), ("clients", 0), ("duration_s", 0.0), ("wait_s", -1.0)
    ):
        with pytest.raises(ValueError):
            SlamConfig(**{**good, field: bad})


# ----------------------------------------------------------------------
# repro replay — the determinism gate as a CLI
# ----------------------------------------------------------------------
def _recorded_log(tmp_path):
    """Run a tiny daemon session and return its written log path."""
    spec = get_scenario("rush-hour-burst").with_overrides(duration_s=8.0)
    app = ServeApp(spec, time_scale=0.0)
    app.start()
    app.submit("cli", {"radius_m": 60.0, "period_s": 2.0, "freshness_s": 1.0})
    app.begin_drain()
    assert app.wait_drained(60.0)
    app.finish()
    path = app.write_log(str(tmp_path), name="replaytest")
    return path


def test_replay_cli_ok(tmp_path, capsys):
    path = _recorded_log(tmp_path)
    assert main(["replay", path]) == 0
    out = capsys.readouterr().out
    assert "replay ok: 1 submissions" in out
    assert "reproduced bit-identically" in out


def test_replay_cli_detects_tampering(tmp_path, capsys):
    path = _recorded_log(tmp_path)
    data = json.loads(open(path).read())
    data["fingerprints"]["frames_sent"] += 1
    with open(path, "w") as fh:
        json.dump(data, fh)
    assert main(["replay", path]) == 3
    assert "REPLAY MISMATCH" in capsys.readouterr().err


def test_replay_cli_usage_errors(tmp_path, capsys):
    assert main(["replay", str(tmp_path / "nope.json")]) == 2

    path = _recorded_log(tmp_path)
    data = json.loads(open(path).read())
    data.pop("fingerprints")
    stripped = tmp_path / "stripped.json"
    stripped.write_text(json.dumps(data))
    assert main(["replay", str(stripped)]) == 2
    assert "no fingerprints" in capsys.readouterr().err

    bad_format = tmp_path / "bad.json"
    bad_format.write_text(json.dumps({"format": "not-a-serve-log"}))
    assert main(["replay", str(bad_format)]) == 2

    not_object = tmp_path / "list.json"
    not_object.write_text("[1, 2]")
    assert main(["replay", str(not_object)]) == 2
