"""Unit tests for PSM duty cycling: schedules, overrides, buffered delivery."""

import pytest

from repro.net.energy import RadioState
from repro.net.packet import Frame
from repro.net.psm import PsmConfig, delivery_time
from repro.sim.kernel import Simulator

from .conftest import line_positions, make_network


class TestPsmConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PsmConfig(beacon_interval_s=0.0)
        with pytest.raises(ValueError):
            PsmConfig(beacon_interval_s=9.0, active_window_s=9.0)
        with pytest.raises(ValueError):
            PsmConfig(beacon_interval_s=9.0, active_window_s=0.1, offset_s=10.0)

    def test_duty_cycle(self):
        config = PsmConfig(beacon_interval_s=15.0, active_window_s=0.15)
        assert config.duty_cycle == pytest.approx(0.01)

    def test_in_window_with_offset(self):
        config = PsmConfig(beacon_interval_s=9.0, active_window_s=0.1, offset_s=4.0)
        assert config.in_window(4.05)
        assert config.in_window(13.05)
        assert not config.in_window(4.2)
        assert not config.in_window(0.05)

    def test_next_window_start(self):
        config = PsmConfig(beacon_interval_s=9.0, active_window_s=0.1, offset_s=4.0)
        assert config.next_window_start(0.0) == pytest.approx(4.0)
        assert config.next_window_start(4.0) == pytest.approx(13.0)
        assert config.next_window_start(12.99) == pytest.approx(13.0)

    def test_boundary_float_robustness(self):
        """Regression: phase at offset + n*T must fold to 0, not T-epsilon.

        With offset 4.4282 the subtraction ``t - offset`` lands a hair
        below an exact multiple of T for some n, which once silently killed
        every sleeper's wake chain mid-run.
        """
        config = PsmConfig(beacon_interval_s=9.0, active_window_s=0.1, offset_s=4.4282)
        for n in range(1, 200):
            t = 4.4282 + n * 9.0
            assert config.in_window(t), f"window start missed at n={n}"
            nxt = config.next_window_start(t)
            assert nxt > t + 1.0  # strictly the *next* window


class TestSleepScheduler:
    def test_sleeper_cycles_with_beacon(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        sleeper = network.nodes[1]
        assert sleeper.radio.is_sleeping  # t=0, outside window
        sim.run(until=4.05)
        assert not sleeper.radio.is_sleeping  # inside window
        sim.run(until=5.0)
        assert sleeper.radio.is_sleeping  # window closed
        sim.run(until=13.05)
        assert not sleeper.radio.is_sleeping  # next window

    def test_long_run_cycle_never_dies(self, sim):
        """Every beacon window must wake the sleeper, far into the run."""
        network = make_network(
            sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.4282
        )
        network.apply_backbone([0])
        sleeper = network.nodes[1]
        for n in range(1, 40):
            sim.run(until=4.4282 + n * 9.0 + 0.05)
            assert not sleeper.radio.is_sleeping, f"dead at window {n}"
            sim.run(until=4.4282 + n * 9.0 + 0.5)
            assert sleeper.radio.is_sleeping, f"insomnia at window {n}"

    def test_wake_override_future(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        sleeper = network.nodes[1]
        sleeper.sleep_scheduler.add_wake_interval(6.0, 6.5)
        sim.run(until=6.1)
        assert not sleeper.radio.is_sleeping
        sim.run(until=7.0)
        assert sleeper.radio.is_sleeping

    def test_wake_override_already_started(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        sleeper = network.nodes[1]
        sim.run(until=1.0)
        sleeper.sleep_scheduler.add_wake_interval(0.5, 2.0)
        sim.run(until=1.1)
        assert not sleeper.radio.is_sleeping
        sim.run(until=2.5)
        assert sleeper.radio.is_sleeping

    def test_wake_override_in_past_ignored(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        sleeper = network.nodes[1]
        sim.run(until=3.0)
        sleeper.sleep_scheduler.add_wake_interval(1.0, 2.0)
        sim.run(until=3.5)
        assert sleeper.radio.is_sleeping

    def test_empty_override_rejected(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        with pytest.raises(ValueError):
            network.nodes[1].sleep_scheduler.add_wake_interval(5.0, 5.0)

    def test_overlapping_override_extends_window(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        sleeper = network.nodes[1]
        # Override straddling the beacon window end at 4.1.
        sleeper.sleep_scheduler.add_wake_interval(4.05, 4.6)
        sim.run(until=4.3)
        assert not sleeper.radio.is_sleeping
        sim.run(until=4.8)
        assert sleeper.radio.is_sleeping

    def test_sleep_deferred_while_mac_busy(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        sleeper = network.nodes[1]
        # Queue a frame right at the end of the window: the node must stay
        # awake long enough to finish the transmission.
        outcomes = []
        sim.schedule(4.09, sleeper.send, Frame("x", 1, 0, 200), outcomes.append)
        sim.run(until=6.0)
        assert outcomes == [True]
        assert sleeper.radio.is_sleeping


class TestDeliveryTime:
    def test_active_node_reachable_now(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        active = network.nodes[0]
        assert delivery_time(active.sleep_scheduler, 1.0) == 1.0

    def test_sleeper_reachable_at_next_window(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        sleeper = network.nodes[1]
        assert delivery_time(sleeper.sleep_scheduler, 1.0) == pytest.approx(4.0)

    def test_sleeper_awake_now_reachable_now(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        sleeper = network.nodes[1]
        sim.run(until=4.05)
        assert delivery_time(sleeper.sleep_scheduler, 4.05) == pytest.approx(4.05)

    def test_send_when_listening_buffers(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        got = []
        network.nodes[1].register_handler("buf", lambda n, f: got.append(sim.now))
        sim.schedule(
            1.0,
            network.nodes[0].send_when_listening,
            Frame("buf", 0, 1, 20),
            network.nodes[1],
        )
        sim.run(until=5.0)
        assert len(got) == 1
        assert 4.0 <= got[0] <= 4.1  # inside the window
