"""The serve daemon: lifecycle, tenancy, drain, and the replay proof.

Most tests drive :class:`ServeApp` directly (time_scale=0 free-runs the
pump, so a 12-simulated-second world finishes in well under a second of
wall time); one spins up the real HTTP server on an ephemeral port.
"""

import json
import threading
import time

import pytest

from repro.api.scenarios import ScenarioSpec
from repro.serve.daemon import ServeApp, make_server
from repro.serve.client import ServeClient
from repro.serve.errors import WireError
from repro.serve.log import verify_submission_log


def tiny_spec(**overrides):
    """A small single-world scenario that free-runs in < 1s of wall time."""
    data = {
        "name": "serve-tiny",
        "description": "daemon test world",
        "mode": "jit",
        "seed": 2,
        "duration_s": 12.0,
        "requests": [],
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


PAYLOAD = {"radius_m": 60.0, "period_s": 2.0, "freshness_s": 1.0}


def make_app(spec=None, **kwargs):
    kwargs.setdefault("time_scale", 0.0)
    return ServeApp(spec if spec is not None else tiny_spec(), **kwargs)


def finish_and_verify(app):
    """Drain, finish, assert zero leaks, and prove the replay identity."""
    app.begin_drain()
    assert app.wait_drained(60.0)
    summary = app.finish()
    assert summary["leak_total"] == 0, summary["leaks"]
    log = json.loads(
        json.dumps(app.log.to_dict(fingerprints=summary["fingerprints"]))
    )
    ok, recorded, replayed = verify_submission_log(log)
    assert ok, f"replay diverged:\nlive    {recorded}\nreplay  {replayed}"
    return summary


def stream_all(app, token, sid):
    """Long-poll one session's ring until done; returns the outcomes."""
    outcomes, after = [], 0
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        resp = app.results(token, sid, after=after, wait_s=1.0)
        outcomes.extend(resp["outcomes"])
        for outcome in resp["outcomes"]:
            after = max(after, outcome["k"])
        if resp["done"]:
            return outcomes, resp
    raise AssertionError("session never finished streaming")


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_submit_stream_drain_finish_and_replay():
    app = make_app()
    app.start()
    resp = app.submit("alice", dict(PAYLOAD))
    assert resp["status"] == "admitted"
    assert resp["num_periods"] == 6
    outcomes, last = stream_all(app, "alice", resp["session"])
    assert [o["k"] for o in outcomes] == list(range(1, 7))
    assert all(o["deadline"] == pytest.approx(2.0 * o["k"]) for o in outcomes)
    assert last["status"] == "completed"
    summary = finish_and_verify(app)
    assert summary["sessions"] == {
        "submitted": 1, "admitted": 1, "rejected": 0, "cancelled": 0,
    }
    assert summary["workload"]["sessions"] == 1
    assert summary["fingerprints"]["frames_sent"] > 0


def test_parallel_submits_get_unique_user_ids_and_replay():
    # Pump started only after the burst: a free-running pump could
    # otherwise sprint the sim toward the horizon between two threads'
    # submits on a loaded box.
    app = make_app()
    results = [None] * 6

    def submit(i):
        results[i] = app.submit(f"client-{i}", dict(PAYLOAD))

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    user_ids = [r["user_id"] for r in results]
    assert sorted(user_ids) == list(range(6))  # cluster-unique, lowest-free
    assert len({r["session"] for r in results}) == 6
    app.start()
    finish_and_verify(app)


def test_cancel_race_is_idempotent_and_recorded_once():
    # time_scale=1 keeps the world slow enough that the session is still
    # live when the cancels race in.
    app = make_app(time_scale=1.0)
    app.start()
    sid = app.submit("alice", dict(PAYLOAD))["session"]
    outcomes = [None] * 4
    barrier = threading.Barrier(4)

    def cancel(i):
        barrier.wait()
        outcomes[i] = app.cancel("alice", sid)

    threads = [threading.Thread(target=cancel, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sum(1 for o in outcomes if o["cancelled"]) == 1
    cancel_ops = [op for op in app.log.ops if op["op"] == "cancel"]
    assert len(cancel_ops) == 1
    resp = app.results("alice", sid, after=0, wait_s=0.5)
    assert resp["done"] and resp["status"] == "cancelled"
    finish_and_verify(app)


def test_cancel_after_completion_is_a_noop():
    app = make_app()
    app.start()
    sid = app.submit("alice", dict(PAYLOAD))["session"]
    stream_all(app, "alice", sid)
    resp = app.cancel("alice", sid)
    assert resp["cancelled"] is False
    assert resp["status"] == "completed"
    assert not [op for op in app.log.ops if op["op"] == "cancel"]
    finish_and_verify(app)


# ----------------------------------------------------------------------
# Tenancy
# ----------------------------------------------------------------------
def test_foreign_session_is_typed_403_and_unknown_404():
    app = make_app()
    app.start()
    sid = app.submit("alice", dict(PAYLOAD))["session"]
    for call in (
        lambda: app.results("mallory", sid),
        lambda: app.cancel("mallory", sid),
    ):
        with pytest.raises(WireError) as info:
            call()
        assert info.value.code == "foreign-session"
        assert info.value.http_status == 403
    with pytest.raises(WireError) as info:
        app.results("alice", sid + 999)
    assert info.value.code == "unknown-session"
    finish_and_verify(app)


# ----------------------------------------------------------------------
# Refusals: draining, horizon, admission
# ----------------------------------------------------------------------
def test_draining_refuses_new_submits():
    app = make_app()
    app.start()
    app.begin_drain()
    with pytest.raises(WireError) as info:
        app.submit("alice", dict(PAYLOAD))
    assert info.value.code == "draining"
    assert info.value.http_status == 503
    finish_and_verify(app)


def test_finished_daemon_refuses_submits_as_service_closed():
    app = make_app()
    app.finish()
    with pytest.raises(WireError) as info:
        app.submit("alice", dict(PAYLOAD))
    assert info.value.code == "service-closed"


def test_horizon_passed_is_refused_before_touching_the_backend():
    app = make_app()
    payload = dict(PAYLOAD)
    payload["start_s"] = 11.5  # horizon 12, period 2: no serviceable period
    with pytest.raises(WireError) as info:
        app.submit("alice", payload)
    assert info.value.code == "horizon-passed"
    # Refused up front: nothing recorded, no backend state, replay of the
    # (empty) log trivially matches.
    assert app.log.ops == []
    assert app.backend.stats().submitted == 0


def test_admission_rejection_is_typed_and_replayable():
    # A per-area cap of one plus two users pinned to the same patrol path
    # forces a deterministic rejection for the second submit.
    spec = tiny_spec(
        admission={"policy": "per-area-cap", "max_overlapping": 1}
    )
    app = make_app(spec)
    payload = dict(PAYLOAD)
    payload["path"] = {
        "kind": "patrol",
        "waypoints": [[200.0, 200.0], [260.0, 200.0]],
        "speed": 2.0,
        "loops": 4,
    }
    first = app.submit("alice", dict(payload))
    assert first["status"] == "admitted"
    second = app.submit("bob", dict(payload))
    app.start()
    assert second["status"] == "rejected"
    assert second["error"]["code"] == "admission-rejected"
    assert second["reason"]
    # The rejection is part of the recorded history (it consumed the
    # admission decision sequence), so replay must reproduce it.
    assert len([op for op in app.log.ops if op["op"] == "submit"]) == 2
    resp = app.results("bob", second["session"], wait_s=0.2)
    assert resp["done"] and resp["outcomes"] == []
    summary = finish_and_verify(app)
    assert summary["sessions"]["rejected"] == 1


# ----------------------------------------------------------------------
# Cluster backend behind the same daemon
# ----------------------------------------------------------------------
def test_cluster_backend_serves_and_replays():
    spec = tiny_spec(name="serve-tiny-cluster", shards=2)
    app = make_app(spec)
    sids = [app.submit("alice", dict(PAYLOAD))["session"] for _ in range(3)]
    app.start()
    outcomes, _ = stream_all(app, "alice", sids[0])
    assert outcomes
    summary = finish_and_verify(app)
    assert summary["stats"]["shards"] == 2
    assert summary["sessions"]["admitted"] == 3


# ----------------------------------------------------------------------
# The real HTTP surface
# ----------------------------------------------------------------------
def test_http_round_trip_on_ephemeral_port():
    app = make_app()
    app.start()
    server = make_server(app, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    url = f"http://{host}:{port}"
    try:
        client = ServeClient(url, "alice")
        health = client.healthz()
        assert health["ok"] and health["scenario"] == "serve-tiny"

        status, resp = client.submit(dict(PAYLOAD))
        assert status == 201 and resp["status"] == "admitted"
        sid = resp["session"]

        # stream to completion over HTTP
        after, got = 0, []
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            r = client.results(sid, after=after, wait_s=1.0)
            got.extend(r["outcomes"])
            for o in r["outcomes"]:
                after = max(after, o["k"])
            if r["done"]:
                break
        assert [o["k"] for o in got] == list(range(1, 7))

        stats = client.stats()
        assert stats["shards"] == 1
        server_side = stats["server"]
        assert server_side["scenario"] == "serve-tiny"
        assert server_side["sessions"]["total"] == 1
        assert "POST /sessions" in server_side["latency_ms"]

        # typed errors over the wire
        status, resp = ServeClient(url, "mallory").request(
            "DELETE", f"/sessions/{sid}"
        )
        assert status == 403
        assert resp["error"]["code"] == "foreign-session"

        no_token = ServeClient(url, "x")
        no_token.token = ""
        status, resp = no_token.request("GET", f"/sessions/{sid}/results")
        assert status == 401 and resp["error"]["code"] == "missing-token"

        status, resp = client.request("GET", "/no/such/route")
        assert status == 404 and resp["error"]["code"] == "unknown-route"

        import urllib.request

        req = urllib.request.Request(
            f"{url}/sessions",
            data=b"{not json",
            method="POST",
            headers={"X-Repro-Token": "alice"},
        )
        try:
            urllib.request.urlopen(req, timeout=5.0)
            raise AssertionError("bad JSON must not return 2xx")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
            assert json.loads(exc.read())["error"]["code"] == "invalid-request"
    finally:
        server.shutdown()
        server.server_close()
    finish_and_verify(app)


def test_client_raises_daemon_unreachable():
    client = ServeClient("http://127.0.0.1:9", "x", timeout_s=0.5)
    with pytest.raises(WireError) as info:
        client.healthz()
    assert info.value.code == "daemon-unreachable"
    assert info.value.exit_code == 3
