"""Unit tests for the spatial hash grid."""

import numpy as np
import pytest

from repro.geometry.grid import SpatialGrid
from repro.geometry.vec import Vec2


@pytest.fixture
def grid():
    g: SpatialGrid[str] = SpatialGrid(cell_size=10.0)
    g.insert("a", Vec2(0, 0))
    g.insert("b", Vec2(5, 5))
    g.insert("c", Vec2(50, 50))
    return g


class TestRegistration:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            SpatialGrid(cell_size=0.0)

    def test_duplicate_insert_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.insert("a", Vec2(1, 1))

    def test_len_and_contains(self, grid):
        assert len(grid) == 3
        assert "a" in grid
        assert "zzz" not in grid

    def test_remove(self, grid):
        grid.remove("b")
        assert "b" not in grid
        assert grid.query_disk(Vec2(5, 5), 1.0) == []

    def test_remove_missing_raises(self, grid):
        with pytest.raises(KeyError):
            grid.remove("nope")

    def test_position_of(self, grid):
        assert grid.position_of("c") == Vec2(50, 50)


class TestDiskQueries:
    def test_query_disk_finds_inside_only(self, grid):
        found = set(grid.query_disk(Vec2(0, 0), 8.0))
        assert found == {"a", "b"}

    def test_query_disk_boundary_included(self, grid):
        found = grid.query_disk(Vec2(0, 0), Vec2(0, 0).distance_to(Vec2(5, 5)))
        assert "b" in found

    def test_query_disk_negative_radius(self, grid):
        assert grid.query_disk(Vec2(0, 0), -1.0) == []

    def test_query_disk_excluding(self, grid):
        found = grid.query_disk_excluding(Vec2(0, 0), 8.0, "a")
        assert found == ["b"]

    def test_matches_brute_force(self):
        rng = np.random.default_rng(42)
        grid: SpatialGrid[int] = SpatialGrid(cell_size=7.0)
        points = {}
        for i in range(300):
            p = Vec2(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            points[i] = p
            grid.insert(i, p)
        for _ in range(25):
            center = Vec2(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            radius = float(rng.uniform(1, 40))
            expected = {
                i for i, p in points.items() if p.distance_to(center) <= radius + 1e-9
            }
            assert set(grid.query_disk(center, radius)) == expected


class TestNearest:
    def test_nearest_basic(self, grid):
        assert grid.nearest(Vec2(48, 48)) == "c"
        assert grid.nearest(Vec2(1, 1)) == "a"

    def test_nearest_empty_raises(self):
        g: SpatialGrid[int] = SpatialGrid(cell_size=5.0)
        with pytest.raises(ValueError):
            g.nearest(Vec2(0, 0))

    def test_nearest_far_query_point(self, grid):
        # query point far outside any populated cell: falls back gracefully
        assert grid.nearest(Vec2(500, 500)) == "c"


class TestExcludingCollection:
    """query_disk_excluding skips during collection — results must equal
    filtering a full disk query, order included."""

    def test_excluding_equals_filtered_full_query(self):
        rng = np.random.default_rng(7)
        grid: SpatialGrid[int] = SpatialGrid(cell_size=9.0)
        for i in range(200):
            grid.insert(i, Vec2(float(rng.uniform(0, 80)), float(rng.uniform(0, 80))))
        for _ in range(20):
            center = Vec2(float(rng.uniform(0, 80)), float(rng.uniform(0, 80)))
            radius = float(rng.uniform(0, 30))
            excluded = int(rng.integers(0, 200))
            assert grid.query_disk_excluding(center, radius, excluded) == [
                item
                for item in grid.query_disk(center, radius)
                if item != excluded
            ]

    def test_excluding_negative_radius(self):
        grid: SpatialGrid[str] = SpatialGrid(cell_size=5.0)
        grid.insert("a", Vec2(0, 0))
        assert grid.query_disk_excluding(Vec2(0, 0), -2.0, "a") == []

    def test_excluding_absent_item_is_noop(self):
        grid: SpatialGrid[str] = SpatialGrid(cell_size=5.0)
        grid.insert("a", Vec2(0, 0))
        grid.insert("b", Vec2(1, 1))
        assert set(grid.query_disk_excluding(Vec2(0, 0), 5.0, "zz")) == {"a", "b"}
