"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    AnalysisParams,
    interference_length_greedy,
    interference_length_jit,
    jit_forward_time,
    prefetch_length_greedy,
    prefetch_length_jit,
    warmup_periods,
)
from repro.core.query import AggregateState, Aggregation
from repro.geometry.grid import SpatialGrid
from repro.geometry.shapes import Circle
from repro.geometry.vec import Vec2
from repro.mobility.path import PiecewisePath, Waypoint
from repro.net.psm import PsmConfig

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
small = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
vecs = st.builds(Vec2, small, small)


class TestVecProperties:
    @given(vecs, vecs)
    def test_addition_commutes(self, a, b):
        assert (a + b).is_close(b + a)

    @given(vecs, vecs, vecs)
    def test_addition_associates(self, a, b, c):
        assert ((a + b) + c).is_close(a + (b + c), tol=1e-6)

    @given(vecs)
    def test_additive_inverse(self, v):
        assert (v + (-v)).is_close(Vec2.zero(), tol=1e-9)

    @given(vecs, vecs)
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(vecs, vecs)
    def test_distance_symmetric(self, a, b):
        assert math.isclose(a.distance_to(b), b.distance_to(a), abs_tol=1e-9)

    @given(vecs)
    def test_rotation_preserves_norm(self, v):
        assert math.isclose(v.rotated(1.234).norm(), v.norm(), rel_tol=1e-9, abs_tol=1e-9)

    @given(vecs, vecs, st.floats(min_value=0.0, max_value=1.0))
    def test_lerp_stays_on_segment(self, a, b, t):
        p = a.lerp(b, t)
        direct = a.distance_to(b)
        assert a.distance_to(p) + p.distance_to(b) <= direct + 1e-6 * (1 + direct)


class TestCircleProperties:
    @given(vecs, st.floats(min_value=0.1, max_value=500.0),
           vecs, st.floats(min_value=0.1, max_value=500.0))
    def test_intersection_points_lie_on_both_circles(self, c1, r1, c2, r2):
        a = Circle(c1, r1)
        b = Circle(c2, r2)
        for p in a.intersection_points(b):
            assert math.isclose(c1.distance_to(p), r1, rel_tol=1e-6, abs_tol=1e-5)
            assert math.isclose(c2.distance_to(p), r2, rel_tol=1e-6, abs_tol=1e-5)

    @given(vecs, st.floats(min_value=0.1, max_value=500.0), vecs)
    def test_contains_consistent_with_distance(self, center, radius, point):
        circle = Circle(center, radius)
        assert circle.contains(point) == (center.distance_to(point) <= radius + 1e-9)


class TestAggregateProperties:
    readings = st.lists(
        st.tuples(st.integers(min_value=0, max_value=50),
                  st.floats(min_value=-100, max_value=100, allow_nan=False)),
        min_size=1, max_size=20,
    )

    @given(readings)
    def test_merge_matches_direct_computation(self, readings):
        agg = AggregateState()
        for nid, value in readings:
            agg.merge(AggregateState.from_reading(nid, value))
        # deduplicate by first reading per node (merge ignores repeats)
        first = {}
        for nid, value in readings:
            first.setdefault(nid, value)
        values = list(first.values())
        assert agg.count == len(values)
        assert math.isclose(agg.value(Aggregation.SUM), sum(values), abs_tol=1e-6)
        assert math.isclose(agg.value(Aggregation.MIN), min(values), abs_tol=1e-9)
        assert math.isclose(agg.value(Aggregation.MAX), max(values), abs_tol=1e-9)
        assert agg.contributors == set(first)

    @given(readings, readings)
    def test_merge_commutative_for_disjoint_partials(self, left, right):
        """The protocol invariant: each node reports to exactly one parent,
        so partials meeting at a merge point have disjoint contributors.
        Under that precondition merging is order-independent."""

        def build(readings, offset):
            agg = AggregateState()
            for nid, value in readings:
                agg.merge(AggregateState.from_reading(nid + offset, value))
            return agg

        # force disjoint id spaces (0-50 vs 1000-1050)
        ab = build(left, 0)
        ab.merge(build(right, 1000))
        ba = build(right, 1000)
        ba.merge(build(left, 0))
        assert ab.contributors == ba.contributors
        assert ab.count == ba.count
        assert math.isclose(
            ab.value(Aggregation.MIN), ba.value(Aggregation.MIN), abs_tol=1e-9
        )
        assert math.isclose(
            ab.value(Aggregation.MAX), ba.value(Aggregation.MAX), abs_tol=1e-9
        )
        assert math.isclose(
            ab.value(Aggregation.SUM), ba.value(Aggregation.SUM), abs_tol=1e-6
        )


class TestGridProperties:
    points = st.lists(
        st.tuples(st.floats(min_value=0, max_value=500, allow_nan=False),
                  st.floats(min_value=0, max_value=500, allow_nan=False)),
        min_size=0, max_size=60,
    )

    @given(points,
           st.floats(min_value=0, max_value=500, allow_nan=False),
           st.floats(min_value=0, max_value=500, allow_nan=False),
           st.floats(min_value=0.0, max_value=300.0))
    @settings(max_examples=50)
    def test_disk_query_equals_brute_force(self, points, cx, cy, radius):
        grid: SpatialGrid[int] = SpatialGrid(cell_size=50.0)
        positions = {}
        for i, (x, y) in enumerate(points):
            positions[i] = Vec2(x, y)
            grid.insert(i, positions[i])
        center = Vec2(cx, cy)
        # Same boundary predicate the grid documents: squared distance with
        # a 1e-9 epsilon.  (Comparing `distance <= radius + 1e-9` instead is
        # a *different* tolerance: for radius=0 and a point 1.2e-7 away the
        # squared form includes it and the linear form does not.)
        expected = {
            i
            for i, p in positions.items()
            if p.distance_sq_to(center) <= radius * radius + 1e-9
        }
        assert set(grid.query_disk(center, radius)) == expected


class TestPathProperties:
    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e4, allow_nan=False), vecs),
        min_size=1, max_size=8, unique_by=lambda wp: round(wp[0], 3),
    ))
    def test_position_continuous_at_waypoints(self, raw):
        raw.sort(key=lambda wp: wp[0])
        waypoints = [Waypoint(t, p) for t, p in raw]
        path = PiecewisePath(waypoints)
        for wp in waypoints:
            assert path.position_at(wp.time).is_close(wp.position, tol=1e-6)

    @given(st.floats(min_value=0.1, max_value=100.0),
           vecs, vecs,
           st.floats(min_value=0.0, max_value=1.0))
    def test_constant_velocity_path_linear(self, duration, start, vel, frac):
        path = PiecewisePath.from_velocity(start, vel, 0.0, duration)
        t = duration * frac
        expected = start + vel * t
        assert path.position_at(t).is_close(expected, tol=1e-6 * (1 + expected.norm()))


class TestPsmProperties:
    @given(st.floats(min_value=1.0, max_value=30.0),
           st.floats(min_value=0.0, max_value=0.999),
           st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=200)
    def test_next_window_start_strictly_future_and_in_window(self, interval, offset_frac, t):
        config = PsmConfig(
            beacon_interval_s=interval,
            active_window_s=min(0.1, interval / 2),
            offset_s=offset_frac * interval,
        )
        nxt = config.next_window_start(t)
        assert nxt > t
        assert config.in_window(nxt + 1e-9) or config.in_window(nxt)

    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=1.0, max_value=30.0),
           st.floats(min_value=0.0, max_value=0.999))
    def test_window_starts_always_in_window(self, n, interval, offset_frac):
        config = PsmConfig(
            beacon_interval_s=interval,
            active_window_s=min(0.1, interval / 2),
            offset_s=offset_frac * interval,
        )
        t = config.offset_s + n * interval
        assert config.in_window(t)


class TestAnalysisProperties:
    params = st.builds(
        AnalysisParams,
        st.floats(min_value=0.5, max_value=20.0),   # Tperiod
        st.floats(min_value=0.1, max_value=10.0),   # Tfresh
        st.floats(min_value=1.0, max_value=30.0),   # Tsleep
        st.floats(min_value=0.5, max_value=30.0),   # vuser
        st.floats(min_value=50.0, max_value=500.0), # vprfh
    )

    @given(params)
    def test_jit_prefetch_length_positive(self, p):
        assert prefetch_length_jit(p) >= 2

    @given(params, st.floats(min_value=100.0, max_value=10_000.0))
    def test_greedy_grows_jit_does_not(self, p, lifetime):
        short = prefetch_length_greedy(lifetime, p)
        long = prefetch_length_greedy(lifetime * 3, p)
        assert long >= short

    @given(params, st.integers(min_value=1, max_value=100))
    def test_forward_time_monotone_in_k(self, p, k):
        assert jit_forward_time(k + 1, p) > jit_forward_time(k, p)

    @given(params, st.floats(min_value=-20.0, max_value=60.0))
    def test_warmup_nonincreasing_in_advance_time(self, p, ta):
        if p.speed_ratio >= 1.0:
            return
        assert warmup_periods(ta + 5.0, p) <= warmup_periods(ta, p)

    @given(params)
    def test_jit_interference_never_exceeds_greedy(self, p):
        assert interference_length_jit(150.0, 50.0, p) <= interference_length_greedy(
            150.0, 50.0, p
        )
