"""``repro fuzz``: bounded draws, seed determinism, sweep integration."""

import json

import pytest

from repro.api.scenarios import ScenarioSpec
from repro.cli import main
from repro.faults.fuzz import (
    FUZZ_ADMISSIONS,
    FUZZ_ARRIVALS,
    FuzzBounds,
    draw_case,
    markdown_summary,
    run_fuzz,
    write_fuzz_outputs,
)
from repro.sim.rng import RandomStreams


def tiny_base():
    return ScenarioSpec.from_dict(
        {
            "name": "fuzz-tiny",
            "description": "fuzz test base world",
            "mode": "jit",
            "seed": 2,
            "duration_s": 12.0,
            "requests": [],
        }
    )


#: bounds small enough that a full sweep cell free-runs in well under 1s
TINY_BOUNDS = FuzzBounds(
    users=(2, 2),
    shards=(1, 1),
    duration_s=(6.0, 8.0),
    period_s=(1.5, 2.0),
    radius_m=(40.0, 60.0),
    spacing_s=(0.0, 1.0),
    intensity=(0.0, 0.6),
)


def test_bounds_validation_rejects_inverted_and_out_of_range():
    for bad in (
        {"users": (3, 2)},
        {"users": (0, 2)},
        {"shards": (0, 1)},
        {"duration_s": (2.0, 10.0)},
        {"period_s": (0.1, 1.0)},
        {"radius_m": (1.0, 50.0)},
        {"spacing_s": (-1.0, 1.0)},
        {"intensity": (0.5, 1.5)},
        {"intensity": (-0.1, 0.5)},
    ):
        with pytest.raises(ValueError):
            FuzzBounds(**bad)
    data = FuzzBounds().to_dict()
    assert data["users"] == [2, 6] and data["intensity"] == [0.25, 1.0]


def test_draws_stay_strictly_inside_the_bounds():
    base = tiny_base()
    rng = RandomStreams(3).stream("fuzz")
    for index in range(12):
        case = draw_case(base, rng, index, TINY_BOUNDS)
        drawn = case.drawn
        assert TINY_BOUNDS.users[0] <= drawn["users"] <= TINY_BOUNDS.users[1]
        assert drawn["shards"] == 1
        lo, hi = TINY_BOUNDS.duration_s
        assert lo <= drawn["duration_s"] <= hi
        lo, hi = TINY_BOUNDS.period_s
        assert lo <= drawn["period_s"] <= hi
        lo, hi = TINY_BOUNDS.radius_m
        assert lo <= drawn["radius_m"] <= hi
        lo, hi = TINY_BOUNDS.intensity
        assert lo <= drawn["intensity"] <= hi
        assert drawn["freshness_s"] < drawn["period_s"]
        assert drawn["arrival"] in FUZZ_ARRIVALS
        assert drawn["admission"] in FUZZ_ADMISSIONS
        # The derived spec is a valid, runnable scenario.
        assert case.spec.name == f"fuzz-tiny-fuzz{index}"
        assert case.spec.requests[0]["count"] == drawn["users"]
        # The axes always carry the invariant baselines.
        assert case.axes.intensities[0] == 0.0
        assert case.axes.shards[0] == 1
        assert case.axes.admissions[0] == "accept-all"


def test_same_seed_draws_the_same_cases():
    base = tiny_base()
    rng_a = RandomStreams(9).stream("fuzz")
    rng_b = RandomStreams(9).stream("fuzz")
    drawn_a = [draw_case(base, rng_a, i, TINY_BOUNDS).drawn for i in range(6)]
    drawn_b = [draw_case(base, rng_b, i, TINY_BOUNDS).drawn for i in range(6)]
    assert drawn_a == drawn_b
    rng_c = RandomStreams(10).stream("fuzz")
    drawn_c = [draw_case(base, rng_c, i, TINY_BOUNDS).drawn for i in range(6)]
    assert drawn_a != drawn_c


def test_run_fuzz_end_to_end_holds_invariants_and_writes_report(tmp_path):
    result = run_fuzz(tiny_base(), runs=1, seed=4, bounds=TINY_BOUNDS)
    assert result.ok, result.violations
    assert result.runs == 1 and result.seed == 4
    assert result.cases[0]["cells"] == len(result.cases[0]["rows"])
    # Serializable, and the file lands where asked.
    data = json.loads(json.dumps(result.to_dict()))
    assert data["ok"] and data["base"] == "fuzz-tiny"
    # A not-yet-existing out dir is created, not a traceback.
    path = write_fuzz_outputs(result, str(tmp_path / "reports" / "fuzz"))
    assert path.endswith("FUZZ_fuzz-tiny-fuzz.json")
    on_disk = json.loads(open(path, encoding="utf-8").read())
    assert on_disk == data
    table = markdown_summary(result)
    assert "| case |" in table and "| 0 |" in table and "ok |" in table


def test_run_fuzz_validates_inputs():
    with pytest.raises(ValueError):
        run_fuzz(tiny_base(), runs=0)
    with pytest.raises(ValueError):
        run_fuzz(tiny_base(), seed=-1)


def test_cli_fuzz_usage_errors_exit_2(capsys):
    assert main(["fuzz"]) == 2
    assert "base scenario" in capsys.readouterr().err
    assert main(["fuzz", "no-such-scenario"]) == 2
