"""Unit tests for generator processes and signals."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.process import Interrupted, Process, Signal, Timeout, start_process


class TestTimeout:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_process_sleeps_for_timeout(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(sim.now)
            yield Timeout(2.5)
            log.append(sim.now)

        start_process(sim, proc())
        sim.run()
        assert log == [0.0, 2.5]

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()
        times = []

        def proc():
            for _ in range(3):
                yield Timeout(1.0)
                times.append(sim.now)

        start_process(sim, proc())
        sim.run()
        assert times == [1.0, 2.0, 3.0]


class TestSignal:
    def test_wait_on_signal_receives_value(self):
        sim = Simulator()
        signal = Signal(sim, name="data")
        got = []

        def proc():
            value = yield signal
            got.append(value)

        start_process(sim, proc())
        sim.schedule(1.0, signal.trigger, 42)
        sim.run()
        assert got == [42]

    def test_already_triggered_signal_resumes_immediately(self):
        sim = Simulator()
        signal = Signal(sim)
        signal.trigger("early")
        got = []

        def proc():
            got.append((yield signal))

        start_process(sim, proc())
        sim.run()
        assert got == ["early"]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        signal = Signal(sim)
        signal.trigger()
        with pytest.raises(SimulationError):
            signal.trigger()

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        signal = Signal(sim)
        woken = []

        def waiter(tag):
            yield signal
            woken.append(tag)

        start_process(sim, waiter("a"))
        start_process(sim, waiter("b"))
        sim.schedule(1.0, signal.trigger)
        sim.run()
        assert sorted(woken) == ["a", "b"]


class TestProcessComposition:
    def test_process_completion_is_awaitable(self):
        sim = Simulator()
        result = []

        def child():
            yield Timeout(1.0)
            return "child-done"

        def parent():
            value = yield start_process(sim, child())
            result.append((value, sim.now))

        start_process(sim, parent())
        sim.run()
        assert result == [("child-done", 1.0)]

    def test_process_return_value_on_signal(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return 99

        p = start_process(sim, proc())
        sim.run()
        assert p.triggered
        assert p.value == 99
        assert not p.alive


class TestInterrupt:
    def test_interrupt_raises_inside_process(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                yield Timeout(10.0)
                log.append("finished")
            except Interrupted as exc:
                log.append(("interrupted", exc.reason, sim.now))

        p = start_process(sim, proc())
        sim.schedule(2.0, p.interrupt, "cancel!")
        sim.run()
        assert log == [("interrupted", "cancel!", 2.0)]

    def test_uncaught_interrupt_kills_quietly(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        p = start_process(sim, proc())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert not p.alive
        assert p.triggered

    def test_interrupt_after_completion_is_noop(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return "ok"

        p = start_process(sim, proc())
        sim.run()
        p.interrupt()
        sim.run()
        assert p.value == "ok"


class TestBadYields:
    def test_yielding_garbage_raises(self):
        sim = Simulator()

        def proc():
            yield "not-a-waitable"

        start_process(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()
