"""The numpy-optional reception physics: both paths, one set of results.

Three families of pins:

* **numpy-absent** — the vectorized module must import (and the whole
  simulator must reproduce the golden results) with numpy blocked from
  ``sys.modules``, and the ``REPRO_VECTORIZE`` kill-switch must force the
  reference path with numpy installed.
* **bit-identity** — the accelerated and reference paths must produce
  identical deliveries, counters and energy integrals over cohort widths
  on both sides of ``VECTOR_COHORT_THRESHOLD`` (the store is force-bound
  here; real worlds only ratchet onto it at ``STORE_BIND_THRESHOLD``).
* **memo churn** — register/unregister churn straddling
  ``MOBILE_MEMO_THRESHOLD`` must clear the position memo at every
  crossing and stay bit-identical to a channel that never memoizes.
"""

import importlib
import sys

import pytest

from repro.geometry.vec import Vec2
from repro.net import channel as channel_mod
from repro.net import vectorized
from repro.net.channel import MOBILE_MEMO_THRESHOLD, Channel
from repro.net.node import MobileEndpoint, SensorNode
from repro.net.packet import BROADCAST, Frame
from repro.net.vectorized import VECTOR_COHORT_THRESHOLD
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams

from .test_golden_determinism import GOLDEN_EVENT_COUNTS, GOLDEN_RESULTS, _config


def _line_world(sim, n_listeners, spacing=1.5, comm_range=105.0):
    """One sender at x=0 plus ``n_listeners`` static nodes, all in range."""
    channel = Channel(sim, comm_range=comm_range, bitrate_bps=2e6)
    streams = RandomStreams(7)
    nodes = []
    for i in range(n_listeners + 2):
        node = SensorNode(
            i, Vec2(i * spacing, 0.0), sim, channel, streams.stream(f"mac-{i}")
        )
        channel.register_static(node)
        nodes.append(node)
    return channel, nodes


def _collision_rich_run(channel, nodes):
    """Broadcasts with overlap, a mid-airtime sleeper and a clean tail.

    Exercises delivery, overlap corruption, receiver-left-listening
    corruption and the post-frame energy/state transitions — every branch
    the vector kernels replace.
    """
    sim = nodes[0].sim
    got = []
    for node in nodes:
        node.register_handler(
            "data", lambda n, f: got.append((n.node_id, f.payload))
        )
    first = Frame("data", 0, BROADCAST, 1500, payload="a")
    channel.transmit(nodes[0], first)
    # Overlapping frame from the far end: everyone in both ranges corrupts.
    channel.transmit(nodes[-1], Frame("data", nodes[-1].node_id, BROADCAST, 1500,
                                      payload="b"))
    # One listener drops out of listening mid-airtime of the next frame.
    airtime = channel.airtime(first)
    sim.schedule(0.1 + airtime / 2, nodes[1].radio.sleep)
    sim.schedule(0.1, channel.transmit, nodes[0],
                 Frame("data", 0, BROADCAST, 1500, payload="c"))
    # A clean final frame after the air settles.
    sim.schedule(0.3, channel.transmit, nodes[0],
                 Frame("data", 0, BROADCAST, 400, payload="d"))
    sim.run(until=1.0)
    energies = tuple(node.radio.energy.average_power_w() for node in nodes)
    states = tuple(node.radio.state for node in nodes)
    return (
        tuple(got),
        channel.frames_delivered,
        channel.frames_collided,
        energies,
        states,
    )


class TestNumpyAbsent:
    def test_kill_switch_forces_reference(self, monkeypatch):
        for value in ("0", "off", "false", "reference", "no"):
            monkeypatch.setenv("REPRO_VECTORIZE", value)
            assert vectorized.numpy_or_none() is None
            assert vectorized.accelerator_name() == "reference"
        monkeypatch.delenv("REPRO_VECTORIZE")
        if vectorized._np is not None:
            assert vectorized.numpy_or_none() is vectorized._np
            assert vectorized.accelerator_name().startswith("numpy-")

    def test_reference_path_matches_goldens_without_numpy(self):
        """Block numpy from fresh imports, reload the module, run a pinned
        scenario end to end: the reference path must reproduce the golden
        results exactly (the no-numpy CI leg in miniature)."""
        from repro.experiments.runner import run_experiment

        saved = sys.modules.get("numpy")
        sys.modules["numpy"] = None  # any fresh ``import numpy`` raises
        try:
            importlib.reload(vectorized)
        finally:
            # Unblock immediately: other subsystems (RNG streams) import
            # numpy unconditionally and are out of scope here.  The module
            # under test keeps the numpy-less state it just loaded with.
            if saved is not None:
                sys.modules["numpy"] = saved
            else:
                del sys.modules["numpy"]
        try:
            assert vectorized._np is None
            assert vectorized.numpy_or_none() is None
            assert vectorized.accelerator_name() == "reference"
            result = run_experiment(_config(1))
        finally:
            importlib.reload(vectorized)
        golden = GOLDEN_RESULTS["single_user"]
        assert result.frames_sent == golden["frames_sent"]
        assert result.frames_delivered == golden["frames_delivered"]
        assert result.frames_collided == golden["frames_collided"]
        assert (
            tuple(s.success_ratio for s in result.workload.sessions)
            == golden["success_ratios"]
        )
        assert result.events_executed == GOLDEN_EVENT_COUNTS["single_user"]


@pytest.mark.skipif(
    vectorized._np is None, reason="numpy not installed; only one path exists"
)
class TestBitIdentity:
    """Accelerated vs reference: same inputs, bit-equal outputs."""

    @pytest.mark.parametrize(
        "cohort",
        [1, VECTOR_COHORT_THRESHOLD, VECTOR_COHORT_THRESHOLD + 1, 64],
    )
    def test_static_cohorts_identical_across_paths(self, cohort, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "reference")
        sim_ref = Simulator()
        channel_ref, nodes_ref = _line_world(sim_ref, cohort)
        assert channel_ref._np is None
        reference = _collision_rich_run(channel_ref, nodes_ref)

        monkeypatch.delenv("REPRO_VECTORIZE")
        sim_vec = Simulator()
        channel_vec, nodes_vec = _line_world(sim_vec, cohort)
        assert channel_vec._np is not None
        # Real worlds only ratchet onto the store at STORE_BIND_THRESHOLD;
        # force-bind here so the dense kernels actually run at every width.
        assert channel_vec._bind_store() is not None
        accelerated = _collision_rich_run(channel_vec, nodes_vec)

        assert accelerated == reference

    def test_wide_world_binds_and_stays_identical(self, monkeypatch):
        """Past STORE_BIND_THRESHOLD the ratchet engages on its own."""
        from repro.net.vectorized import STORE_BIND_THRESHOLD

        width = STORE_BIND_THRESHOLD + 5
        # Tight spacing keeps the whole line inside one coverage disk, so
        # the sender's static cohort really is ``width`` + 1 listeners.
        monkeypatch.setenv("REPRO_VECTORIZE", "reference")
        sim_ref = Simulator()
        channel_ref, nodes_ref = _line_world(sim_ref, width, spacing=1.0)
        reference = _collision_rich_run(channel_ref, nodes_ref)

        monkeypatch.delenv("REPRO_VECTORIZE")
        sim_vec = Simulator()
        channel_vec, nodes_vec = _line_world(sim_vec, width, spacing=1.0)
        accelerated = _collision_rich_run(channel_vec, nodes_vec)
        assert channel_vec._vstore is not None  # the ratchet fired
        assert accelerated == reference


class TestMemoChurnAcrossThreshold:
    """Satellite bugfix: crossing MOBILE_MEMO_THRESHOLD clears the memo."""

    def _proxy(self, sim, channel, node_id, x0, vx=4.0):
        return MobileEndpoint(
            node_id=node_id,
            sim=sim,
            channel=channel,
            rng=RandomStreams(5).stream(f"proxy-{node_id}"),
            position_fn=lambda t, x0=x0, vx=vx: Vec2(x0 + vx * t, 0.0),
            max_speed_mps=abs(vx),
        )

    def _churn_run(self, memo_threshold, monkeypatch):
        """One static sender, a proxy fleet churning around the threshold.

        Returns (per-transmit delivery sets, memo snapshots at each
        crossing).  ``memo_threshold`` is monkeypatched so the same
        schedule can run with the memo enabled (real threshold) and
        effectively disabled (huge threshold) — results must agree.
        """
        # Kill the sweep/vector machinery: this pins the scalar memo path.
        monkeypatch.setenv("REPRO_VECTORIZE", "reference")
        monkeypatch.setattr(channel_mod, "MOBILE_MEMO_THRESHOLD", memo_threshold)
        sim = Simulator()
        channel = Channel(sim, comm_range=105.0, bitrate_bps=2e6)
        streams = RandomStreams(7)
        sender = SensorNode(0, Vec2(0, 0), sim, channel, streams.stream("mac-0"))
        channel.register_static(sender)
        fleet_size = MOBILE_MEMO_THRESHOLD + 1  # just above the real memo gate
        proxies = [
            # Spread across the range edge so motion changes who receives.
            self._proxy(sim, channel, 1000 + i, 90.0 + 2.0 * i)
            for i in range(fleet_size)
        ]
        for proxy in proxies:
            channel.register_mobile(proxy)
        deliveries = []
        for proxy in proxies:
            proxy.register_handler(
                "data", lambda p, f: deliveries.append((p.node_id, f.payload))
            )

        def snapshot():
            return dict(channel._mobile_pos)

        memo_states = []
        # t=0.0: fleet above threshold -> memo path writes entries.
        channel.transmit(sender, Frame("data", 0, BROADCAST, 1500, payload="a"))
        sim.run(until=0.2)
        memo_states.append(snapshot())
        # Drop to the threshold: the crossing must clear the memo.
        channel.unregister_mobile(proxies[-1].node_id)
        memo_states.append(snapshot())
        channel.transmit(sender, Frame("data", 0, BROADCAST, 1500, payload="b"))
        sim.run(until=0.4)
        # Climb back above: again a crossing, again a clean slate.
        channel.register_mobile(proxies[-1])
        memo_states.append(snapshot())
        channel.transmit(sender, Frame("data", 0, BROADCAST, 1500, payload="c"))
        sim.run(until=0.6)
        return tuple(deliveries), memo_states

    def test_crossings_clear_memo_and_results_match_direct(self, monkeypatch):
        direct, _ = self._churn_run(10**6, monkeypatch)  # memo never engages
        memoed, memo_states = self._churn_run(MOBILE_MEMO_THRESHOLD, monkeypatch)
        assert memoed == direct
        above, after_drop, after_regrow = memo_states
        # While above the threshold the memo held the evaluated fleet.
        assert above  # entries were written by the first transmit
        # Both crossings started the next era from a clean slate.
        assert after_drop == {}
        assert after_regrow == {}
