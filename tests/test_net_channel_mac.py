"""Integration tests for the channel + MAC stack on tiny topologies."""

import pytest

from repro.geometry.vec import Vec2
from repro.net.packet import BROADCAST, Frame
from repro.sim.kernel import Simulator

from .conftest import all_active, line_positions, make_network


def collect_frames(network, kind):
    """Register a collecting handler for ``kind`` on every node."""
    received = []
    for node in network.nodes:
        node.register_handler(
            kind, lambda n, f: received.append((n.node_id, f.payload))
        )
    return received


class TestChannelBasics:
    def test_airtime_scales_with_size(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        small = Frame("x", 0, 1, size_bytes=10)
        big = Frame("x", 0, 1, size_bytes=1000)
        assert network.channel.airtime(big) > network.channel.airtime(small)

    def test_airtime_value(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        frame = Frame("x", 0, 1, size_bytes=32)  # + 18 B MAC header
        expected = 192e-6 + (50 * 8) / 2e6
        assert network.channel.airtime(frame) == pytest.approx(expected)

    def test_unicast_delivered_in_range(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        all_active(network)
        received = collect_frames(network, "hello")
        network.nodes[0].send(Frame("hello", 0, 1, 20, payload="hi"))
        sim.run(until=1.0)
        assert received == [(1, "hi")]

    def test_no_delivery_out_of_range(self, sim):
        network = make_network(sim, line_positions(2, 300.0))
        all_active(network)
        received = collect_frames(network, "hello")
        network.nodes[0].send(Frame("hello", 0, 1, 20))
        sim.run(until=1.0)
        assert received == []

    def test_broadcast_reaches_all_awake_neighbors(self, sim):
        network = make_network(sim, line_positions(4, 50.0))
        all_active(network)
        received = collect_frames(network, "bcast")
        # node 1 at x=50; neighbors within 105 m: nodes 0, 2, 3 (x=0,100,150)
        network.nodes[1].send(Frame("bcast", 1, BROADCAST, 20, payload="b"))
        sim.run(until=1.0)
        assert sorted(nid for nid, _ in received) == [0, 2, 3]

    def test_sleeping_node_misses_broadcast(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])  # node 1 sleeps (next window at t=4)
        received = collect_frames(network, "bcast")
        sim.schedule(1.0, network.nodes[0].send, Frame("bcast", 0, BROADCAST, 20))
        sim.run(until=2.0)
        assert received == []

    def test_unicast_to_sleeping_node_fails(self, sim):
        network = make_network(sim, line_positions(2, 50.0), sleep_period=9.0, psm_offset=4.0)
        network.apply_backbone([0])
        outcomes = []
        sim.schedule(
            1.0,
            network.nodes[0].send,
            Frame("x", 0, 1, 20),
            outcomes.append,
        )
        sim.run(until=3.0)
        assert outcomes == [False]
        assert network.nodes[0].mac.unicast_failures == 1


class TestAckAndRetry:
    def test_unicast_success_callback(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        all_active(network)
        outcomes = []
        network.nodes[0].send(Frame("x", 0, 1, 20), outcomes.append)
        sim.run(until=1.0)
        assert outcomes == [True]

    def test_duplicate_suppression_on_retransmit(self, sim):
        """A frame retransmitted at the MAC level is dispatched once."""
        network = make_network(sim, line_positions(2, 50.0))
        all_active(network)
        received = collect_frames(network, "once")
        frame = Frame("once", 0, 1, 20, payload="p")
        network.nodes[0].send(frame)
        sim.run(until=0.5)
        # Simulate a lost-ACK retransmission of the identical frame.
        network.nodes[0].send(
            Frame("once", 0, 1, 20, payload="p", seq=frame.seq)
        )
        sim.run(until=1.0)
        assert received == [(1, "p")]

    def test_queue_preserves_fifo_order(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        all_active(network)
        received = collect_frames(network, "seq")
        for i in range(5):
            network.nodes[0].send(Frame("seq", 0, 1, 20, payload=i))
        sim.run(until=2.0)
        assert [p for _, p in received] == [0, 1, 2, 3, 4]


class TestCollisions:
    def test_hidden_terminal_collision(self, sim):
        """Two senders out of each other's range corrupt a middle receiver."""
        # 0 --- 1 --- 2 with 0 and 2 mutually out of range (200 m apart)
        network = make_network(sim, line_positions(3, 100.0), comm_range=105.0)
        all_active(network)
        received = collect_frames(network, "big")
        # Big frames so their airtimes surely overlap when started together.
        sim.schedule(0.5, network.nodes[0].send, Frame("big", 0, BROADCAST, 1500))
        sim.schedule(0.5, network.nodes[2].send, Frame("big", 2, BROADCAST, 1500))
        sim.run(until=1.0)
        middle = [nid for nid, _ in received if nid == 1]
        assert middle == []  # both corrupted at node 1
        assert network.channel.frames_collided >= 2

    def test_carrier_sense_serializes_neighbors(self, sim):
        """In-range senders defer to each other; both frames get through."""
        network = make_network(sim, line_positions(3, 50.0), comm_range=105.0)
        all_active(network)
        received = collect_frames(network, "msg")
        # Nodes 0 and 2 both in range of node 1 AND of each other (100 m).
        sim.schedule(0.5, network.nodes[0].send, Frame("msg", 0, BROADCAST, 400))
        sim.schedule(0.5005, network.nodes[2].send, Frame("msg", 2, BROADCAST, 400))
        sim.run(until=1.0)
        at_middle = [nid for nid, _ in received if nid == 1]
        assert len(at_middle) == 2

    def test_medium_busy_during_transmission(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        all_active(network)
        node0, node1 = network.nodes
        states = []

        def probe():
            states.append(network.channel.medium_busy(node1))

        node0.send(Frame("x", 0, BROADCAST, 1500))
        # MAC backoff defers the actual transmit; sample while on air.
        sim.schedule(0.004, probe)
        sim.run(until=1.0)
        assert states == [True]


class TestMobileEndpoint:
    def test_moving_endpoint_receives_when_in_range(self, sim):
        from repro.net.node import MobileEndpoint
        from repro.sim.rng import RandomStreams

        network = make_network(sim, line_positions(1, 0.0))
        all_active(network)
        # Proxy walks along x: at t=1 it is at (10, 0), within range of node 0.
        proxy = MobileEndpoint(
            node_id=999,
            sim=sim,
            channel=network.channel,
            rng=RandomStreams(5).stream("proxy"),
            position_fn=lambda t: Vec2(10.0 * t, 0.0),
        )
        network.channel.register_mobile(proxy)
        got = []
        proxy.register_handler("ping", lambda p, f: got.append(f.payload))
        sim.schedule(1.0, network.nodes[0].send, Frame("ping", 0, 999, 20, payload="yo"))
        sim.run(until=2.0)
        assert got == ["yo"]

    def test_moving_endpoint_out_of_range_misses(self, sim):
        from repro.net.node import MobileEndpoint
        from repro.sim.rng import RandomStreams

        network = make_network(sim, line_positions(1, 0.0))
        all_active(network)
        proxy = MobileEndpoint(
            node_id=999,
            sim=sim,
            channel=network.channel,
            rng=RandomStreams(5).stream("proxy"),
            position_fn=lambda t: Vec2(500.0, 0.0),
        )
        network.channel.register_mobile(proxy)
        got = []
        proxy.register_handler("ping", lambda p, f: got.append(f.payload))
        outcomes = []
        sim.schedule(1.0, network.nodes[0].send, Frame("ping", 0, 999, 20), outcomes.append)
        sim.run(until=3.0)
        assert got == []
        assert outcomes == [False]


class TestCarrierSenseBookkeeping:
    """The per-node busy counters must answer carrier sense exactly as the
    original scan over all in-flight transmissions did."""

    def test_busy_only_for_nodes_in_range_of_sender(self, sim):
        # 0 -- 50m -- 1 -- 50m -- 2 -- 200m -- 3 : node 3 is out of range.
        positions = [Vec2(0, 0), Vec2(50, 0), Vec2(100, 0), Vec2(300, 0)]
        network = make_network(sim, positions)
        all_active(network)
        nodes = network.nodes
        observed = {}

        def probe():
            observed.update(
                {n.node_id: network.channel.medium_busy(n) for n in nodes}
            )

        nodes[0].send(Frame("x", 0, BROADCAST, 1500))
        sim.schedule(0.004, probe)  # sampled mid-airtime (after backoff)
        sim.run(until=1.0)
        assert observed[1] is True
        assert observed[2] is True
        assert observed[3] is False
        # The sender's own transmission does not count for itself.
        assert observed[0] is False

    def test_busy_until_matches_transmission_end(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        all_active(network)
        node0, node1 = network.nodes
        samples = []

        def probe():
            samples.append((sim.now, network.channel.busy_until(node1)))

        node0.send(Frame("x", 0, BROADCAST, 1500))
        sim.schedule(0.004, probe)
        sim.run(until=1.0)
        (at, until), = samples
        assert until is not None and until > at
        # After the air clears the medium reads idle again with no residue.
        assert network.channel.busy_until(node1) is None
        assert network.channel.medium_busy(node1) is False

    def test_sleeping_radio_reads_idle(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        all_active(network)
        node0, node1 = network.nodes
        states = []

        def probe():
            node1.radio.sleep()
            states.append(network.channel.medium_busy(node1))

        node0.send(Frame("x", 0, BROADCAST, 1500))
        sim.schedule(0.004, probe)
        sim.run(until=1.0)
        assert states == [False]

    def test_mobile_endpoint_senses_via_active_scan(self, sim):
        from repro.net.node import MobileEndpoint
        from repro.sim.rng import RandomStreams

        network = make_network(sim, line_positions(1, 0.0))
        all_active(network)
        proxy = MobileEndpoint(
            node_id=999,
            sim=sim,
            channel=network.channel,
            rng=RandomStreams(5).stream("proxy"),
            position_fn=lambda t: Vec2(10.0, 0.0),
        )
        network.channel.register_mobile(proxy)
        states = []

        def probe():
            states.append(network.channel.medium_busy(proxy))
            states.append(network.channel.busy_until(proxy) is not None)

        network.nodes[0].send(Frame("x", 0, BROADCAST, 1500))
        sim.schedule(0.004, probe)
        sim.run(until=1.0)
        assert states == [True, True]


class TestStaticListenerCache:
    def test_cache_matches_fresh_grid_query(self, sim):
        positions = [Vec2(0, 0), Vec2(50, 0), Vec2(100, 0), Vec2(300, 0)]
        network = make_network(sim, positions)
        channel = network.channel
        for node in network.nodes:
            cached = channel.static_listeners(node.node_id)
            fresh = [
                ep
                for ep in channel.listeners_near(node.position, 0.0)
                if ep.node_id != node.node_id
            ]
            assert list(cached) == fresh
        # Second call returns the identical tuple (cached, not rebuilt).
        assert channel.static_listeners(0) is channel.static_listeners(0)

    def test_late_registration_invalidates_cache(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        channel = network.channel
        before = channel.static_listeners(0)
        assert [ep.node_id for ep in before] == [1]
        # Register one more static endpoint in range (plain stub endpoint).
        from repro.net.node import SensorNode
        from repro.sim.rng import RandomStreams

        extra = SensorNode(
            node_id=77,
            position=Vec2(20.0, 0.0),
            sim=sim,
            channel=channel,
            rng=RandomStreams(9).stream("mac-77"),
        )
        channel.register_static(extra)
        after = channel.static_listeners(0)
        assert sorted(ep.node_id for ep in after) == [1, 77]

    def test_node_registered_mid_flight_senses_busy(self, sim):
        """A static endpoint registered while a covering transmission is on
        the air must read busy immediately (counters seeded from _active)."""
        from repro.net.node import SensorNode
        from repro.sim.rng import RandomStreams

        network = make_network(sim, line_positions(2, 50.0))
        all_active(network)
        channel = network.channel
        states = []

        def register_and_probe():
            late = SensorNode(
                node_id=88,
                position=Vec2(25.0, 0.0),
                sim=sim,
                channel=channel,
                rng=RandomStreams(3).stream("mac-88"),
            )
            channel.register_static(late)
            states.append(channel.medium_busy(late))
            states.append(channel.busy_until(late) is not None)

        network.nodes[0].send(Frame("x", 0, BROADCAST, 1500))
        sim.schedule(0.004, register_and_probe)  # mid-airtime
        sim.run(until=1.0)
        # After the air clears the seeded counter must have drained too.
        assert not channel.medium_busy(channel.endpoint(88))
        assert states == [True, True]
