"""Unit tests for MobiQuery protocol internals (timing formulas, batching)."""

import pytest

from repro.core.messages import SetupMessage
from repro.core.query import QuerySpec
from repro.core.service import MobiQueryConfig
from repro.geometry.vec import Vec2

from .test_core_service import Stack


class TestSubDeadline:
    def _setup_message(self, stack, pickup=Vec2(105, 105), deadline=10.0):
        return SetupMessage(
            query_id=1,
            k=5,
            collector_id=0,
            pickup=pickup,
            area=stack.spec.area_at(pickup),
            deadline=deadline,
            freshness_s=stack.spec.freshness_s,
            pickup_radius_m=stack.protocol.config.pickup_radius_m,
            profile_generation=1,
            aggregation_attribute="temperature",
        )

    def test_eq1_at_collector_distance_zero(self, sim):
        stack = Stack(sim)
        setup = self._setup_message(stack)
        collector_node = min(
            stack.network.nodes,
            key=lambda n: n.position.distance_sq_to(Vec2(105, 105)),
        )
        du = stack.protocol._sub_deadline(collector_node, setup)
        # closest node: du near the deadline
        assert du > setup.deadline - 0.35

    def test_eq1_far_node_times_out_at_sense_time(self, sim):
        stack = Stack(sim)
        setup = self._setup_message(stack)
        far_node = max(
            stack.network.nodes,
            key=lambda n: n.position.distance_sq_to(Vec2(105, 105)),
        )
        du = stack.protocol._sub_deadline(far_node, setup)
        # |up| is clamped at Rp + Rq, so du is never before deadline - Tfresh
        assert du >= setup.deadline - stack.spec.freshness_s - 1e-9

    def test_eq1_monotone_in_distance(self, sim):
        stack = Stack(sim)
        setup = self._setup_message(stack)
        nodes = sorted(
            stack.network.nodes,
            key=lambda n: n.position.distance_sq_to(Vec2(105, 105)),
        )
        dus = [stack.protocol._sub_deadline(n, setup) for n in nodes]
        assert all(a >= b - 1e-12 for a, b in zip(dus, dus[1:]))


class TestJitForwardTime:
    def test_matches_analysis_module(self, sim):
        from repro.core.analysis import AnalysisParams, jit_forward_time

        stack = Stack(sim)
        params = AnalysisParams(
            t_period_s=stack.spec.period_s,
            t_fresh_s=stack.spec.freshness_s,
            t_sleep_s=stack.network.config.sleep_period_s,
            v_user_mps=4.0,
            v_prefetch_mps=200.0,
        )
        for k in (1, 5, 10):
            assert stack.protocol.jit_forward_time(stack.spec, k) == pytest.approx(
                jit_forward_time(k - 1, params)
            )


class TestBatchTiming:
    def test_batch_inside_window_sends_soon(self, sim):
        stack = Stack(sim, psm_offset=2.0)
        node = stack.network.active_nodes[0]
        sim.run(until=2.01)  # inside the window [2.0, 2.1]
        at = stack.protocol._next_batch_time(node)
        assert at - sim.now < 0.01

    def test_batch_outside_window_waits_for_next(self, sim):
        stack = Stack(sim, psm_offset=2.0)
        node = stack.network.active_nodes[0]
        sim.run(until=3.0)  # between windows (next at 8.0)
        at = stack.protocol._next_batch_time(node)
        assert 8.0 <= at <= 8.1


class TestQueryAreaOrientation:
    def test_disk_area_ignores_heading(self, sim):
        stack = Stack(sim)
        sim.run(until=0.5)  # let the t=0 profile arrival be adopted
        profile = stack.gateway.current_profile
        area = stack.protocol.query_area(profile, stack.spec, 3)
        assert area.contains(Vec2(105, 105))
        assert area.bounding_radius == stack.spec.radius_m

    def test_pickup_matches_profile_position(self, sim):
        stack = Stack(sim)
        sim.run(until=0.5)
        profile = stack.gateway.current_profile
        pickup = stack.protocol.pickup_point(profile, stack.spec, 4)
        assert pickup.is_close(profile.position_at(8.0))


class TestConfigValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            MobiQueryConfig(prefetch_policy="eager")

    def test_bad_pickup_radius_rejected(self):
        with pytest.raises(ValueError):
            MobiQueryConfig(pickup_radius_m=0.0)

    def test_negative_guard_rejected(self):
        with pytest.raises(ValueError):
            MobiQueryConfig(result_guard_s=-0.1)
