"""Tests for repro.cluster: partitioners, routing, identity, admission,
lockstep scheduling and the worker-replay transport."""

import pickle

import pytest

from repro.api import (
    BackendStats,
    MobiQueryService,
    QueryBackend,
    QueryRequest,
)
from repro.api.admission import PerAreaCapPolicy, PhaseAssignPolicy
from repro.api.service import ServiceClosedError
from repro.cluster import (
    BalancedKDPartitioner,
    ClusterService,
    GridStripePartitioner,
    LockstepScheduler,
    ReplayAdmissionPolicy,
    ShardPlan,
    make_partitioner,
    overlap_area,
    run_shard_plan,
    shard_node_counts,
)
from repro.experiments.config import ExperimentConfig, QueryParams
from repro.geometry.shapes import Rect
from repro.geometry.vec import Vec2
from repro.mobility.models import patrol_path
from repro.net.network import NetworkConfig


def small_config(seed: int = 3, duration_s: float = 18.0, **kwargs) -> ExperimentConfig:
    """A fast world: 60 nodes, short horizon, fleet-sized query radius."""
    return ExperimentConfig(
        mode="jit",
        seed=seed,
        duration_s=duration_s,
        network=NetworkConfig(n_nodes=60, sleep_period_s=3.0),
        query=QueryParams(radius_m=60.0),
        **kwargs,
    )


def submit_fleet(backend, n, period_s=2.0, spacing_s=1.5):
    return [
        backend.submit(
            QueryRequest(
                radius_m=50.0,
                period_s=period_s,
                freshness_s=1.0,
                start_s=i * spacing_s,
            )
        )
        for i in range(n)
    ]


def result_signature(backend, workload):
    stats = backend.stats()
    return (
        [(s.user_id, s.success_ratio, s.deliveries) for s in workload.sessions],
        stats.frames_sent,
        stats.frames_delivered,
        stats.frames_collided,
        stats.events_executed,
    )


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    def test_single_shard_is_the_whole_region(self):
        region = Rect.square(450.0)
        for maker in (GridStripePartitioner(), BalancedKDPartitioner()):
            assert maker.partition(region, 1) == [region]

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 8])
    def test_partitions_tile_the_region(self, k):
        region = Rect(10.0, 20.0, 460.0, 380.0)
        for maker in (GridStripePartitioner(), BalancedKDPartitioner()):
            cells = maker.partition(region, k)
            assert len(cells) == k
            total = sum(c.area() for c in cells)
            assert total == pytest.approx(region.area())
            for a in range(k):
                for b in range(a + 1, k):
                    assert overlap_area(cells[a], cells[b]) == pytest.approx(0.0)

    def test_kd_cells_are_near_square_and_equal_area(self):
        cells = BalancedKDPartitioner().partition(Rect.square(450.0), 4)
        areas = {round(c.area(), 6) for c in cells}
        assert len(areas) == 1
        for cell in cells:
            assert cell.width == pytest.approx(cell.height)

    def test_stripe_orientation(self):
        cells = GridStripePartitioner().partition(Rect.square(400.0), 4)
        assert all(c.height == pytest.approx(400.0) for c in cells)
        assert [c.x_min for c in cells] == [0.0, 100.0, 200.0, 300.0]

    def test_registry(self):
        assert make_partitioner("grid-stripe").name == "grid-stripe"
        assert make_partitioner(None).name == "balanced-kd"
        custom = BalancedKDPartitioner()
        assert make_partitioner(custom) is custom
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("voronoi")

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            BalancedKDPartitioner().partition(Rect.square(100.0), 0)

    def test_node_counts_preserve_total_and_density(self):
        regions = BalancedKDPartitioner().partition(Rect.square(450.0), 4)
        counts = shard_node_counts(200, regions)
        assert sum(counts) == 200
        assert counts == [50, 50, 50, 50]
        stripe_regions = GridStripePartitioner().partition(Rect.square(450.0), 3)
        counts = shard_node_counts(200, stripe_regions)
        assert sum(counts) == 200
        assert max(counts) - min(counts) <= 1

    def test_node_counts_require_a_node_per_shard(self):
        regions = BalancedKDPartitioner().partition(Rect.square(100.0), 4)
        with pytest.raises(ValueError, match="at least one node"):
            shard_node_counts(3, regions)


# ----------------------------------------------------------------------
# Backend protocol conformance
# ----------------------------------------------------------------------
class TestBackendProtocol:
    def test_both_backends_conform(self):
        config = small_config()
        assert isinstance(MobiQueryService(config), QueryBackend)
        assert isinstance(ClusterService(config, shards=2), QueryBackend)

    def test_service_stats_snapshot(self):
        service = MobiQueryService(small_config())
        submit_fleet(service, 2)
        service.close()
        stats = service.stats()
        assert isinstance(stats, BackendStats)
        assert stats.shards == 1
        assert stats.submitted == stats.admitted == 2
        assert stats.frames_sent > 0
        assert stats.now >= service.duration_s

    def test_close_is_idempotent_and_seals(self):
        service = MobiQueryService(small_config())
        submit_fleet(service, 1)
        first = service.close()
        assert service.close() is first
        with pytest.raises(ServiceClosedError, match="closed service"):
            service.submit(QueryRequest(radius_m=50.0))


# ----------------------------------------------------------------------
# Single-shard identity
# ----------------------------------------------------------------------
class TestSingleShardIdentity:
    def test_bit_identical_to_single_service(self):
        """ClusterService(shards=1) == MobiQueryService, bit for bit."""
        config = small_config()
        single = MobiQueryService(config)
        sig_single = result_signature(single, single.close())
        for partitioner in ("balanced-kd", "grid-stripe"):
            cluster = ClusterService(config, shards=1, partitioner=partitioner)
            sig_cluster = result_signature(cluster, cluster.close())
            assert sig_cluster == sig_single

    def test_shard0_keeps_the_base_seed_and_world(self):
        config = small_config(seed=9)
        cluster = ClusterService(config, shards=1)
        assert cluster.shard_configs[0] == config
        assert cluster.num_shards == 1


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestRouting:
    def _cluster(self):
        return ClusterService(small_config(), shards=4)

    def test_pathless_requests_spread_least_loaded(self):
        cluster = self._cluster()
        submit_fleet(cluster, 8)
        assert [s.admitted_count() for s in cluster.services] == [2, 2, 2, 2]

    def test_pathless_tie_breaks_to_lowest_shard(self):
        """Every submit starts from an all-shards tie at some load level;
        the contract is explicit: ties go to the lowest shard index, so a
        pathless fleet walks the shards in index order, round after round."""
        cluster = self._cluster()
        for expected in (0, 1, 2, 3, 0, 1, 2, 3):
            request = QueryRequest(
                radius_m=50.0, period_s=2.0, freshness_s=1.0
            )
            assert cluster.route(request) == expected
            cluster.submit(request)

    def test_tie_routing_identical_serial_vs_workers(self, monkeypatch):
        """The tie-break must be the same decision the worker replay sees:
        a pathless fleet routed at submit time produces bit-identical
        results whether the shards finalize in-process or in a pool."""
        import os

        serial = ClusterService(small_config(), shards=4, workers=0)
        submit_fleet(serial, 8)
        expected = result_signature(serial, serial.finalize())
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        parallel = ClusterService(small_config(), shards=4, workers=4)
        submit_fleet(parallel, 8)
        assert [s.admitted_count() for s in parallel.services] == [2, 2, 2, 2]
        got = result_signature(parallel, parallel.finalize())
        assert got == expected

    def test_path_routes_by_footprint_overlap(self):
        cluster = self._cluster()
        # A patrol entirely inside one kd cell must land on that shard.
        for shard, region in enumerate(cluster.regions):
            c = region.center()
            path = patrol_path(
                [Vec2(c.x - 10, c.y - 10), Vec2(c.x + 10, c.y + 10)],
                speed=4.0,
                start_time=0.0,
                loops=8,
            )
            request = QueryRequest(radius_m=40.0, path=path)
            assert cluster.route(request) == shard

    def test_straddling_path_goes_to_best_overlap(self):
        cluster = self._cluster()
        # Mostly in shard 0's cell, nudged across the boundary.
        path = patrol_path(
            [Vec2(40.0, 40.0), Vec2(200.0, 40.0)],
            speed=4.0, start_time=0.0, loops=4,
        )
        request = QueryRequest(radius_m=60.0, path=path)
        shard = cluster.route(request)
        foot = cluster._footprint(request)
        overlaps = [overlap_area(foot, r) for r in cluster.regions]
        assert overlaps[shard] == max(overlaps)

    def test_user_ids_are_cluster_unique(self):
        cluster = self._cluster()
        handles = submit_fleet(cluster, 6)
        ids = [h.user_id for h in handles]
        assert ids == list(range(6))
        with pytest.raises(ValueError, match="already has a live session"):
            cluster.submit(QueryRequest(radius_m=50.0, user_id=3))

    def test_foreign_handle_rejected(self):
        cluster = self._cluster()
        other = MobiQueryService(small_config())
        handle = other.submit(QueryRequest(radius_m=50.0))
        with pytest.raises(ValueError, match="not issued by this cluster"):
            cluster.cancel(handle)


# ----------------------------------------------------------------------
# Cluster-wide admission
# ----------------------------------------------------------------------
class TestClusterAdmission:
    def test_phase_assign_counts_cluster_wide(self):
        """Phase slots rotate over the whole cluster, not per shard."""
        cluster = ClusterService(
            small_config(), shards=2, admission=PhaseAssignPolicy(slots=4)
        )
        handles = submit_fleet(cluster, 8, spacing_s=0.0)
        offsets = [
            round(h.spec.start_s - h.request.start_s, 6) for h in handles
        ]
        # 8 simultaneous submissions, 4 slots, cluster-wide rotation:
        # every slot of the 2s period is used exactly twice.
        assert offsets == [0.0, 0.5, 1.0, 1.5] * 2
        # A per-shard counter would have produced slot 0 four times.
        shards = [cluster.shard_of(h) for h in handles]
        assert len(set(shards)) == 2

    def test_per_area_cap_sees_other_shards(self):
        """A capped area rejects even when the sessions live on another
        shard object (single-shard worlds share one region here)."""
        cluster = ClusterService(
            small_config(duration_s=20.0),
            shards=2,
            partitioner="grid-stripe",
            admission=PerAreaCapPolicy(max_overlapping=2),
        )
        # Pin three users onto the same spot via explicit paths in shard 0's
        # stripe; the third must be rejected by the cluster-wide cap.
        spot = [Vec2(60.0, 200.0), Vec2(80.0, 220.0)]
        def make_request():
            return QueryRequest(
                radius_m=60.0,
                path=patrol_path(spot, speed=2.0, start_time=0.0, loops=10),
            )

        first = cluster.submit(make_request())
        second = cluster.submit(make_request())
        third = cluster.submit(make_request())
        assert first.accepted and second.accepted
        assert not third.accepted
        assert "area cap" in third.reason
        # Rejection left every shard kernel untouched.
        assert all(s.sim.events_executed == 0 for s in cluster.services)


# ----------------------------------------------------------------------
# Lockstep scheduling
# ----------------------------------------------------------------------
class TestLockstep:
    def test_bounded_skew_and_idempotence(self):
        cluster = ClusterService(small_config(), shards=3, epoch_s=1.0)
        submit_fleet(cluster, 3)
        cluster.advance(5.0)
        assert all(s.sim.now == pytest.approx(5.0) for s in cluster.services)
        assert cluster.scheduler.skew_s() == pytest.approx(0.0)
        epochs = cluster.scheduler.epochs_run
        assert epochs == 5
        cluster.advance(5.0)  # idempotent
        assert cluster.scheduler.epochs_run == epochs

    def test_scheduler_rejects_bad_epoch(self):
        with pytest.raises(ValueError, match="epoch length"):
            LockstepScheduler([], epoch_s=0.0)

    def test_streaming_interleaves_with_cluster_advance(self):
        cluster = ClusterService(small_config(), shards=2)
        handles = submit_fleet(cluster, 2)
        outcomes = []
        for outcome in handles[0].results():
            outcomes.append(outcome)
            if len(outcomes) == 2:
                break
        assert outcomes[0].k == 1 and outcomes[1].k == 2
        result = cluster.finalize()
        assert len(result.sessions) == 2


# ----------------------------------------------------------------------
# Worker transport (replay determinism; pools may be unavailable here)
# ----------------------------------------------------------------------
class TestWorkerTransport:
    def _cluster(self, workers=4):
        cluster = ClusterService(small_config(), shards=2, workers=workers)
        submit_fleet(cluster, 4)
        return cluster

    def test_plans_are_picklable(self):
        cluster = self._cluster()
        plans = [
            ShardPlan(
                shard=i,
                config=cluster.shard_configs[i],
                requests=tuple(cluster._requests_log[i]),
                decisions=tuple(cluster._decisions_log[i]),
            )
            for i in range(2)
        ]
        assert pickle.loads(pickle.dumps(plans))

    def test_replay_matches_in_process_run(self):
        """run_shard_plan on the recorded log == the in-process shard."""
        recorded = self._cluster()
        plans = [
            ShardPlan(
                shard=i,
                config=recorded.shard_configs[i],
                requests=tuple(recorded._requests_log[i]),
                decisions=tuple(recorded._decisions_log[i]),
            )
            for i in range(2)
        ]
        serial = self._cluster(workers=0)
        expected = result_signature(serial, serial.finalize())
        outcomes = [run_shard_plan(plan) for plan in plans]
        sessions = sorted(
            (s for o in outcomes for s in o.sessions if s is not None),
            key=lambda s: s.user_id,
        )
        replayed = (
            [(s.user_id, s.success_ratio, s.deliveries) for s in sessions],
            sum(o.stats.frames_sent for o in outcomes),
            sum(o.stats.frames_delivered for o in outcomes),
            sum(o.stats.frames_collided for o in outcomes),
            sum(o.stats.events_executed for o in outcomes),
        )
        assert replayed == expected

    def test_workers_finalize_matches_serial(self, monkeypatch):
        """The pool path (forced past the cpu gate) is bit-identical."""
        import os

        serial = self._cluster(workers=0)
        expected = result_signature(serial, serial.finalize())
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        parallel = self._cluster(workers=4)
        got = result_signature(parallel, parallel.finalize())
        assert got == expected
        # On a sandboxed/1-CPU box the pool may have fallen back serially;
        # either way the results are identical and the flag is truthful.
        assert parallel.parallel_used in (True, False)

    def test_streaming_disables_replay(self):
        cluster = self._cluster(workers=4)
        next(iter(cluster.handles[0].results()))
        assert not cluster._parallel_eligible()
        result = cluster.finalize()
        assert not cluster.parallel_used
        assert len(result.sessions) == 4

    def test_cancel_disables_replay(self):
        cluster = self._cluster(workers=4)
        cluster.cancel(cluster.handles[1])
        assert not cluster._parallel_eligible()
        result = cluster.finalize()
        # all four submissions were admitted; the cancelled one scores
        # over its pre-cancel periods
        assert len(result.sessions) == 4

    def test_replay_policy_exhaustion_raises(self):
        policy = ReplayAdmissionPolicy([])
        with pytest.raises(RuntimeError, match="replay exhausted"):
            policy.decide(None, None, None)


# ----------------------------------------------------------------------
# Cancellation and mixed lifecycles through the cluster
# ----------------------------------------------------------------------
class TestClusterLifecycle:
    def test_cancel_mid_run_then_finalize(self):
        cluster = ClusterService(small_config(), shards=2)
        handles = submit_fleet(cluster, 4)
        cluster.advance(6.0)
        cluster.cancel(handles[2])
        assert handles[2].status == "cancelled"
        result = cluster.finalize()
        assert len(result.sessions) == 4
        cancelled = next(
            s for s in result.sessions if s.user_id == handles[2].user_id
        )
        full = next(s for s in result.sessions if s.user_id == handles[0].user_id)
        assert cancelled.metrics.num_periods < full.metrics.num_periods

    def test_submit_after_close_raises(self):
        cluster = ClusterService(small_config(), shards=2)
        submit_fleet(cluster, 2)
        cluster.close()
        with pytest.raises(ServiceClosedError, match="closed cluster"):
            cluster.submit(QueryRequest(radius_m=50.0))

    def test_stats_aggregate_over_shards(self):
        cluster = ClusterService(small_config(), shards=2)
        submit_fleet(cluster, 4)
        cluster.close()
        stats = cluster.stats()
        per_shard = [s.stats() for s in cluster.services]
        assert stats.shards == 2
        assert stats.submitted == 4
        assert stats.frames_sent == sum(p.frames_sent for p in per_shard)
        assert stats.events_executed == sum(p.events_executed for p in per_shard)
        assert stats.backbone_size == sum(p.backbone_size for p in per_shard)


class TestRunThenFinalize:
    def test_statuses_flip_to_completed(self):
        """run() before finalize() must still complete admitted handles
        (parity with the MobiQueryService lifecycle)."""
        cluster = ClusterService(small_config(), shards=2)
        handles = submit_fleet(cluster, 2)
        cluster.run()
        result = cluster.finalize()
        assert [h.status for h in handles] == ["completed", "completed"]
        assert len(result.sessions) == 2


class TestMobileMemoEquivalence:
    def test_above_threshold_sweep_matches_direct_evaluation(self, monkeypatch):
        """The memo + Lipschitz-exclusion listener sweep (fleets above
        MOBILE_MEMO_THRESHOLD) is bit-identical to plain per-proxy
        evaluation — the only regime that exercises the stale-memo reach
        bound, which no golden suite (<= 16 proxies) touches."""
        import repro.net.channel as channel_mod

        def run(threshold):
            monkeypatch.setattr(
                channel_mod, "MOBILE_MEMO_THRESHOLD", threshold
            )
            service = MobiQueryService(
                small_config(seed=5, duration_s=14.0)
            )
            submit_fleet(service, 20, spacing_s=0.5)  # 20 > default 16
            workload = service.close()
            return result_signature(service, workload)

        with_memo = run(16)        # 20 proxies -> memo + exclusion path
        direct = run(1000)         # same fleet -> direct evaluation path
        assert with_memo == direct
