"""Batch-path coverage: BroadcastReception collision matrix, the PSM wake
wheel, and carrier-sense consistency across mobile unregistration.

The batched reception pipeline and the wake wheel must reproduce the old
per-listener / per-node semantics exactly; these tests pin the tricky
interleavings directly against the channel and scheduler APIs (the golden
determinism suite pins the same property end to end).
"""

import pytest

from repro.geometry.vec import Vec2
from repro.net.channel import Channel, Reception
from repro.net.node import MobileEndpoint, SensorNode
from repro.net.packet import BROADCAST, Frame
from repro.net.psm import WakeWheel
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

from .conftest import line_positions, make_network


def raw_channel(sim, positions, tracer=None, comm_range=105.0):
    """A bare channel + static nodes (no backbone, no PSM) for direct
    ``transmit`` calls that bypass MAC backoff randomness."""
    channel = Channel(sim, comm_range=comm_range, bitrate_bps=2e6, tracer=tracer)
    streams = RandomStreams(7)
    nodes = []
    for i, pos in enumerate(positions):
        node = SensorNode(i, pos, sim, channel, streams.stream(f"mac-{i}"))
        channel.register_static(node)
        nodes.append(node)
    return channel, nodes


def collect(nodes, kind):
    got = []
    for node in nodes:
        node.register_handler(kind, lambda n, f: got.append((n.node_id, f.payload)))
    return got


class TestCollisionMatrix:
    """The batch arrays must encode exactly the per-listener outcomes."""

    def test_all_corrupt_overlap(self):
        """Two overlapping frames at a common receiver: both corrupt, with
        the old ``overlap`` reason on every reception."""
        sim = Simulator()
        tracer = Tracer(keep=["collision"])
        # 1 and 2 both hear 0 and 3; 0 and 3 are out of each other's range.
        positions = [Vec2(0, 0), Vec2(50, 0), Vec2(100, 0), Vec2(150, 0)]
        channel, nodes = raw_channel(sim, positions, tracer=tracer)
        got = collect(nodes, "data")
        channel.transmit(nodes[0], Frame("data", 0, BROADCAST, 1500, payload="a"))
        channel.transmit(nodes[3], Frame("data", 3, BROADCAST, 1500, payload="b"))
        sim.run(until=1.0)
        # Receivers 1 and 2 heard both frames -> 4 corrupted receptions;
        # receiver 0 heard only frame b and receiver 3 only frame a, but
        # both senders were transmitting (not listening) at onset.
        assert [nid for nid, _ in got] == []
        assert channel.frames_collided == 4
        assert channel.frames_delivered == 0
        reasons = {record["reason"] for record in tracer.records("collision")}
        assert reasons == {"overlap"}

    def test_partial_corrupt_hidden_terminal(self):
        """A receiver in range of both senders corrupts; one in range of a
        single sender delivers cleanly — within the same frame cohort."""
        sim = Simulator()
        # left(-50) hears only sender A(0); mid(100) hears A and B(200).
        positions = [Vec2(0, 0), Vec2(200, 0), Vec2(100, 0), Vec2(-50, 0)]
        channel, nodes = raw_channel(sim, positions)
        got = collect(nodes, "data")
        channel.transmit(nodes[0], Frame("data", 0, BROADCAST, 1500, payload="a"))
        channel.transmit(nodes[1], Frame("data", 1, BROADCAST, 1500, payload="b"))
        sim.run(until=1.0)
        assert got == [(3, "a")]  # only the far listener's copy survives
        assert channel.frames_delivered == 1
        assert channel.frames_collided == 2  # both copies at the middle node

    def test_receiver_left_listening_mid_airtime(self):
        """Sleeping mid-reception corrupts with the old reason string."""
        sim = Simulator()
        tracer = Tracer(keep=["collision"])
        channel, nodes = raw_channel(
            sim, [Vec2(0, 0), Vec2(50, 0)], tracer=tracer
        )
        got = collect(nodes, "data")
        channel.transmit(nodes[0], Frame("data", 0, BROADCAST, 1500))
        airtime = channel.airtime(Frame("data", 0, BROADCAST, 1500))
        sim.schedule(airtime / 2, nodes[1].radio.sleep)
        sim.run(until=1.0)
        assert got == []
        assert channel.frames_collided == 1
        (record,) = tracer.records("collision")
        assert record["reason"] == "receiver_left_listening"

    def test_third_overlapping_frame_still_corrupts(self):
        """Once all in-flight receptions are corrupt, a later frame must
        still corrupt itself against the leftovers (the radio's clean-slot
        pointer is gone by then)."""
        sim = Simulator()
        positions = [Vec2(0, 0), Vec2(50, 0), Vec2(100, 0), Vec2(150, 0)]
        channel, nodes = raw_channel(sim, positions)
        got = collect(nodes, "data")
        short = Frame("data", 0, BROADCAST, 1000)
        channel.transmit(nodes[0], short)
        channel.transmit(nodes[3], Frame("data", 3, BROADCAST, 3000))
        # Third frame starts after the sender's own first frame ended but
        # while node 3's longer (already corrupt) frame is still in flight
        # at nodes 1 and 2 — the radios' clean-slot pointers are long gone.
        sim.schedule(channel.airtime(short) * 1.5, channel.transmit, nodes[0],
                     Frame("data", 0, BROADCAST, 200))
        sim.run(until=1.0)
        assert got == []
        assert channel.frames_delivered == 0
        assert channel.frames_collided == 6  # three frames x nodes 1 and 2

    def test_batch_outcomes_match_object_api_oracle(self):
        """The object-per-reception API (old semantics) and the batch path
        agree on the same interleaving: begin A, begin B (overlap), then a
        clean C after both end."""
        sim = Simulator()
        from repro.net.energy import PowerModel
        from repro.net.radio import Radio

        radio = Radio(sim, owner_id=9, power_model=PowerModel())
        a = Reception(Frame("x", 0, 9, 20), None)
        b = Reception(Frame("x", 1, 9, 20), None)
        radio.begin_reception(a)
        radio.begin_reception(b)
        assert a.corrupted and b.corrupted and a.reason == "overlap"
        radio.end_reception(a)
        radio.end_reception(b)
        c = Reception(Frame("x", 2, 9, 20), None)
        radio.begin_reception(c)
        radio.end_reception(c)
        assert not c.corrupted
        assert radio.rx_count == 0

        # Same interleaving through the batch path.
        sim2 = Simulator()
        positions = [Vec2(0, 0), Vec2(50, 0), Vec2(100, 0), Vec2(150, 0)]
        channel, nodes = raw_channel(sim2, positions)
        got = collect(nodes, "data")
        channel.transmit(nodes[0], Frame("data", 0, BROADCAST, 1500, payload="a"))
        channel.transmit(nodes[3], Frame("data", 3, BROADCAST, 1500, payload="b"))
        sim2.run(until=0.5)
        assert got == []
        channel.transmit(nodes[0], Frame("data", 0, BROADCAST, 200, payload="c"))
        sim2.run(until=1.0)
        assert (1, "c") in got and (2, "c") in got
        assert all(n.radio.rx_count == 0 for n in nodes)


class TestLateJoinerMobileProxy:
    def _proxy(self, sim, channel, node_id, x):
        return MobileEndpoint(
            node_id=node_id,
            sim=sim,
            channel=channel,
            rng=RandomStreams(5).stream(f"proxy-{node_id}"),
            position_fn=lambda t, x=x: Vec2(x, 0.0),
        )

    def test_late_joiner_misses_inflight_frame(self):
        """A proxy registered mid-airtime is not in the frame's cohort (the
        reception set is fixed at transmit start, as before), but hears the
        next frame."""
        sim = Simulator()
        channel, nodes = raw_channel(sim, [Vec2(0, 0)])
        proxy = self._proxy(sim, channel, 1000, 10.0)
        got = []
        proxy.register_handler("data", lambda p, f: got.append(f.payload))
        frame = Frame("data", 0, BROADCAST, 1500, payload="first")
        channel.transmit(nodes[0], frame)
        sim.schedule(channel.airtime(frame) / 2, channel.register_mobile, proxy)
        sim.run(until=0.5)
        assert got == []  # joined too late for the in-flight frame
        channel.transmit(nodes[0], Frame("data", 0, BROADCAST, 200, payload="second"))
        sim.run(until=1.0)
        assert got == ["second"]

    def test_unregister_mid_airtime_keeps_carrier_sense_consistent(self):
        """The bugfix: cancelling a session while its proxy's frame is on
        the air must leave busy bookkeeping consistent — including for a
        new proxy that immediately reuses the node id."""
        sim = Simulator()
        channel, nodes = raw_channel(sim, [Vec2(0, 0)])
        proxy = self._proxy(sim, channel, 1000, 10.0)
        channel.register_mobile(proxy)
        channel.transmit(proxy, Frame("data", 1000, BROADCAST, 1500))
        assert channel.medium_busy(nodes[0])
        channel.unregister_mobile(1000)
        fresh = self._proxy(sim, channel, 1000, 12.0)
        channel.register_mobile(fresh)
        # The departed proxy's frame is still in flight: the id-reusing
        # newcomer must sense it (it used to read idle — sender exclusion
        # matched on the bare id).
        assert channel.medium_busy(fresh)
        assert channel.busy_until(fresh) is not None
        sim.run(until=1.0)
        # End-of-airtime drained every per-node counter as usual.
        assert not channel.medium_busy(nodes[0])
        assert channel.busy_until(nodes[0]) is None
        assert not channel.medium_busy(fresh)

    def test_unregister_unknown_id_is_noop(self):
        sim = Simulator()
        channel, _nodes = raw_channel(sim, [Vec2(0, 0)])
        channel.unregister_mobile(424242)  # idempotent, no error


class TestWakeWheel:
    def test_one_wheel_per_phase_services_all_sleepers(self, sim):
        network = make_network(
            sim, line_positions(6, 50.0), sleep_period=9.0, psm_offset=4.0
        )
        network.apply_backbone([0])
        sleepers = [n for n in network.nodes if n.sleep_scheduler is not None]
        wheels = {id(n.sleep_scheduler.wheel) for n in sleepers}
        assert len(wheels) == 1
        wheel = sleepers[0].sleep_scheduler.wheel
        assert wheel.schedulers == tuple(n.sleep_scheduler for n in sleepers)

    @pytest.mark.parametrize("n_sleepers", [3, 10])
    def test_window_boundary_costs_two_events_regardless_of_cohort(
        self, n_sleepers
    ):
        """Per-phase coalescing: one start + one end kernel event per
        beacon window, independent of how many sleepers share the phase."""
        sim = Simulator()
        network = make_network(
            sim,
            line_positions(n_sleepers + 1, 50.0),
            sleep_period=9.0,
            psm_offset=4.0,
        )
        network.apply_backbone([0])
        sim.run(until=3.9)
        before = sim.events_executed
        sim.run(until=4.5)  # spans the window [4.0, 4.1)
        assert sim.events_executed - before == 2
        assert all(n.radio.is_sleeping for n in network.sleeper_nodes)

    def test_override_costs_two_events_and_never_chains(self, sim):
        network = make_network(
            sim, line_positions(3, 50.0), sleep_period=9.0, psm_offset=4.0
        )
        network.apply_backbone([0])
        sim.run(until=4.5)
        baseline = sim.events_executed
        network.nodes[1].sleep_scheduler.add_wake_interval(6.0, 6.5)
        sim.run(until=6.1)
        assert not network.nodes[1].radio.is_sleeping
        assert network.nodes[2].radio.is_sleeping  # only the override's node
        sim.run(until=8.9)  # past the override, before the next window
        # Exactly two events: the override start and its end check — the
        # old per-node chains added a permanent extra boundary event per
        # override (O(overrides^2) growth over a session).
        assert sim.events_executed - baseline == 2
        assert network.nodes[1].radio.is_sleeping

    def test_cancelled_session_leaves_wheel_cohort_intact(self):
        """Coalesced wakes service exactly the schedulers that remain
        registered after a session cancel tears down its scheduler slot
        (``SessionScheduler.remove``) and proxy: the network's sleepers all
        keep duty-cycling on the shared wheel."""
        from repro.api import MobiQueryService, QueryRequest
        from repro.experiments.config import MODE_JIT, ExperimentConfig

        config = ExperimentConfig(mode=MODE_JIT, seed=3, duration_s=40.0)
        service = MobiQueryService(config)
        first = service.submit(QueryRequest(user_id=0))
        second = service.submit(QueryRequest(user_id=1))
        sleepers = [
            n for n in service.network.nodes if n.sleep_scheduler is not None
        ]
        assert sleepers, "scenario must have duty-cycled nodes"
        wheel = sleepers[0].sleep_scheduler.wheel
        cohort_before = wheel.schedulers
        service.run_until(5.0)
        second.cancel()
        assert wheel.schedulers == cohort_before
        # Advance to the inside of the next beacon window: every sleeper
        # still registered must be woken by the shared boundary event.
        psm = service.network.config.psm
        window_start = psm.next_window_start(service.sim.now)
        service.run_until(window_start + psm.active_window_s / 2)
        assert all(not n.radio.is_sleeping for n in sleepers)
        service.run_until(window_start + psm.active_window_s + 0.05)
        assert all(n.radio.is_sleeping for n in sleepers)

    def test_shared_registry_coalesces_independent_constructions(self):
        """SleepSchedulers built directly (no network builder) on the same
        kernel and phase share one wheel via the per-kernel registry."""
        from repro.net.psm import PsmConfig, SleepScheduler

        sim = Simulator()
        network = make_network(sim, line_positions(3, 50.0), psm_offset=4.0)
        cfg = PsmConfig(beacon_interval_s=9.0, active_window_s=0.1, offset_s=4.0)
        s1 = SleepScheduler(sim, network.nodes[1].radio, network.nodes[1].mac, cfg)
        s2 = SleepScheduler(sim, network.nodes[2].radio, network.nodes[2].mac, cfg)
        assert s1.wheel is s2.wheel
        assert s1.wheel is WakeWheel.shared(sim, cfg)
        other_phase = PsmConfig(
            beacon_interval_s=9.0, active_window_s=0.1, offset_s=2.0
        )
        assert WakeWheel.shared(sim, other_phase) is not s1.wheel
