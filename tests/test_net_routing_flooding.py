"""Tests for geographic routing (area anycast) and scoped flooding."""

import pytest

from repro.geometry.shapes import Circle
from repro.geometry.vec import Vec2
from repro.net.flooding import FloodManager
from repro.net.routing import GeoRouter

from .conftest import all_active, line_positions, make_network


class TestGeoRouting:
    def test_delivers_at_node_within_radius(self, sim):
        network = make_network(sim, line_positions(6, 80.0))
        all_active(network)
        router = GeoRouter(network)
        got = []
        for node in network.nodes:
            node.register_handler("payload", lambda n, f: got.append((n.node_id, f.payload)))
        router.send(
            origin=network.nodes[0],
            dest=Vec2(400, 0),
            deliver_radius=30.0,
            inner_kind="payload",
            inner_payload="msg",
            inner_size=60,
        )
        sim.run(until=2.0)
        assert got == [(5, "msg")]  # node 5 at x=400, exactly at dest
        assert router.delivered == 1

    def test_immediate_delivery_at_origin(self, sim):
        network = make_network(sim, line_positions(3, 80.0))
        all_active(network)
        router = GeoRouter(network)
        got = []
        for node in network.nodes:
            node.register_handler("payload", lambda n, f: got.append(n.node_id))
        router.send(
            origin=network.nodes[1],
            dest=Vec2(85, 0),
            deliver_radius=30.0,
            inner_kind="payload",
            inner_payload=None,
            inner_size=10,
        )
        sim.run(until=1.0)
        assert got == [1]

    def test_multi_hop_progress(self, sim):
        network = make_network(sim, line_positions(10, 80.0))
        all_active(network)
        router = GeoRouter(network)
        hops_seen = []
        network.nodes[9].register_handler(
            "payload", lambda n, f: hops_seen.append(n.node_id)
        )
        for node in network.nodes[:9]:
            node.register_handler("payload", lambda n, f: hops_seen.append(n.node_id))
        router.send(
            origin=network.nodes[0],
            dest=Vec2(720, 0),
            deliver_radius=10.0,
            inner_kind="payload",
            inner_payload=None,
            inner_size=10,
        )
        sim.run(until=2.0)
        assert hops_seen == [9]

    def test_local_minimum_expanded_delivery(self, sim, tracer):
        """Greedy dead end: deliver at the closest reachable node."""
        network = make_network(sim, line_positions(3, 80.0), tracer=tracer)
        all_active(network)
        router = GeoRouter(network, tracer=tracer)
        got = []
        for node in network.nodes:
            node.register_handler("payload", lambda n, f: got.append(n.node_id))
        # Destination far beyond the line's end: node 2 is a local minimum.
        router.send(
            origin=network.nodes[0],
            dest=Vec2(1000, 0),
            deliver_radius=20.0,
            inner_kind="payload",
            inner_payload=None,
            inner_size=10,
        )
        sim.run(until=2.0)
        assert got == [2]
        assert tracer.count("anycast-expanded") == 1

    def test_routes_only_over_backbone(self, sim):
        # Backbone nodes at x = 0, 100, 200 (within the 105 m range of each
        # other); sleepers at x = 50, 150 must not be used as relays.
        network = make_network(sim, line_positions(5, 50.0), psm_offset=4.0)
        network.apply_backbone([0, 2, 4])  # 1 and 3 sleep
        router = GeoRouter(network)
        got = []
        for node in network.nodes:
            node.register_handler("payload", lambda n, f: got.append(n.node_id))
        router.send(
            origin=network.nodes[0],
            dest=Vec2(200, 0),
            deliver_radius=10.0,
            inner_kind="payload",
            inner_payload=None,
            inner_size=10,
        )
        sim.run(until=2.0)
        assert got == [4]

    def test_hop_limit_drops(self, sim, tracer):
        network = make_network(sim, line_positions(10, 80.0), tracer=tracer)
        all_active(network)
        router = GeoRouter(network, tracer=tracer)
        got = []
        for node in network.nodes:
            node.register_handler("payload", lambda n, f: got.append(n.node_id))
        router.send(
            origin=network.nodes[0],
            dest=Vec2(720, 0),
            deliver_radius=10.0,
            inner_kind="payload",
            inner_payload=None,
            inner_size=10,
            max_hops=3,
        )
        sim.run(until=2.0)
        assert got == []
        assert router.dropped == 1


class TestFlooding:
    def test_flood_covers_area(self, sim):
        network = make_network(sim, line_positions(8, 60.0))
        all_active(network)
        flood = FloodManager(network)
        got = []
        for node in network.nodes:
            node.register_handler("inner", lambda n, f: got.append(n.node_id))
        flood.start_flood(
            area=Circle(Vec2(120, 0), 150.0),
            inner_kind="inner",
            inner_payload=None,
            inner_size=20,
            origin=network.nodes[2],
        )
        sim.run(until=2.0)
        # nodes with |x - 120| <= 150: x in [0, 270] -> ids 0..4
        assert sorted(got) == [0, 1, 2, 3, 4]

    def test_nodes_outside_area_do_not_deliver(self, sim):
        network = make_network(sim, line_positions(8, 60.0))
        all_active(network)
        flood = FloodManager(network)
        got = []
        for node in network.nodes:
            node.register_handler("inner", lambda n, f: got.append(n.node_id))
        flood.start_flood(
            area=Circle(Vec2(0, 0), 70.0),
            inner_kind="inner",
            inner_payload=None,
            inner_size=20,
            origin=network.nodes[0],
        )
        sim.run(until=2.0)
        assert sorted(got) == [0, 1]

    def test_each_node_delivers_once(self, sim):
        network = make_network(sim, line_positions(5, 60.0))
        all_active(network)
        flood = FloodManager(network)
        got = []
        for node in network.nodes:
            node.register_handler("inner", lambda n, f: got.append(n.node_id))
        flood.start_flood(
            area=Circle(Vec2(120, 0), 500.0),
            inner_kind="inner",
            inner_payload=None,
            inner_size=20,
            origin=network.nodes[0],
        )
        sim.run(until=2.0)
        assert len(got) == len(set(got)) == 5

    def test_active_only_blocks_sleeper_rebroadcast(self, sim):
        # Line 0(active) 1(sleeper, awake in window at t=0) 2(active far)
        network = make_network(sim, line_positions(3, 100.0), psm_offset=0.0)
        network.apply_backbone([0, 2])
        flood = FloodManager(network)
        got = []
        for node in network.nodes:
            node.register_handler("inner", lambda n, f: got.append(n.node_id))
        # Node 2 is 200 m from node 0: reachable only via node 1's
        # rebroadcast, which active_only forbids (sleepers stay leaves).
        flood.start_flood(
            area=Circle(Vec2(100, 0), 300.0),
            inner_kind="inner",
            inner_payload=None,
            inner_size=20,
            origin=network.nodes[0],
            active_only=True,
        )
        sim.run(until=0.05)
        assert 1 in got  # sleeper heard and delivered (it was in-window)
        assert 2 not in got  # but did not rebroadcast

    def test_proxy_originated_flood(self, sim):
        from repro.net.node import MobileEndpoint
        from repro.sim.rng import RandomStreams

        network = make_network(sim, line_positions(3, 60.0))
        all_active(network)
        flood = FloodManager(network)
        got = []
        for node in network.nodes:
            node.register_handler("inner", lambda n, f: got.append(n.node_id))
        proxy = MobileEndpoint(
            node_id=999,
            sim=sim,
            channel=network.channel,
            rng=RandomStreams(5).stream("proxy"),
            position_fn=lambda t: Vec2(0, 0),
        )
        network.channel.register_mobile(proxy)
        envelope = flood.start_flood(
            area=Circle(Vec2(0, 0), 200.0),
            inner_kind="inner",
            inner_payload=None,
            inner_size=20,
        )
        proxy.send(flood.make_frame(proxy.node_id, envelope))
        sim.run(until=2.0)
        assert sorted(got) == [0, 1, 2]
