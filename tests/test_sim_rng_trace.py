"""Unit tests for RNG streams and the tracer."""

import pytest

from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, Tracer


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("mac")
        b = RandomStreams(7).stream("mac")
        assert list(a.integers(0, 1000, 5)) == list(b.integers(0, 1000, 5))

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        a = streams.stream("mac")
        b = streams.stream("mobility")
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x")
        b = RandomStreams(2).stream("x")
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_stream_is_cached(self):
        streams = RandomStreams(3)
        assert streams.stream("a") is streams.stream("a")

    def test_stream_identity_independent_of_creation_order(self):
        s1 = RandomStreams(5)
        s1.stream("first")
        first_then = list(s1.stream("second").integers(0, 10**9, 4))
        s2 = RandomStreams(5)
        second_only = list(s2.stream("second").integers(0, 10**9, 4))
        assert first_then == second_only

    def test_spawn_derives_new_family(self):
        base = RandomStreams(9)
        child = base.spawn(1)
        assert child.root_seed != base.root_seed
        assert list(child.stream("x").integers(0, 10**9, 4)) != list(
            base.stream("x").integers(0, 10**9, 4)
        )

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)


class TestTracer:
    def test_counts_every_emit(self):
        tracer = Tracer()
        tracer.emit("tx", 1.0, src=1)
        tracer.emit("tx", 2.0, src=2)
        tracer.emit("rx", 2.5)
        assert tracer.count("tx") == 2
        assert tracer.count("rx") == 1
        assert tracer.count("nothing") == 0

    def test_retention_only_for_kept_kinds(self):
        tracer = Tracer(keep=["tx"])
        tracer.emit("tx", 1.0, src=1)
        tracer.emit("rx", 2.0)
        assert len(tracer.records("tx")) == 1
        assert tracer.records("rx") == []

    def test_keep_all(self):
        tracer = Tracer(keep_all=True)
        tracer.emit("a", 1.0)
        tracer.emit("b", 2.0)
        assert len(tracer.records()) == 2

    def test_keep_kind_added_later(self):
        tracer = Tracer()
        tracer.emit("x", 1.0)
        tracer.keep_kind("x")
        tracer.emit("x", 2.0)
        assert len(tracer.records("x")) == 1

    def test_subscription_callback(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe("evt", lambda r: seen.append((r.time, r["value"])))
        tracer.emit("evt", 3.0, value=42)
        tracer.emit("other", 4.0)
        assert seen == [(3.0, 42)]

    def test_record_get_with_default(self):
        tracer = Tracer(keep=["evt"])
        tracer.emit("evt", 1.0, a=1)
        record = tracer.records("evt")[0]
        assert record.get("a") == 1
        assert record.get("missing", "dflt") == "dflt"

    def test_clear(self):
        tracer = Tracer(keep_all=True)
        tracer.emit("a", 1.0)
        tracer.clear()
        assert tracer.records() == []
        assert tracer.count("a") == 0

    def test_null_tracer_counts_but_keeps_nothing(self):
        tracer = NullTracer()
        tracer.emit("x", 1.0)
        assert tracer.count("x") == 1
        assert tracer.records() == []
