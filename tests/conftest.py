"""Shared fixtures and small-network builders for the test suite."""

from typing import List, Optional, Sequence

import pytest

from repro.geometry.shapes import Rect
from repro.geometry.vec import Vec2
from repro.net.mac import MacConfig
from repro.net.network import Network, NetworkConfig, build_network
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(12345)


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


def make_network(
    sim: Simulator,
    positions: Sequence[Vec2],
    comm_range: float = 105.0,
    sleep_period: float = 9.0,
    active_window: float = 0.1,
    psm_offset: float = 0.0,
    region_side: float = 1000.0,
    seed: int = 12345,
    tracer: Optional[Tracer] = None,
) -> Network:
    """Build a deterministic test network from explicit positions."""
    config = NetworkConfig(
        n_nodes=len(positions),
        region=Rect.square(region_side),
        comm_range_m=comm_range,
        sensing_range_m=comm_range / 2.1,
        sleep_period_s=sleep_period,
        active_window_s=active_window,
        psm_offset_s=psm_offset,
        mac=MacConfig(),
    )
    return build_network(
        sim,
        config,
        RandomStreams(seed),
        tracer=tracer,
        positions=list(positions),
    )


def line_positions(n: int, spacing: float, y: float = 0.0, x0: float = 0.0) -> List[Vec2]:
    """``n`` nodes in a straight line, ``spacing`` metres apart."""
    return [Vec2(x0 + i * spacing, y) for i in range(n)]


def all_active(network: Network) -> None:
    """Make every node a backbone node (no duty cycling)."""
    network.apply_backbone(node.node_id for node in network.nodes)
