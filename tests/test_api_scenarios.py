"""Declarative scenario tests: registry, dict/JSON round-trip, CLI.

The scenario layer is plain data all the way down — these tests pin that
the built-in registry stays well-formed, that specs survive a JSON round
trip, that template expansion (count/spacing/path) produces the intended
requests, and that ``repro scenario <name>`` runs end to end.
"""

import json

import pytest

from repro.api.admission import PhaseAssignPolicy, make_admission_policy
from repro.api.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    build_requests,
    get_scenario,
    list_scenarios,
    load_scenario_file,
    run_scenario,
)
from repro.api.service import MobiQueryService
from repro.cli import main
from repro.core.query import Aggregation


class TestRegistry:
    def test_at_least_four_builtin_scenarios(self):
        assert len(SCENARIOS) >= 4
        for required in (
            "paper-default",
            "patrol-fleet",
            "rush-hour-burst",
            "heterogeneous-mix",
        ):
            assert required in SCENARIOS

    def test_every_builtin_expands_to_valid_requests(self):
        for spec in list_scenarios():
            requests = build_requests(spec)
            assert requests, spec.name
            for request in requests:
                assert request.period_s > 0
                assert request.freshness_s <= request.period_s
                # every start leaves at least one serviceable period
                assert request.start_s <= spec.duration_s - request.period_s

    def test_heterogeneous_mix_is_actually_heterogeneous(self):
        requests = build_requests(get_scenario("heterogeneous-mix"))
        assert len(requests) == 8
        assert len({r.period_s for r in requests}) >= 3
        assert len({r.radius_m for r in requests}) >= 4
        assert len({r.aggregation for r in requests}) >= 4

    def test_unknown_name_lists_the_catalogue(self):
        with pytest.raises(KeyError, match="paper-default"):
            get_scenario("does-not-exist")


class TestRoundTrip:
    def test_dict_round_trip(self):
        for spec in list_scenarios():
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = get_scenario("heterogeneous-mix")
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert load_scenario_file(str(path)) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"name": "x", "bogus": 1})

    def test_admission_dict_builds_policies(self):
        policy = make_admission_policy(
            {"policy": "phase-assign", "slots": 8, "inner": {"policy": "per-area-cap", "max_overlapping": 2}}
        )
        assert isinstance(policy, PhaseAssignPolicy)
        assert policy.slots == 8
        assert policy.inner.max_overlapping == 2
        with pytest.raises(ValueError, match="unknown admission policy"):
            make_admission_policy({"policy": "vibes"})


class TestExpansion:
    def test_count_and_spacing_clone_requests(self):
        spec = ScenarioSpec(
            name="t",
            duration_s=60.0,
            requests=(
                {"count": 3, "spacing_s": 4.0, "period_s": 2.0, "start_s": 1.0},
            ),
        )
        requests = build_requests(spec)
        assert [r.start_s for r in requests] == [1.0, 5.0, 9.0]

    def test_aggregation_parsed_from_string(self):
        spec = ScenarioSpec(
            name="t", duration_s=20.0, requests=({"aggregation": "max"},)
        )
        (request,) = build_requests(spec)
        assert request.aggregation is Aggregation.MAX

    def test_patrol_path_built_from_waypoints(self):
        spec = ScenarioSpec(
            name="t",
            duration_s=20.0,
            requests=(
                {
                    "path": {
                        "kind": "patrol",
                        "waypoints": [[10, 10], [50, 10]],
                        "speed": 4.0,
                        "loops": 3,
                    }
                },
            ),
        )
        (request,) = build_requests(spec)
        assert request.path is not None
        assert request.path.position_at(0.0).x == 10.0

    def test_scaled_down_scenario_clamps_starts(self):
        """A quick-duration override keeps every user serviceable."""
        requests = build_requests(
            get_scenario("heterogeneous-mix").with_overrides(duration_s=10.0)
        )
        for request in requests:
            assert request.start_s <= 10.0 - request.period_s + 1e-9


class TestRunning:
    def test_paper_default_runs_and_scores(self):
        result = run_scenario(get_scenario("paper-default"), duration_s=12.0)
        assert result.admitted == 1
        assert result.rejected == 0
        assert result.workload.num_users == 1
        assert result.mean_success > 0.5
        assert result.events_executed > 0

    def test_rush_hour_burst_phases_are_spread(self):
        result = run_scenario(get_scenario("rush-hour-burst"), duration_s=16.0)
        starts = sorted(h.spec.start_s for h in result.handles)
        # 12 users over 4 phase slots of a 2 s period
        assert starts == sorted([0.0, 0.5, 1.0, 1.5] * 3)


class TestCli:
    def test_cli_runs_heterogeneous_mix(self, capsys):
        code = main(["scenario", "heterogeneous-mix", "--duration", "12"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario=heterogeneous-mix" in out
        assert "admitted 8 / 8 sessions" in out
        assert "fleet mean success" in out

    def test_cli_list(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_cli_unknown_scenario_is_clean_error(self, capsys):
        assert main(["scenario", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro scenario: error:")
        assert "\n" == err[-1] and err.count("\n") == 1  # one line

    def test_cli_file_scenario(self, tmp_path, capsys):
        spec = get_scenario("paper-default").with_overrides(duration_s=8.0)
        path = tmp_path / "mine.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert main(["scenario", "--file", str(path)]) == 0
        assert "scenario=paper-default" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Strict spec validation: typo'd keys fail at load time, one clear line
# ----------------------------------------------------------------------
class TestStrictValidation:
    def test_unknown_request_template_key_rejected(self):
        with pytest.raises(ValueError, match="unknown request-template key 'perod_s'"):
            ScenarioSpec(name="x", requests=({"radius_m": 60.0, "perod_s": 2.0},))

    def test_unknown_request_key_rejected_from_dict(self):
        with pytest.raises(ValueError, match="request-template key"):
            ScenarioSpec.from_dict(
                {"name": "x", "requests": [{"raduis_m": 60.0}]}
            )

    def test_unknown_network_key_rejected(self):
        with pytest.raises(ValueError, match="unknown network key 'sleep_period'"):
            ScenarioSpec(name="x", network={"sleep_period": 9.0})

    def test_expansion_keys_still_accepted(self):
        spec = ScenarioSpec(
            name="x",
            requests=(
                {"count": 3, "spacing_s": 1.0, "aggregation": "max",
                 "path": {"kind": "random"}, "radius_m": 60.0},
            ),
        )
        assert len(build_requests(spec)) == 3

    def test_cli_file_with_bad_request_key_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"name": "bad", "requests": [{"radius_m": 60.0, "perod_s": 2.0}]}
        ))
        assert main(["scenario", "--file", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown request-template key 'perod_s'" in err
        assert err.count("\n") == 1  # one line

    def test_shards_and_workers_validate(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ScenarioSpec(name="x", shards=0)
        with pytest.raises(ValueError, match="shards must be an integer"):
            ScenarioSpec(name="x", shards="two")
        with pytest.raises(ValueError, match="workers must be >= 0"):
            ScenarioSpec(name="x", workers=-1)
        with pytest.raises(ValueError, match="unknown partitioner"):
            ScenarioSpec(name="x", partitioner="hexagons")

    def test_shards_round_trip_and_overrides(self):
        spec = ScenarioSpec(name="x", shards=4, workers=2,
                            partitioner="grid-stripe")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        scaled = spec.with_overrides(shards=1, workers=0)
        assert scaled.shards == 1 and scaled.workers == 0
        assert scaled.partitioner == "grid-stripe"


# ----------------------------------------------------------------------
# The sharded backend behind the scenario surface
# ----------------------------------------------------------------------
class TestShardedScenarios:
    def test_build_backend_picks_the_right_plane(self):
        from repro.api import build_backend
        from repro.cluster import ClusterService

        single = build_backend(get_scenario("paper-default"))
        assert isinstance(single, MobiQueryService)
        sharded = build_backend(
            get_scenario("paper-default").with_overrides(shards=2)
        )
        assert isinstance(sharded, ClusterService)
        assert sharded.num_shards == 2

    def test_cluster_registry_scenario_runs_small(self):
        spec = get_scenario("cluster_scale_64users")
        assert spec.shards == 4 and spec.workers == 4
        # Scaled far down for test speed: 8 users, 16 s, in-process.
        small = ScenarioSpec.from_dict({
            **spec.to_dict(),
            "duration_s": 16.0,
            "workers": 0,
            "requests": [{**dict(spec.requests[0]), "count": 8}],
        })
        result = run_scenario(small)
        assert result.shards == 4
        assert result.admitted == 8
        assert result.frames_sent > 0

    def test_scenario_shards_override_matches_single_world(self):
        spec = get_scenario("paper-default").with_overrides(duration_s=10.0)
        single = run_scenario(spec)
        cluster = run_scenario(spec, shards=1)
        assert cluster.shards == 1
        assert cluster.frames_sent == single.frames_sent
        assert cluster.events_executed == single.events_executed
