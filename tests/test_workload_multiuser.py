"""Multi-user workload tests: concurrent sessions must not cross-contaminate.

Two users with heavily overlapping query areas run on one shared network
and one shared protocol instance.  The sessions' trees coexist on the same
backbone nodes — keyed by ``(user_id, query_id)`` — so these tests pin the
isolation properties: aggregates stay inside each user's own area,
cancellation chains only tear down their own session's state, and
collector/tree GC drains both sessions independently.
"""

import pytest

from repro.core.gateway import MobiQueryGateway, SessionScheduler
from repro.core.query import Aggregation, QuerySpec
from repro.core.service import MobiQueryConfig, MobiQueryProtocol
from repro.geometry.vec import Vec2
from repro.mobility.path import PiecewisePath
from repro.mobility.planner import FullKnowledgeProvider
from repro.mobility.profile import MotionProfile, ProfileArrival, ProfileProvider
from repro.net.field import UniformField
from repro.net.routing import GeoRouter
from repro.sim.trace import Tracer
from repro.workload import UserPlan, Workload, arrival_times
from repro.workload.arrivals import (
    ARRIVAL_POISSON,
    ARRIVAL_SIMULTANEOUS,
    ARRIVAL_STAGGERED,
    ARRIVAL_UNIFORM,
)
from repro.sim.rng import RandomStreams

from .conftest import make_network


def grid_positions(nx, ny, spacing, origin=0.0):
    return [
        Vec2(origin + i * spacing, origin + j * spacing)
        for j in range(ny)
        for i in range(nx)
    ]


class ScriptedProvider(ProfileProvider):
    """A fixed list of profile arrivals (for motion-change scenarios)."""

    def __init__(self, scripted):
        self._arrivals = list(scripted)

    def arrivals(self):
        return self._arrivals


class MultiStack:
    """Two (or more) full MobiQuery sessions over one deterministic grid."""

    def __init__(
        self,
        sim,
        user_positions,
        starts=None,
        duration=30.0,
        period=2.0,
        radius=100.0,
        providers=None,
        policy="jit",
    ):
        self.sim = sim
        self.tracer = Tracer()
        positions = grid_positions(6, 6, 42.0)  # 36 nodes over 210 m square
        self.network = make_network(
            sim,
            positions,
            comm_range=105.0,
            sleep_period=6.0,
            psm_offset=2.0,
            region_side=250.0,
            tracer=self.tracer,
        )
        for node in self.network.nodes:
            node.field = UniformField(level=20.0)
        backbone = [n.node_id for n in self.network.nodes if n.node_id % 2 == 0]
        self.network.apply_backbone(backbone)
        self.geo = GeoRouter(self.network, self.tracer)
        self.protocol = MobiQueryProtocol(
            self.network,
            self.geo,
            MobiQueryConfig(prefetch_policy=policy),
            self.tracer,
        )
        self.duration = duration
        self.workload = Workload(self.network, self.tracer)
        self.paths = []
        self.specs = []
        streams = RandomStreams(77)
        starts = starts or [0.0] * len(user_positions)
        for user_id, position in enumerate(user_positions):
            path = PiecewisePath.stationary(position)
            spec = QuerySpec(
                aggregation=Aggregation.AVG,
                radius_m=radius,
                period_s=period,
                freshness_s=1.0,
                lifetime_s=duration - starts[user_id],
                user_id=user_id,
                start_s=starts[user_id],
            )
            provider = None
            if providers is not None:
                provider = providers[user_id]
            if provider is None:
                provider = FullKnowledgeProvider(path, duration)
            plan = UserPlan(user_id=user_id, spec=spec, path=path, provider=provider)
            self.workload.add_mobiquery_user(
                plan, self.protocol, rng=streams.stream(f"proxy.{user_id}")
            )
            self.paths.append(path)
            self.specs.append(spec)

    def run(self, until=None):
        self.sim.run(until=self.duration + 0.5 if until is None else until)

    def gateway(self, user_id):
        return self.workload.sessions[user_id].gateway

    def area_ids(self, user_id):
        spec = self.specs[user_id]
        center = self.paths[user_id].position_at(0.0)
        return {
            n.node_id
            for n in self.network.nodes_in_disk(center, spec.radius_m)
        }


#: two users ~40 m apart: query disks overlap almost completely
OVERLAPPING = [Vec2(85, 105), Vec2(125, 105)]


class TestConcurrentDelivery:
    def test_both_sessions_deliver_every_period(self, sim):
        stack = MultiStack(sim, OVERLAPPING)
        stack.run()
        for user_id in (0, 1):
            delivered = {d.k for d in stack.gateway(user_id).deliveries}
            assert delivered == set(range(1, 16)), f"user {user_id} missed periods"

    def test_aggregates_stay_inside_own_area(self, sim):
        """Overlapping trees on shared nodes must not leak contributors."""
        stack = MultiStack(sim, OVERLAPPING)
        stack.run()
        for user_id in (0, 1):
            area = stack.area_ids(user_id)
            for d in stack.gateway(user_id).deliveries:
                assert set(d.contributors) <= area, (
                    f"user {user_id} period {d.k} aggregated nodes outside "
                    f"their own query area"
                )

    def test_aggregate_values_uncontaminated(self, sim):
        """Uniform field: every AVG must be exactly the field level."""
        stack = MultiStack(sim, OVERLAPPING)
        stack.run()
        for user_id in (0, 1):
            for d in stack.gateway(user_id).deliveries:
                assert d.value == pytest.approx(20.0)

    def test_sessions_keyed_independently_in_protocol(self, sim):
        stack = MultiStack(sim, OVERLAPPING)
        counts = []

        def probe():
            counts.append(
                (
                    stack.protocol.tree_state_count(stack.specs[0].session_key),
                    stack.protocol.tree_state_count(stack.specs[1].session_key),
                    stack.protocol.tree_state_count(),
                )
            )

        sim.schedule_at(10.0, probe)
        stack.run()
        (a, b, total), = counts
        assert a > 0 and b > 0
        assert total == a + b


class TestStaggeredStart:
    def test_late_session_starts_at_its_origin(self, sim):
        stack = MultiStack(sim, OVERLAPPING, starts=[0.0, 6.0])
        stack.run()
        late = stack.gateway(1)
        assert late.deliveries, "staggered session never delivered"
        # user 1's first deadline is start + period = 8 s
        assert min(d.time for d in late.deliveries) > 6.0
        assert {d.k for d in late.deliveries} == set(range(1, 13))

    def test_early_session_unaffected_by_late_arrival(self, sim):
        solo = MultiStack(sim, [OVERLAPPING[0]])
        solo.run()
        solo_ks = {d.k for d in solo.gateway(0).deliveries}
        assert solo_ks == set(range(1, 16))

    def test_pre_start_profile_history_collapsed(self, sim):
        """A late-starting session adopts only the newest pre-start profile
        (replaying the full history would burst superseding chains)."""
        duration = 30.0
        # three distinct predicted positions (> the 25 m replace tolerance)
        spots = [Vec2(60, 60), Vec2(85, 105), Vec2(125, 145)]
        provider = ScriptedProvider(
            [
                ProfileArrival(
                    time=t,
                    profile=MotionProfile(
                        path=PiecewisePath.stationary(spot),
                        ts=t,
                        validity_s=duration,
                        tg=t,
                    ),
                )
                for t, spot in zip((0.0, 3.0, 9.0), spots)
            ]
        )
        stack = MultiStack(
            sim,
            [OVERLAPPING[0]],
            starts=[6.0],
            duration=duration,
            providers=[provider],
        )
        stack.tracer.keep_kind("profile-adopted")
        stack.run()
        adoptions = stack.tracer.records("profile-adopted")
        # one collapsed pre-start adoption at t=6, one live arrival at t=9
        assert [round(r.time, 6) for r in adoptions] == [6.0, 9.0]


class TestCancellationIsolation:
    def _moving_provider(self, duration):
        """User 0: adopts a corrected path at t=7 (cancels the old chain)."""
        path_a = PiecewisePath.stationary(Vec2(85, 105))
        path_b = PiecewisePath.stationary(Vec2(60, 60))
        return ScriptedProvider(
            [
                ProfileArrival(
                    time=0.0,
                    profile=MotionProfile(
                        path=path_a, ts=0.0, validity_s=duration, tg=0.0
                    ),
                ),
                ProfileArrival(
                    time=7.0,
                    profile=MotionProfile(
                        path=path_b, ts=7.0, validity_s=duration, tg=7.0
                    ),
                ),
            ]
        )

    def test_cancel_chain_only_touches_own_session(self, sim):
        duration = 30.0
        stack = MultiStack(
            sim,
            OVERLAPPING,
            duration=duration,
            providers=[self._moving_provider(duration), None],
        )
        stack.tracer.keep_kind("collector-released")
        stack.run()
        # the other user's session must ride through the cancellation storm
        delivered = {d.k for d in stack.gateway(1).deliveries}
        assert delivered == set(range(1, 16)), "bystander session lost periods"
        # every cancelled collector release belongs to user 0's query
        cancelled = [
            r
            for r in stack.tracer.records("collector-released")
            if r.get("reason") == "cancelled"
        ]
        assert cancelled, "profile change never cancelled anything"
        for record in cancelled:
            assert record.get("user") == 0
            assert record.get("query") == stack.specs[0].query_id

    def test_bystander_collectors_survive(self, sim):
        duration = 30.0
        stack = MultiStack(
            sim,
            OVERLAPPING,
            duration=duration,
            providers=[self._moving_provider(duration), None],
        )
        live = []
        sim.schedule_at(
            9.0,
            lambda: live.append(
                stack.protocol.live_collector_periods(stack.specs[1].session_key)
            ),
        )
        stack.run()
        assert live[0], "user 1's collectors were torn down by user 0's cancel"


class TestGarbageCollection:
    def test_all_sessions_drain_after_run(self, sim):
        stack = MultiStack(sim, OVERLAPPING)
        stack.run(until=stack.duration + 5.0)
        assert stack.protocol.tree_state_count() == 0
        assert stack.protocol.active_sessions() == []

    def test_per_session_counts_drain_independently(self, sim):
        """A session ending early GCs fully while the other still runs."""
        stack = MultiStack(sim, OVERLAPPING, starts=[0.0, 0.0], duration=30.0)
        # user 1's session is shorter: rebuild spec via lifetime in starts
        # (covered by staggered test); here check final drain per session.
        stack.run(until=stack.duration + 5.0)
        for spec in stack.specs:
            assert stack.protocol.tree_state_count(spec.session_key) == 0


class TestSessionScheduler:
    def test_duplicate_session_rejected(self, sim):
        stack = MultiStack(sim, [OVERLAPPING[0]])
        gateway = stack.gateway(0)
        with pytest.raises(ValueError):
            stack.workload.scheduler.add(gateway)

    def test_started_count_tracks_origins(self, sim):
        stack = MultiStack(sim, OVERLAPPING, starts=[0.0, 10.0])
        assert stack.workload.scheduler.started_count() == 1
        sim.run(until=11.0)
        assert stack.workload.scheduler.started_count() == 2

    def test_session_keys_sorted(self, sim):
        stack = MultiStack(sim, OVERLAPPING)
        keys = stack.workload.scheduler.session_keys()
        assert keys == sorted(keys)
        assert [k[0] for k in keys] == [0, 1]

    def test_past_origin_session_added_mid_run_starts_cleanly(self, sim):
        """A session registered after its nominal origin must not fire the
        watchdog in the adoption instant (spurious superseding re-inject)."""
        duration = 40.0
        stack = MultiStack(sim, [OVERLAPPING[0]], duration=duration)
        stack.tracer.keep_kind("watchdog-reinject")
        path = PiecewisePath.stationary(OVERLAPPING[1])
        spec = QuerySpec(
            radius_m=100.0,
            period_s=2.0,
            freshness_s=1.0,
            lifetime_s=duration,
            user_id=1,
            start_s=0.0,
        )
        plan = UserPlan(
            user_id=1,
            spec=spec,
            path=path,
            provider=FullKnowledgeProvider(path, duration),
        )
        sim.schedule_at(
            20.0,
            lambda: stack.workload.add_mobiquery_user(
                plan, stack.protocol, rng=RandomStreams(5).stream("late")
            ),
        )
        stack.run()
        # no watchdog panic in the first periods after the late start
        early_reinjects = [
            r.time
            for r in stack.tracer.records("watchdog-reinject")
            if 20.0 - 1e-9 <= r.time <= 23.0
        ]
        assert early_reinjects == []
        # and the late session serves the remaining periods
        late_ks = {d.k for d in stack.gateway(1).deliveries}
        assert late_ks >= set(range(12, 20))


class TestArrivalProcesses:
    def test_simultaneous(self):
        assert arrival_times(4) == [0.0, 0.0, 0.0, 0.0]

    def test_staggered(self):
        assert arrival_times(3, ARRIVAL_STAGGERED, spacing_s=2.5) == [0.0, 2.5, 5.0]

    def test_user_zero_always_at_origin(self):
        rng = RandomStreams(1).stream("arrivals")
        for process in (ARRIVAL_UNIFORM, ARRIVAL_POISSON):
            times = arrival_times(5, process, spacing_s=3.0, rng=rng)
            assert times[0] == 0.0
            assert times == sorted(times)

    def test_stochastic_processes_need_rng(self):
        with pytest.raises(ValueError):
            arrival_times(3, ARRIVAL_POISSON, spacing_s=1.0)

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(3, "burst")

    def test_bad_num_users_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(0)

    def test_negative_spacing_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(2, ARRIVAL_STAGGERED, spacing_s=-1.0)

    def test_single_user_any_process(self):
        assert arrival_times(1, ARRIVAL_SIMULTANEOUS) == [0.0]


class TestExperimentRunnerIntegration:
    """The num_users dimension through the experiments layer (small nets)."""

    @staticmethod
    def _config(**overrides):
        from repro.experiments.config import ExperimentConfig, QueryParams
        from repro.geometry.shapes import Rect
        from repro.net.network import NetworkConfig

        defaults = dict(
            mode="jit",
            seed=3,
            duration_s=20.0,
            network=NetworkConfig(n_nodes=60, region=Rect.square(250.0)),
            query=QueryParams(radius_m=80.0),
        )
        defaults.update(overrides)
        return ExperimentConfig(**defaults)

    def test_multi_user_run_reports_all_sessions(self):
        from repro.experiments.runner import run_experiment

        config = self._config().with_num_users(
            3, arrival_process=ARRIVAL_STAGGERED, arrival_spacing_s=2.5
        )
        result = run_experiment(config)
        assert [s.user_id for s in result.sessions] == [0, 1, 2]
        assert [s.start_s for s in result.sessions] == [0.0, 2.5, 5.0]
        assert result.metrics is result.sessions[0].metrics
        assert len(result.user_success_ratios) == 3
        assert result.min_user_success_ratio <= result.mean_user_success_ratio

    def test_single_user_run_has_one_session(self):
        from repro.experiments.runner import run_experiment

        result = run_experiment(self._config())
        assert len(result.sessions) == 1
        assert result.sessions[0].user_id == 0
        assert result.success_ratio == result.sessions[0].success_ratio

    def test_np_baseline_multi_user(self):
        from repro.experiments.runner import run_experiment

        config = self._config(mode="np").with_num_users(2)
        result = run_experiment(config)
        assert len(result.sessions) == 2
        for session in result.sessions:
            assert session.deliveries > 0

    def test_arrival_past_run_end_rejected(self):
        from repro.experiments.runner import run_experiment

        config = self._config().with_num_users(
            2, arrival_process=ARRIVAL_STAGGERED, arrival_spacing_s=19.5
        )
        with pytest.raises(ValueError, match="no serviceable period"):
            run_experiment(config)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            self._config(num_users=0)
        with pytest.raises(ValueError):
            self._config(arrival_process="burst")
        with pytest.raises(ValueError):
            self._config(arrival_spacing_s=-1.0)
        with pytest.raises(ValueError):
            self._config(mode="idle", num_users=2)


class TestSpecSessionMath:
    def test_deadlines_shift_with_origin(self):
        spec = QuerySpec(period_s=2.0, lifetime_s=10.0, start_s=5.0)
        assert spec.deadline(1) == 7.0
        assert spec.deadline(5) == 15.0
        assert spec.end_s == 15.0
        assert spec.num_periods == 5

    def test_period_index_origin_aware(self):
        spec = QuerySpec(period_s=2.0, lifetime_s=10.0, start_s=5.0)
        assert spec.period_index(5.0) == 0
        assert spec.period_index(8.9) == 1
        assert spec.period_index(9.0) == 2

    def test_session_key(self):
        spec = QuerySpec(period_s=2.0, lifetime_s=10.0, user_id=3)
        assert spec.session_key == (3, spec.query_id)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec(start_s=-1.0)

    def test_plan_user_mismatch_rejected(self):
        spec = QuerySpec(period_s=2.0, lifetime_s=10.0, user_id=1)
        path = PiecewisePath.stationary(Vec2(0, 0))
        with pytest.raises(ValueError):
            UserPlan(user_id=2, spec=spec, path=path)
