"""Tests for query-area shapes (disk, sector, corridor) and their use
end-to-end — the paper's 'other types of query areas' extension."""

import math

import pytest

from repro.geometry.areas import DiskTemplate, RectTemplate, SectorTemplate
from repro.geometry.vec import Vec2


class TestDiskTemplate:
    def test_matches_circle_semantics(self):
        area = DiskTemplate(radius_m=100.0).at(Vec2(50, 50))
        assert area.contains(Vec2(50, 50))
        assert area.contains(Vec2(150, 50))
        assert not area.contains(Vec2(151, 50))
        assert area.bounding_radius == 100.0

    def test_heading_irrelevant(self):
        t = DiskTemplate(radius_m=10.0)
        east = t.at(Vec2(0, 0), Vec2(1, 0))
        north = t.at(Vec2(0, 0), Vec2(0, 1))
        for p in (Vec2(5, 5), Vec2(-7, 0), Vec2(0, 9)):
            assert east.contains(p) == north.contains(p)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskTemplate(radius_m=0.0)


class TestSectorTemplate:
    def test_contains_forward_not_backward(self):
        area = SectorTemplate(radius_m=100.0, half_angle_deg=45.0).at(
            Vec2(0, 0), Vec2(1, 0)
        )
        assert area.contains(Vec2(50, 0))       # dead ahead
        assert area.contains(Vec2(50, 40))      # within 45 degrees
        assert not area.contains(Vec2(0, 50))   # 90 degrees off
        assert not area.contains(Vec2(-50, 0))  # behind

    def test_hub_always_included(self):
        area = SectorTemplate(radius_m=100.0, half_angle_deg=30.0, hub_radius_m=15.0).at(
            Vec2(0, 0), Vec2(1, 0)
        )
        assert area.contains(Vec2(-10, 0))  # behind, but inside the hub

    def test_radius_limit(self):
        area = SectorTemplate(radius_m=100.0, half_angle_deg=45.0).at(
            Vec2(0, 0), Vec2(1, 0)
        )
        assert not area.contains(Vec2(101, 0))

    def test_orientation_follows_heading(self):
        north = SectorTemplate(radius_m=100.0, half_angle_deg=30.0).at(
            Vec2(0, 0), Vec2(0, 1)
        )
        assert north.contains(Vec2(0, 50))
        assert not north.contains(Vec2(50, 0))

    def test_zero_heading_falls_back_to_east(self):
        area = SectorTemplate(radius_m=100.0, half_angle_deg=30.0).at(
            Vec2(0, 0), Vec2(0, 0)
        )
        assert area.contains(Vec2(50, 0))

    def test_validation(self):
        with pytest.raises(ValueError):
            SectorTemplate(radius_m=-1.0)
        with pytest.raises(ValueError):
            SectorTemplate(half_angle_deg=0.0)
        with pytest.raises(ValueError):
            SectorTemplate(hub_radius_m=-1.0)


class TestRectTemplate:
    def test_corridor_along_heading(self):
        area = RectTemplate(length_m=200.0, width_m=60.0).at(Vec2(0, 0), Vec2(1, 0))
        assert area.contains(Vec2(90, 0))
        assert area.contains(Vec2(-90, 25))
        assert not area.contains(Vec2(110, 0))   # beyond half-length
        assert not area.contains(Vec2(0, 40))    # beyond half-width

    def test_rotated_corridor(self):
        diag = Vec2(1, 1)
        area = RectTemplate(length_m=200.0, width_m=20.0).at(Vec2(0, 0), diag)
        assert area.contains(Vec2(50, 50))       # along the diagonal
        assert not area.contains(Vec2(50, -50))  # perpendicular

    def test_bounding_radius(self):
        template = RectTemplate(length_m=80.0, width_m=60.0)
        assert template.bounding_radius == pytest.approx(50.0)  # 3-4-5

    def test_validation(self):
        with pytest.raises(ValueError):
            RectTemplate(length_m=0.0)


class TestQuerySpecIntegration:
    def test_spec_defaults_to_disk(self):
        from repro.core.query import QuerySpec

        spec = QuerySpec(radius_m=120.0)
        area = spec.area_at(Vec2(10, 10))
        assert area.contains(Vec2(10, 130))
        assert not area.contains(Vec2(10, 131))
        assert spec.effective_radius_m == 120.0

    def test_spec_with_sector_template(self):
        from repro.core.query import QuerySpec

        spec = QuerySpec(area_template=SectorTemplate(radius_m=100.0, half_angle_deg=60.0))
        area = spec.area_at(Vec2(0, 0), Vec2(0, 1))
        assert area.contains(Vec2(0, 80))
        assert not area.contains(Vec2(0, -80))
        assert spec.effective_radius_m == 100.0


class TestSectorQueryEndToEnd:
    def test_sector_query_collects_forward_nodes_only(self, sim):
        """A forward-sector query over the grid: contributors must sit in
        the wedge ahead of the (eastbound) user, not behind."""
        from repro.core.query import Aggregation, QuerySpec
        from repro.mobility.path import PiecewisePath
        from .test_core_service import Stack

        path = PiecewisePath.from_velocity(Vec2(20, 105), Vec2(2.0, 0), 0.0, 40.0)
        stack = Stack(sim, user_path=path, duration=30.0)
        # swap in a sector query spec (forward 90-degree wedge)
        object.__setattr__(
            stack.spec, "area_template",
            SectorTemplate(radius_m=120.0, half_angle_deg=45.0, hub_radius_m=25.0),
        )
        stack.run()
        late = [d for d in stack.gateway.deliveries if d.k >= 10]
        assert late
        for d in late:
            user = path.position_at(d.k * 2.0)
            for nid in d.contributors:
                node = stack.network.node_by_id(nid)
                offset = node.position - user
                # every contributor is inside the hub or roughly forward
                assert offset.norm() <= 25.0 + 1e-6 or offset.x >= -abs(offset.y) - 20.0
