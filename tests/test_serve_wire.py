"""The serve wire contract: error codes, ring semantics, codecs.

These pin the *stable* surface — the error-code table, the payload
shapes, the percentile arithmetic — so a wire-visible change can never
happen by accident.
"""

import threading
import time

import pytest

from repro.api.backend import BackendStats
from repro.api.scenarios import (
    SCENARIOS,
    build_request_payloads,
    build_requests,
    request_from_payload,
)
from repro.api.service import ServiceClosedError
from repro.cluster.transport import decision_from_dict, decision_to_dict
from repro.api.admission import AdmissionDecision
from repro.serve.errors import (
    ERROR_CODES,
    EXIT_FAILURE,
    EXIT_USAGE,
    RETRYABLE_CODES,
    WireError,
    map_exception,
)
from repro.serve.ring import ResultRing
from repro.serve.wire import percentile, request_from_wire, summarize


# ----------------------------------------------------------------------
# The typed error contract (satellite: tests pin the codes)
# ----------------------------------------------------------------------
def test_error_code_table_is_pinned():
    assert ERROR_CODES == {
        "invalid-request": (400, 2),
        "unknown-scenario": (404, 2),
        "missing-token": (401, 2),
        "unknown-route": (404, 2),
        "foreign-session": (403, 3),
        "unknown-session": (404, 3),
        "admission-rejected": (409, 3),
        "horizon-passed": (409, 3),
        "service-closed": (503, 3),
        "draining": (503, 3),
        "daemon-unreachable": (502, 3),
        "replay-mismatch": (409, 3),
        "internal": (500, 3),
        "rate-limited": (429, 3),
        "overloaded": (503, 3),
        "chaos-injected": (503, 3),
    }
    assert EXIT_USAGE == 2 and EXIT_FAILURE == 3
    # The retryable set is wire API too: clients branch on it.
    assert RETRYABLE_CODES == {"rate-limited", "overloaded", "chaos-injected"}


def test_wire_error_retry_after_rides_payload_and_round_trips():
    err = WireError("rate-limited", "slow down", retry_after_s=0.25)
    assert err.payload() == {
        "error": {
            "code": "rate-limited",
            "message": "slow down",
            "retry_after_s": 0.25,
        }
    }
    back = WireError.from_payload(err.payload())
    assert back.retry_after_s == 0.25
    # Absent hint stays absent — the payload shape is unchanged for
    # every pre-existing code.
    assert WireError("draining", "x").payload() == {
        "error": {"code": "draining", "message": "x"}
    }


def test_wire_error_carries_status_and_exit_code():
    err = WireError("foreign-session", "not yours")
    assert err.http_status == 403
    assert err.exit_code == 3
    assert err.payload() == {
        "error": {"code": "foreign-session", "message": "not yours"}
    }


def test_wire_error_rejects_unknown_code():
    with pytest.raises(ValueError):
        WireError("no-such-code", "boom")


def test_wire_error_round_trips_through_payload():
    err = WireError("draining", "shutting down")
    back = WireError.from_payload(err.payload())
    assert (back.code, back.message) == ("draining", "shutting down")


def test_wire_error_from_malformed_payload_is_internal():
    assert WireError.from_payload({"nope": 1}).code == "internal"
    assert WireError.from_payload({"error": {"code": "???"}}).code == "internal"


def test_map_exception_folds_into_the_contract():
    assert map_exception(WireError("draining", "x")).code == "draining"
    assert map_exception(ServiceClosedError("sealed")).code == "service-closed"
    assert map_exception(KeyError("nope")).code == "unknown-scenario"
    assert map_exception(ValueError("bad")).code == "invalid-request"
    assert map_exception(TypeError("bad")).code == "invalid-request"
    assert map_exception(RuntimeError("?")).code == "internal"


# ----------------------------------------------------------------------
# The result ring
# ----------------------------------------------------------------------
def test_ring_append_read_and_done():
    ring = ResultRing(capacity=8)
    ring.append({"k": 1})
    ring.append({"k": 2})
    items, missed, done = ring.read(after_k=0)
    assert [i["k"] for i in items] == [1, 2]
    assert missed == 0 and not done
    items, _, _ = ring.read(after_k=1)
    assert [i["k"] for i in items] == [2]
    ring.close()
    items, _, done = ring.read(after_k=2)
    assert items == [] and done


def test_ring_bounded_overflow_reports_missed():
    ring = ResultRing(capacity=2)
    for k in (1, 2, 3, 4):
        ring.append({"k": k})
    assert ring.dropped == 2
    items, missed, _ = ring.read(after_k=0)
    assert [i["k"] for i in items] == [3, 4]
    assert missed == 2  # periods 1 and 2 were evicted unseen


def test_ring_long_poll_wakes_on_append():
    ring = ResultRing()
    got = {}

    def reader():
        got["result"] = ring.read(after_k=0, wait_s=5.0)

    thread = threading.Thread(target=reader)
    thread.start()
    time.sleep(0.05)
    ring.append({"k": 1})
    thread.join(timeout=5.0)
    items, missed, done = got["result"]
    assert [i["k"] for i in items] == [1] and missed == 0 and not done


def test_ring_long_poll_times_out_empty():
    ring = ResultRing()
    t0 = time.monotonic()
    items, missed, done = ring.read(after_k=0, wait_s=0.05)
    assert items == [] and not done
    assert time.monotonic() - t0 >= 0.04


def test_ring_long_poll_under_concurrent_readers_and_eviction():
    """N readers long-polling one tiny ring while a writer floods it.

    Every reader must terminate (no lost wakeups), and each one's
    ``received + missed`` accounting must equal the total appended —
    eviction under pressure loses entries, never *count* of entries.
    """
    ring = ResultRing(capacity=4)
    total = 200
    results = {}

    def reader(slot):
        received = missed = after = 0
        while True:
            items, miss, done = ring.read(after_k=after, wait_s=2.0)
            received += len(items)
            missed += miss
            for item in items:
                assert item["k"] > after  # strictly forward, never replayed
                after = item["k"]
            if done and not items:
                results[slot] = (received, missed)
                return

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(4)
    ]
    for thread in threads:
        thread.start()
    for k in range(1, total + 1):
        ring.append({"k": k})
        if k % 16 == 0:
            time.sleep(0.001)  # let readers interleave with eviction
    ring.close()
    for thread in threads:
        thread.join(timeout=10.0)
    assert not any(thread.is_alive() for thread in threads)
    assert len(results) == 4
    for received, missed in results.values():
        assert received + missed == total
        assert received >= 1  # everyone saw at least something


def test_ring_rejects_append_after_close_and_bad_capacity():
    ring = ResultRing()
    ring.close()
    with pytest.raises(RuntimeError):
        ring.append({"k": 1})
    with pytest.raises(ValueError):
        ResultRing(capacity=0)


# ----------------------------------------------------------------------
# The request codec
# ----------------------------------------------------------------------
def test_request_from_wire_decodes_a_payload():
    request = request_from_wire(
        {"radius_m": 60.0, "period_s": 2.0, "freshness_s": 1.0,
         "aggregation": "max"}
    )
    assert request.radius_m == 60.0
    assert request.aggregation.value == "max"


@pytest.mark.parametrize(
    "key", ["user_id", "provider", "count", "spacing_s"]
)
def test_request_from_wire_forbids_host_side_fields(key):
    with pytest.raises(WireError) as info:
        request_from_wire({key: 1})
    assert info.value.code == "invalid-request"
    assert key in info.value.message


def test_request_from_wire_rejects_non_dict_and_bad_values():
    for bad in ([1, 2], "nope", None):
        with pytest.raises(WireError) as info:
            request_from_wire(bad)
        assert info.value.code == "invalid-request"
    with pytest.raises(WireError) as info:
        request_from_wire({"radius_m": -5.0})
    assert info.value.code == "invalid-request"
    with pytest.raises(WireError) as info:
        request_from_wire({"no_such_field": 1})
    assert info.value.code == "invalid-request"


def test_request_payload_expansion_matches_build_requests():
    """build_requests == request_from_payload . build_request_payloads."""
    for spec in SCENARIOS.values():
        direct = build_requests(spec)
        via_payloads = [
            request_from_payload(p) for p in build_request_payloads(spec)
        ]
        assert len(direct) == len(via_payloads)
        for a, b in zip(direct, via_payloads):
            assert a.start_s == b.start_s
            assert a.period_s == b.period_s
            assert a.radius_m == b.radius_m
            assert a.freshness_s == b.freshness_s
            assert a.aggregation == b.aggregation
            assert (a.path is None) == (b.path is None)


def test_request_payloads_are_json_plain():
    import json

    for spec in SCENARIOS.values():
        payloads = build_request_payloads(spec)
        assert json.loads(json.dumps(payloads)) == payloads


# ----------------------------------------------------------------------
# Decision round-trip (the submission log's admission entries)
# ----------------------------------------------------------------------
def test_decision_round_trip():
    for decision in (
        AdmissionDecision.accept(),
        AdmissionDecision.accept(offset_s=0.5),
        AdmissionDecision.reject("too crowded"),
    ):
        back = decision_from_dict(decision_to_dict(decision))
        assert back.admitted == decision.admitted
        assert back.reason == decision.reason
        assert back.start_offset_s == decision.start_offset_s


def test_decision_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError):
        decision_from_dict({"admitted": True, "bogus": 1})


# ----------------------------------------------------------------------
# Percentiles + stats shapes
# ----------------------------------------------------------------------
def test_percentile_nearest_rank():
    values = [10.0, 20.0, 30.0, 40.0, 50.0]
    assert percentile(values, 50) == 30.0
    assert percentile(values, 90) == 50.0
    assert percentile(values, 99) == 50.0
    assert percentile(values, 1) == 10.0
    assert percentile([7.0], 99) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50)


def test_summarize_shape():
    assert summarize([]) is None
    stats = summarize([3.0, 1.0, 2.0])
    assert stats == {
        "count": 3, "mean": 2.0, "p50": 2.0, "p90": 3.0, "p99": 3.0,
        "max": 3.0,
    }


def test_backend_stats_to_dict_is_json_shape():
    stats = BackendStats(
        now=1.0, events_executed=2, frames_sent=3, frames_collided=4,
        frames_delivered=5, backbone_size=6,
    )
    data = stats.to_dict()
    assert data["now"] == 1.0 and data["shards"] == 1
    assert set(data) == {
        "now", "events_executed", "frames_sent", "frames_collided",
        "frames_delivered", "backbone_size", "shards", "submitted",
        "admitted", "rejected", "cancelled",
    }
