"""Summary-plane unit tests: geometry, refresh, bounds, merging.

The plane (:mod:`repro.approx.plane`) answers query disks from cached
per-cell partial aggregates.  These tests pin the contract pieces the
end-to-end frontier benchmark leans on:

* radius-driven drill-down capped by the accuracy class;
* covering-cell geometry (outer = intersecting, inner = contained);
* beacon-window snapshot stamping and freshness/degraded accounting;
* per-aggregation error bounds that really bracket the exact answer;
* associative cross-shard merging (:func:`merge_answers`);
* report-overlay sharpening and session registration/release.
"""

import math

import pytest

from repro.approx.plane import (
    ACCURACY_LEVEL_CAP,
    GRID_BASE,
    NUM_LEVELS,
    SummaryPlane,
    merge_answers,
)
from repro.core.query import Aggregation
from repro.geometry.shapes import Rect
from repro.geometry.vec import Vec2
from repro.net.field import GradientField
from repro.net.network import NetworkConfig, build_network
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams


def grid_positions(side: float, per_row: int):
    """A per_row x per_row lattice spread over a ``side``-metre square."""
    step = side / per_row
    return [
        Vec2((i + 0.5) * step, (j + 0.5) * step)
        for j in range(per_row)
        for i in range(per_row)
    ]


def make_plane(side=400.0, per_row=8, sleep_period=3.0, field_model=None):
    sim = Simulator()
    positions = grid_positions(side, per_row)
    config = NetworkConfig(
        n_nodes=len(positions),
        region=Rect.square(side),
        comm_range_m=105.0,
        sensing_range_m=50.0,
        sleep_period_s=sleep_period,
        active_window_s=0.1,
        psm_offset_s=0.0,
    )
    network = build_network(
        sim,
        config,
        RandomStreams(7),
        field_model=field_model or GradientField(base=10.0, slope_x=0.05),
        positions=positions,
    )
    return SummaryPlane(network)


class TestGeometry:
    def test_grid_shape_doubles_per_level(self):
        plane = make_plane()
        for level in range(NUM_LEVELS):
            n = GRID_BASE * (2**level)
            assert plane.grid_shape(level) == (n, n)
            assert plane.cell_size_m(level) == pytest.approx(400.0 / n)

    def test_every_node_is_a_member_at_every_level(self):
        plane = make_plane()
        for level in range(NUM_LEVELS):
            members = plane._members[level]
            total = sum(len(nodes) for nodes in members.values())
            assert total == len(plane.network.nodes)

    def test_covering_cells_outer_contains_inner(self):
        plane = make_plane()
        for level in range(NUM_LEVELS):
            outer, inner = plane._covering_cells(Vec2(200.0, 200.0), 90.0, level)
            assert outer, f"level {level} found no covering cells"
            assert set(inner) <= set(outer)

    def test_covering_cells_inner_really_contained(self):
        plane = make_plane()
        center, radius = Vec2(200.0, 200.0), 150.0
        outer, inner = plane._covering_cells(center, radius, 2)
        assert inner, "a 150 m disk must fully contain some 50 m cells"
        for index in inner:
            x0, y0, x1, y1 = plane._cell_bounds(index, 2)
            for corner in ((x0, y0), (x0, y1), (x1, y0), (x1, y1)):
                d = math.hypot(corner[0] - center.x, corner[1] - center.y)
                assert d <= radius + 1e-9

    def test_drill_level_radius_driven_and_capped(self):
        plane = make_plane()  # level sizes: 100 m, 50 m, 25 m
        # a big disk stays coarse regardless of accuracy class
        assert plane.drill_level(90.0, "coarse") == 0
        assert plane.drill_level(90.0, "medium") == 0
        # a small disk drills as far as the class cap allows
        assert plane.drill_level(10.0, "coarse") == ACCURACY_LEVEL_CAP["coarse"]
        assert plane.drill_level(10.0, "medium") == ACCURACY_LEVEL_CAP["medium"]


class TestRefreshAndFreshness:
    def test_snapshot_stamped_at_window_opening(self):
        plane = make_plane(sleep_period=3.0)
        plane.sim.run(until=7.0)  # most recent window opened at 6.0
        answer = plane.answer(
            Vec2(200.0, 200.0), 90.0, "coarse", 3.0, Aggregation.AVG
        )
        assert answer is not None
        assert answer.age_s == pytest.approx(1.0)
        assert not answer.degraded

    def test_stale_summary_is_degraded_not_silent(self):
        plane = make_plane(sleep_period=9.0)
        plane.sim.run(until=8.0)  # last window at 0.0 -> 8 s old
        answer = plane.answer(
            Vec2(200.0, 200.0), 90.0, "coarse", 1.0, Aggregation.AVG
        )
        assert answer is not None
        assert answer.age_s == pytest.approx(8.0)
        assert answer.degraded

    def test_snapshot_advances_with_the_beacon_schedule(self):
        plane = make_plane(sleep_period=3.0)
        plane.sim.run(until=1.0)
        first = plane.answer(
            Vec2(200.0, 200.0), 90.0, "coarse", 10.0, Aggregation.AVG
        )
        plane.sim.run(until=6.5)  # two more windows opened since
        second = plane.answer(
            Vec2(200.0, 200.0), 90.0, "coarse", 10.0, Aggregation.AVG
        )
        assert first.age_s == pytest.approx(1.0)
        assert second.age_s == pytest.approx(0.5)

    def test_observe_overlays_only_materialised_cells(self):
        plane = make_plane()
        node = plane.network.nodes[0]
        # nothing materialised yet: the overlay must not grow state
        plane.observe(node.node_id, node.position, 99.0, 0.0)
        assert all(not cells for cells in plane._cells)
        # materialise by answering, then overhear a fresher reading
        plane.answer(node.position, 90.0, "coarse", 10.0, Aggregation.MAX)
        plane.observe(node.node_id, node.position, 99.0, 0.0)
        answer = plane.answer(node.position, 90.0, "coarse", 10.0, Aggregation.MAX)
        assert answer.value == pytest.approx(99.0)


class TestErrorBounds:
    def exact_disk_value(self, plane, center, radius, aggregation):
        values = [
            node.field.value(node.position, 0.0)
            for node in plane.network.nodes
            if math.hypot(node.position.x - center.x, node.position.y - center.y)
            <= radius
        ]
        assert values, "test disk must contain nodes"
        if aggregation is Aggregation.AVG:
            return sum(values) / len(values)
        if aggregation is Aggregation.MIN:
            return min(values)
        if aggregation is Aggregation.MAX:
            return max(values)
        if aggregation is Aggregation.SUM:
            return sum(values)
        return len(values)

    @pytest.mark.parametrize(
        "aggregation",
        [
            Aggregation.AVG,
            Aggregation.MIN,
            Aggregation.MAX,
            Aggregation.SUM,
            Aggregation.COUNT,
        ],
    )
    @pytest.mark.parametrize("accuracy", ["coarse", "medium"])
    def test_bound_brackets_the_exact_answer(self, aggregation, accuracy):
        plane = make_plane()
        center, radius = Vec2(180.0, 220.0), 80.0
        answer = plane.answer(center, radius, accuracy, 10.0, aggregation)
        assert answer is not None
        exact = self.exact_disk_value(plane, center, radius, aggregation)
        assert abs(answer.value - exact) <= answer.error_bound + 1e-9

    def test_medium_never_looser_than_coarse(self):
        plane = make_plane()
        center, radius = Vec2(180.0, 220.0), 40.0
        coarse = plane.answer(center, radius, "coarse", 10.0, Aggregation.AVG)
        medium = plane.answer(center, radius, "medium", 10.0, Aggregation.AVG)
        assert medium.level >= coarse.level
        assert medium.error_bound <= coarse.error_bound + 1e-9

    def test_contributors_cover_the_disk(self):
        plane = make_plane()
        center, radius = Vec2(200.0, 200.0), 90.0
        answer = plane.answer(center, radius, "coarse", 10.0, Aggregation.AVG)
        in_disk = {
            node.node_id
            for node in plane.network.nodes
            if math.hypot(node.position.x - center.x, node.position.y - center.y)
            <= radius
        }
        assert in_disk <= set(answer.contributor_ids)


class TestSessions:
    def test_register_answer_release(self):
        plane = make_plane()
        key = (0, 1)
        plane.register_session(key, "coarse")
        assert plane.live_session_count() == 1
        plane.answer(
            Vec2(200.0, 200.0), 90.0, "coarse", 10.0, Aggregation.AVG,
            session_key=key,
        )
        assert plane._sessions[key].answers == 1
        assert plane._sessions[key].last_level == 0
        plane.release_session(key)
        plane.release_session(key)  # idempotent
        assert plane.live_session_count() == 0

    def test_exact_accuracy_rejected(self):
        plane = make_plane()
        with pytest.raises(ValueError, match="does not use the summary plane"):
            plane.register_session((0, 1), "exact")


class TestMergeAnswers:
    def test_merge_matches_single_world(self):
        """Splitting the cells across 'shards' must not move the answer."""
        plane = make_plane()
        center, radius = Vec2(200.0, 200.0), 90.0
        for aggregation in (Aggregation.AVG, Aggregation.SUM, Aggregation.MIN,
                            Aggregation.MAX, Aggregation.COUNT):
            whole = plane.answer(center, radius, "coarse", 10.0, aggregation)
            merged = merge_answers([whole], aggregation)
            assert merged.value == pytest.approx(whole.value)
            assert merged.error_bound == pytest.approx(whole.error_bound)
            assert merged.contributors == whole.contributors

    def test_merge_composes_disjoint_statistics(self):
        plane = make_plane()
        left = plane.answer(
            Vec2(100.0, 200.0), 60.0, "coarse", 10.0, Aggregation.COUNT
        )
        right = plane.answer(
            Vec2(300.0, 200.0), 60.0, "coarse", 10.0, Aggregation.COUNT
        )
        merged = merge_answers([left, right], Aggregation.COUNT)
        assert merged.count == left.count + right.count
        assert merged.minimum == min(left.minimum, right.minimum)
        assert merged.maximum == max(left.maximum, right.maximum)
        assert merged.cells == left.cells + right.cells
        assert merged.contributor_ids == frozenset()

    def test_merge_handles_empty_and_none(self):
        assert merge_answers([], Aggregation.AVG) is None
        assert merge_answers([None, None], Aggregation.AVG) is None

    def test_merge_propagates_degraded(self):
        plane = make_plane(sleep_period=9.0)
        plane.sim.run(until=8.0)
        stale = plane.answer(
            Vec2(200.0, 200.0), 90.0, "coarse", 1.0, Aggregation.AVG
        )
        assert stale.degraded
        merged = merge_answers([stale], Aggregation.AVG)
        assert merged.degraded
        assert merged.age_s == pytest.approx(stale.age_s)
