"""Golden determinism: the hot-path optimizations change speed, nothing else.

The hot-path overhauls (PR 2: cached static topology, per-node carrier
sense, kernel fast paths, inlined radio/energy transitions; PR 4: batched
per-frame receptions, the PSM wake-wheel) are only admissible because
simulation *results* are bit-identical to the pre-optimization code.  The
pins are split into two families with different rules:

* **Result fingerprints** (``GOLDEN_RESULTS``): frame counters and
  per-user success ratios — what the simulation computes.  Captured on the
  commit before the PR 2 overhaul and bit-identical ever since; only a
  deliberate *model* change (new protocol behaviour, different RNG layout)
  may re-pin them, in the same commit, saying so in the commit message.
* **Event-count fingerprints** (``GOLDEN_EVENT_COUNTS``): how many kernel
  events the run executes — an implementation property.  An optimization
  that repacks work into fewer events (batching, coalescing) legitimately
  changes these.  Re-pin procedure: verify every ``GOLDEN_RESULTS`` field
  still matches, run the two configs below, paste the new
  ``events_executed`` values with a comment-trail entry noting which PR
  changed the event structure and why, all in the same commit.

Comment trail for ``GOLDEN_EVENT_COUNTS``:

* PR 2-3: 24363 (single user) / 89806 (four users) — one end-of-airtime
  event per frame x listener era pins, with per-node PSM boundary chains.
* PR 4: 6309 / 22796 — the PSM wake-wheel cut ~73% of events (one event
  per distinct beacon window boundary instead of one per sleeper, and
  wake overrides no longer chain duplicate per-node boundary events —
  the old chains grew O(overrides^2)); folding the MAC's broadcast
  completion into the channel's end-of-airtime batch event removed one
  more event per broadcast frame.  Results verified bit-identical,
  including sleeper power draw.
"""

import pytest

from repro.experiments.config import MODE_JIT, ExperimentConfig, QueryParams
from repro.experiments.runner import run_experiment, run_replications
from repro.workload.arrivals import ARRIVAL_STAGGERED

#: captured at quick scale (120 s, Rq=60 m, seed 1) pre-PR-2-overhaul;
#: bit-identical through every perf PR since — the correctness gate.
GOLDEN_RESULTS = {
    "single_user": {
        "frames_sent": 1701,
        "frames_delivered": 26903,
        "frames_collided": 62,
        "success_ratios": (0.9666666666666667,),
    },
    "four_user": {
        "frames_sent": 6124,
        "frames_delivered": 102151,
        "frames_collided": 590,
        "success_ratios": (
            0.9666666666666667,
            0.9827586206896551,
            0.8947368421052632,
            0.9642857142857143,
        ),
    },
}

#: kernel events per run — re-pinned when the event structure changes
#: (see the module docstring for the procedure and the comment trail)
GOLDEN_EVENT_COUNTS = {
    "single_user": 6309,
    "four_user": 22796,
}


def _config(num_users: int) -> ExperimentConfig:
    base = ExperimentConfig(
        mode=MODE_JIT, seed=1, duration_s=120.0, query=QueryParams(radius_m=60.0)
    )
    if num_users == 1:
        return base
    return base.with_num_users(
        num_users, arrival_process=ARRIVAL_STAGGERED, arrival_spacing_s=2.5
    )


@pytest.mark.parametrize(
    "name,num_users", [("single_user", 1), ("four_user", 4)]
)
def test_run_matches_pre_optimization_golden(name, num_users):
    result = run_experiment(_config(num_users))
    expected = GOLDEN_RESULTS[name]
    assert result.frames_sent == expected["frames_sent"]
    assert result.frames_delivered == expected["frames_delivered"]
    assert result.frames_collided == expected["frames_collided"]
    # Exact float equality is intentional: the runs must be bit-identical,
    # not merely statistically close.
    assert tuple(result.user_success_ratios) == expected["success_ratios"]


@pytest.mark.parametrize(
    "name,num_users", [("single_user", 1), ("four_user", 4)]
)
def test_event_census_matches_pinned_structure(name, num_users):
    """The event-count pin: catches *accidental* event-structure drift.

    A legitimate batching/coalescing change re-pins GOLDEN_EVENT_COUNTS in
    its own commit (module docstring); anything else tripping this is an
    optimization quietly executing different work.
    """
    result = run_experiment(_config(num_users))
    assert result.events_executed == GOLDEN_EVENT_COUNTS[name]


def test_rerun_is_self_identical():
    """Two runs of one config agree exactly (no hidden global state in the
    neighbor caches, busy counters, wake wheel, or kernel fast paths)."""
    first = run_experiment(_config(4))
    second = run_experiment(_config(4))
    assert first.events_executed == second.events_executed
    assert first.frames_sent == second.frames_sent
    assert first.frames_delivered == second.frames_delivered
    assert first.frames_collided == second.frames_collided
    assert first.user_success_ratios == second.user_success_ratios


def _fingerprint(result):
    return (
        result.events_executed,
        result.frames_sent,
        result.frames_delivered,
        result.frames_collided,
        tuple(result.user_success_ratios),
        result.power.mean_sleeper_power_w,
    )


@pytest.mark.parametrize("num_users", [1, 4])
def test_empty_fault_plan_is_bit_identical(num_users):
    """RNG-stream hygiene: the fault plane rides a dedicated ``"faults"``
    stream, so merely importing the module, building the (empty) plan, and
    threading it through the runner must not move a single golden pin."""
    from repro.faults import FaultPlan

    plain = run_experiment(_config(num_users))
    with_empty_plan = run_experiment(_config(num_users), faults=FaultPlan())
    with_empty_dict_plan = run_experiment(
        _config(num_users), faults=FaultPlan.from_dict({})
    )
    assert _fingerprint(plain) == _fingerprint(with_empty_plan)
    assert _fingerprint(plain) == _fingerprint(with_empty_dict_plan)
    name = "single_user" if num_users == 1 else "four_user"
    expected = GOLDEN_RESULTS[name]
    assert plain.frames_sent == expected["frames_sent"]
    assert tuple(plain.user_success_ratios) == expected["success_ratios"]
    assert plain.events_executed == GOLDEN_EVENT_COUNTS[name]


def test_worker_kill_only_plan_leaves_the_world_identical():
    """A plan that only kills pool workers replays shards bit-identically;
    the simulated world (and thus every pin) is untouched by design."""
    from repro.faults import FaultPlan, WorkerKill

    plan = FaultPlan(worker_kills=(WorkerKill(shard=0),))
    assert plan.world_empty and not plan.empty
    result = run_experiment(_config(1), faults=plan)
    expected = GOLDEN_RESULTS["single_user"]
    assert result.frames_sent == expected["frames_sent"]
    assert tuple(result.user_success_ratios) == expected["success_ratios"]


def test_wire_only_plan_leaves_the_world_identical():
    """Wire chaos mangles HTTP, never physics: a wire-only fault plan is
    ``world_empty``, draws from its own dedicated ``"faults.wire"``
    stream, and must not move a single golden pin — and an all-zeros
    wire section is literally no plan at all."""
    from repro.faults import FaultPlan

    plan = FaultPlan.from_dict(
        {"wire": {"reset_prob": 0.5, "delay_prob": 0.5, "delay_s": 0.1,
                  "error_prob": 0.5, "truncate_prob": 0.5}}
    )
    assert plan.world_empty and not plan.empty
    assert FaultPlan.from_dict({"wire": {}}).empty
    result = run_experiment(_config(1), faults=plan)
    expected = GOLDEN_RESULTS["single_user"]
    assert result.frames_sent == expected["frames_sent"]
    assert tuple(result.user_success_ratios) == expected["success_ratios"]
    assert result.events_executed == GOLDEN_EVENT_COUNTS["single_user"]
    assert result.events_executed == GOLDEN_EVENT_COUNTS["single_user"]


def test_parallel_replications_match_serial_per_seed():
    """run_replications_parallel returns per-seed results identical to the
    serial path, in seed order (forced 2-worker pool, real processes)."""
    from repro.experiments.runner import run_replications_parallel

    config = _config(1)
    seeds = [1, 2]
    serial = run_replications(config, seeds)
    parallel = run_replications_parallel(config, seeds, max_workers=2)
    assert [r.config.seed for r in parallel] == seeds
    for ser, par in zip(serial, parallel):
        assert ser.events_executed == par.events_executed
        assert ser.frames_sent == par.frames_sent
        assert ser.frames_delivered == par.frames_delivered
        assert ser.frames_collided == par.frames_collided
        assert ser.user_success_ratios == par.user_success_ratios
        assert ser.power.mean_sleeper_power_w == par.power.mean_sleeper_power_w
        assert ser.backbone_size == par.backbone_size
