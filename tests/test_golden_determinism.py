"""Golden determinism: the hot-path optimizations change speed, nothing else.

The performance overhaul (cached static topology, per-node carrier-sense
bookkeeping, kernel fast paths, inlined radio/energy transitions) is only
admissible because simulation results are bit-identical to the
pre-optimization code.  These tests pin the exact event counts, frame
counters, and per-user success ratios of two canonical runs, captured on
the commit *before* the overhaul landed; any optimization that perturbs
event ordering, reception sets, or RNG consumption shows up here as a
changed constant, not as silent statistical drift.

If a deliberate *model* change (new protocol behaviour, different RNG
layout) alters these numbers, re-pin them in the same commit and say so in
the commit message — that is the one legitimate reason to touch them.
"""

import pytest

from repro.experiments.config import MODE_JIT, ExperimentConfig, QueryParams
from repro.experiments.runner import run_experiment, run_replications
from repro.workload.arrivals import ARRIVAL_STAGGERED

#: captured at quick scale (120 s, Rq=60 m, seed 1) pre-overhaul
GOLDEN = {
    "single_user": {
        "events_executed": 24363,
        "frames_sent": 1701,
        "frames_delivered": 26903,
        "frames_collided": 62,
        "success_ratios": (0.9666666666666667,),
    },
    "four_user": {
        "events_executed": 89806,
        "frames_sent": 6124,
        "frames_delivered": 102151,
        "frames_collided": 590,
        "success_ratios": (
            0.9666666666666667,
            0.9827586206896551,
            0.8947368421052632,
            0.9642857142857143,
        ),
    },
}


def _config(num_users: int) -> ExperimentConfig:
    base = ExperimentConfig(
        mode=MODE_JIT, seed=1, duration_s=120.0, query=QueryParams(radius_m=60.0)
    )
    if num_users == 1:
        return base
    return base.with_num_users(
        num_users, arrival_process=ARRIVAL_STAGGERED, arrival_spacing_s=2.5
    )


@pytest.mark.parametrize(
    "name,num_users", [("single_user", 1), ("four_user", 4)]
)
def test_run_matches_pre_optimization_golden(name, num_users):
    result = run_experiment(_config(num_users))
    expected = GOLDEN[name]
    assert result.events_executed == expected["events_executed"]
    assert result.frames_sent == expected["frames_sent"]
    assert result.frames_delivered == expected["frames_delivered"]
    assert result.frames_collided == expected["frames_collided"]
    # Exact float equality is intentional: the runs must be bit-identical,
    # not merely statistically close.
    assert tuple(result.user_success_ratios) == expected["success_ratios"]


def test_rerun_is_self_identical():
    """Two runs of one config agree exactly (no hidden global state in the
    neighbor caches, busy counters, or kernel fast paths)."""
    first = run_experiment(_config(4))
    second = run_experiment(_config(4))
    assert first.events_executed == second.events_executed
    assert first.frames_sent == second.frames_sent
    assert first.frames_delivered == second.frames_delivered
    assert first.frames_collided == second.frames_collided
    assert first.user_success_ratios == second.user_success_ratios


def test_parallel_replications_match_serial_per_seed():
    """run_replications_parallel returns per-seed results identical to the
    serial path, in seed order (forced 2-worker pool, real processes)."""
    from repro.experiments.runner import run_replications_parallel

    config = _config(1)
    seeds = [1, 2]
    serial = run_replications(config, seeds)
    parallel = run_replications_parallel(config, seeds, max_workers=2)
    assert [r.config.seed for r in parallel] == seeds
    for ser, par in zip(serial, parallel):
        assert ser.events_executed == par.events_executed
        assert ser.frames_sent == par.frames_sent
        assert ser.frames_delivered == par.frames_delivered
        assert ser.frames_collided == par.frames_collided
        assert ser.user_success_ratios == par.user_success_ratios
        assert ser.power.mean_sleeper_power_w == par.power.mean_sleeper_power_w
        assert ser.backbone_size == par.backbone_size
