"""Tests for piecewise paths and mobility models."""

import numpy as np
import pytest

from repro.geometry.shapes import Rect
from repro.geometry.vec import Vec2
from repro.mobility.models import (
    RandomDirectionConfig,
    patrol_path,
    random_direction_path,
)
from repro.mobility.path import PiecewisePath, Waypoint


class TestPiecewisePath:
    def test_needs_waypoints(self):
        with pytest.raises(ValueError):
            PiecewisePath([])

    def test_times_strictly_increasing(self):
        with pytest.raises(ValueError):
            PiecewisePath([Waypoint(0, Vec2(0, 0)), Waypoint(0, Vec2(1, 1))])

    def test_stationary(self):
        path = PiecewisePath.stationary(Vec2(5, 5))
        assert path.position_at(-10) == Vec2(5, 5)
        assert path.position_at(100) == Vec2(5, 5)
        assert path.velocity_at(50) == Vec2.zero()

    def test_interpolation(self):
        path = PiecewisePath([Waypoint(0, Vec2(0, 0)), Waypoint(10, Vec2(10, 20))])
        assert path.position_at(5).is_close(Vec2(5, 10))

    def test_clamped_outside_span(self):
        path = PiecewisePath([Waypoint(1, Vec2(0, 0)), Waypoint(2, Vec2(10, 0))])
        assert path.position_at(0) == Vec2(0, 0)
        assert path.position_at(3) == Vec2(10, 0)

    def test_velocity(self):
        path = PiecewisePath(
            [Waypoint(0, Vec2(0, 0)), Waypoint(10, Vec2(10, 0)), Waypoint(20, Vec2(10, 30))]
        )
        assert path.velocity_at(5).is_close(Vec2(1, 0))
        assert path.velocity_at(15).is_close(Vec2(0, 3))
        assert path.velocity_at(25) == Vec2.zero()

    def test_from_velocity(self):
        path = PiecewisePath.from_velocity(Vec2(0, 0), Vec2(2, 0), start_time=5, duration=10)
        assert path.position_at(10).is_close(Vec2(10, 0))
        assert path.end_time == 15

    def test_from_velocity_needs_positive_duration(self):
        with pytest.raises(ValueError):
            PiecewisePath.from_velocity(Vec2(0, 0), Vec2(1, 0), 0, 0)

    def test_from_segments(self):
        path = PiecewisePath.from_segments(
            Vec2(0, 0), 0.0, [(Vec2(1, 0), 10.0), (Vec2(0, 2), 5.0)]
        )
        assert path.position_at(10).is_close(Vec2(10, 0))
        assert path.position_at(15).is_close(Vec2(10, 10))

    def test_restricted(self):
        path = PiecewisePath(
            [Waypoint(0, Vec2(0, 0)), Waypoint(10, Vec2(10, 0)), Waypoint(20, Vec2(20, 10))]
        )
        sub = path.restricted(5, 15)
        assert sub.start_time == 5
        assert sub.end_time == 15
        assert sub.position_at(5).is_close(path.position_at(5))
        assert sub.position_at(10).is_close(path.position_at(10))
        assert sub.position_at(15).is_close(path.position_at(15))

    def test_restricted_empty_rejected(self):
        path = PiecewisePath.stationary(Vec2(0, 0))
        with pytest.raises(ValueError):
            path.restricted(5, 5)

    def test_change_times(self):
        path = PiecewisePath(
            [Waypoint(0, Vec2(0, 0)), Waypoint(10, Vec2(1, 0)), Waypoint(20, Vec2(2, 0))]
        )
        assert path.change_times() == [10]

    def test_total_distance(self):
        path = PiecewisePath(
            [Waypoint(0, Vec2(0, 0)), Waypoint(1, Vec2(3, 4)), Waypoint(2, Vec2(3, 4))]
        )
        assert path.total_distance() == pytest.approx(5.0)


class TestRandomDirectionModel:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomDirectionConfig(speed_range=(5.0, 3.0))
        with pytest.raises(ValueError):
            RandomDirectionConfig(change_interval_s=0.0)

    def test_path_stays_in_region(self):
        region = Rect.square(450.0)
        config = RandomDirectionConfig(speed_range=(3, 5), change_interval_s=50.0)
        rng = np.random.default_rng(11)
        path = random_direction_path(region, 400.0, config, rng)
        for t in np.linspace(0, 400, 200):
            assert region.contains(path.position_at(float(t)), tol=1e-6)

    def test_speed_within_range(self):
        region = Rect.square(450.0)
        config = RandomDirectionConfig(speed_range=(3, 5), change_interval_s=50.0)
        rng = np.random.default_rng(11)
        path = random_direction_path(region, 400.0, config, rng)
        for t in (10.0, 60.0, 120.0, 390.0):
            speed = path.velocity_at(t).norm()
            assert speed <= 5.0 + 1e-9
            # the centre-escape fallback may go below the minimum, but a
            # normal leg respects it
            assert speed > 0.0

    def test_changes_at_interval(self):
        region = Rect.square(1000.0)
        config = RandomDirectionConfig(speed_range=(3, 5), change_interval_s=50.0)
        rng = np.random.default_rng(2)
        path = random_direction_path(region, 200.0, config, rng)
        assert path.change_times() == [50.0, 100.0, 150.0]

    def test_reproducible(self):
        region = Rect.square(450.0)
        config = RandomDirectionConfig()
        a = random_direction_path(region, 100.0, config, np.random.default_rng(9))
        b = random_direction_path(region, 100.0, config, np.random.default_rng(9))
        assert a.position_at(77.0).is_close(b.position_at(77.0))

    def test_default_start_near_corner(self):
        region = Rect.square(450.0)
        config = RandomDirectionConfig(margin_m=20.0)
        path = random_direction_path(region, 50.0, config, np.random.default_rng(1))
        assert path.position_at(0.0).is_close(Vec2(20, 20))


class TestPatrolPath:
    def test_visits_waypoints_in_order(self):
        path = patrol_path([Vec2(0, 0), Vec2(100, 0), Vec2(100, 100)], speed=10.0)
        assert path.position_at(0).is_close(Vec2(0, 0))
        assert path.position_at(10).is_close(Vec2(100, 0))
        assert path.position_at(20).is_close(Vec2(100, 100))

    def test_loops(self):
        path = patrol_path([Vec2(0, 0), Vec2(10, 0)], speed=10.0, loops=2)
        # 0 ->10 ->0 ->10: total 3 hops of 1 s each
        assert path.end_time == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            patrol_path([Vec2(0, 0)], speed=1.0)
        with pytest.raises(ValueError):
            patrol_path([Vec2(0, 0), Vec2(1, 0)], speed=0.0)
