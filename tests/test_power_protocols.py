"""Tests for backbone-selection protocols: CCP, SPAN, GAF, repair."""

import pytest

from repro.geometry.shapes import Rect
from repro.net.network import NetworkConfig, build_network
from repro.power.base import repair_connectivity
from repro.power.ccp import CcpConfig, CcpProtocol
from repro.power.coverage import covered_fraction, sample_points
from repro.power.gaf import AlwaysOnProtocol, GafProtocol
from repro.power.span import SpanProtocol
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams

from .conftest import line_positions, make_network


def paper_network(seed=1, n=200):
    sim = Simulator()
    config = NetworkConfig(n_nodes=n)
    return build_network(sim, config, RandomStreams(seed)), RandomStreams(seed)


class TestCcp:
    def test_preserves_coverage(self):
        network, streams = paper_network(seed=1)
        active = CcpProtocol().select_active(network, streams.stream("p"))
        assert covered_fraction(network, active, step_m=10.0) == pytest.approx(1.0)

    def test_substantially_reduces_active_set(self):
        network, streams = paper_network(seed=2)
        active = CcpProtocol().select_active(network, streams.stream("p"))
        assert len(active) < 0.5 * len(network.nodes)

    def test_backbone_connected_when_rc_geq_2rs(self):
        # Paper parameters: Rc=105 >= 2*Rs=100, so coverage => connectivity.
        network, streams = paper_network(seed=3)
        active = CcpProtocol(CcpConfig(repair_connectivity=False)).select_active(
            network, streams.stream("p")
        )
        network.apply_backbone(active)
        assert network.is_backbone_connected()

    def test_isolated_node_stays_active(self, sim):
        # Two nodes far apart: nobody can cover anybody.
        network = make_network(sim, line_positions(2, 500.0))
        active = CcpProtocol(CcpConfig(repair_connectivity=False)).select_active(
            network, RandomStreams(1).stream("p")
        )
        assert active == {0, 1}

    def test_redundant_center_thins_out(self, sim):
        # A cross: the centre node's disk is covered by the four ring nodes
        # (every boundary direction has a nearby neighbour), so CCP may put
        # the centre to sleep.  Ring nodes stay: their outward boundary is
        # theirs alone.
        from repro.geometry.vec import Vec2

        positions = [
            Vec2(500, 500),
            Vec2(501, 500),
            Vec2(499, 500),
            Vec2(500, 501),
            Vec2(500, 499),
        ]
        network = make_network(sim, positions)
        active = CcpProtocol().select_active(network, RandomStreams(1).stream("p"))
        assert 0 not in active
        assert active == {1, 2, 3, 4}

    def test_collinear_stack_cannot_thin(self, sim):
        # Collinear near-coincident nodes: the perpendicular boundary points
        # are covered by nobody else, so exact coverage keeps all active.
        network = make_network(sim, line_positions(3, 0.5, x0=500.0, y=500.0))
        active = CcpProtocol().select_active(network, RandomStreams(1).stream("p"))
        assert active == {0, 1, 2}

    def test_coverage_degree_two_keeps_more(self):
        network1, streams1 = paper_network(seed=4)
        network2, streams2 = paper_network(seed=4)
        k1 = CcpProtocol(CcpConfig(coverage_degree=1)).select_active(
            network1, streams1.stream("p")
        )
        k2 = CcpProtocol(CcpConfig(coverage_degree=2)).select_active(
            network2, streams2.stream("p")
        )
        assert len(k2) > len(k1)

    def test_deterministic_given_rng(self):
        network1, streams1 = paper_network(seed=5)
        network2, streams2 = paper_network(seed=5)
        a = CcpProtocol().select_active(network1, streams1.stream("p"))
        b = CcpProtocol().select_active(network2, streams2.stream("p"))
        assert a == b


class TestSpan:
    def test_backbone_connected(self):
        network, streams = paper_network(seed=1)
        active = SpanProtocol().select_active(network, streams.stream("p"))
        network.apply_backbone(active)
        assert network.is_backbone_connected()

    def test_reduces_active_set(self):
        network, streams = paper_network(seed=2)
        active = SpanProtocol().select_active(network, streams.stream("p"))
        assert len(active) < len(network.nodes)

    def test_neighbors_of_sleepers_stay_reachable(self):
        """Every pair of neighbours of a sleeping node must have a short
        coordinator path — SPAN's defining invariant, checked globally via
        2-hop reachability over coordinators."""
        network, streams = paper_network(seed=3, n=80)
        active = SpanProtocol().select_active(network, streams.stream("p"))
        network.apply_backbone(active)
        # check: each sleeper has at least one active neighbour (weaker but
        # necessary condition for its traffic to be carried)
        for node in network.sleeper_nodes:
            if node.neighbors:
                assert any(nb.is_active for nb in node.neighbors)


class TestGaf:
    def test_one_leader_per_cell(self):
        network, streams = paper_network(seed=1)
        protocol = GafProtocol(repair=False)
        active = protocol.select_active(network, streams.stream("p"))
        side = protocol.cell_side(network)
        cells = {}
        for node_id in active:
            node = network.node_by_id(node_id)
            cell = (int(node.position.x // side), int(node.position.y // side))
            assert cell not in cells, "two leaders in one GAF cell"
            cells[cell] = node_id

    def test_cell_side_formula(self):
        network, _ = paper_network(seed=1)
        side = GafProtocol().cell_side(network)
        assert side == pytest.approx(105.0 / 5**0.5)

    def test_always_on_selects_everyone(self):
        network, streams = paper_network(seed=1, n=30)
        active = AlwaysOnProtocol().select_active(network, streams.stream("p"))
        assert active == {n.node_id for n in network.nodes}


class TestRepairConnectivity:
    def test_bridges_disconnected_islands(self, sim):
        # active: 0 and 4 far apart; sleeper 2 in the middle can bridge.
        network = make_network(sim, line_positions(5, 52.0), comm_range=105.0)
        active = {0, 4}
        repaired = repair_connectivity(network, active)
        network.apply_backbone(repaired)
        assert network.is_backbone_connected()

    def test_noop_when_connected(self, sim):
        network = make_network(sim, line_positions(3, 50.0))
        active = {0, 1, 2}
        assert repair_connectivity(network, set(active)) == active

    def test_gives_up_when_impossible(self, sim):
        network = make_network(sim, line_positions(2, 900.0), comm_range=50.0)
        active = {0, 1}
        repaired = repair_connectivity(network, active)
        assert repaired == {0, 1}  # nothing bridges a 900 m gap


class TestCoverageUtils:
    def test_sample_points_cover_region(self):
        network, _ = paper_network(seed=1, n=10)
        points = sample_points(network, step_m=45.0)
        assert len(points) == 100  # (450/45)^2

    def test_covered_fraction_empty_set(self):
        network, _ = paper_network(seed=1, n=50)
        assert covered_fraction(network, set()) == 0.0

    def test_covered_fraction_full_set(self):
        network, _ = paper_network(seed=1, n=50)
        all_ids = {n.node_id for n in network.nodes}
        assert covered_fraction(network, all_ids) == pytest.approx(1.0)
