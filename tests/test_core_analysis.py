"""Tests for the Section 5 closed-form analysis.

The most valuable assertions here reproduce the paper's own worked
examples: vprfh ≈ 469 mph (Section 5.2), PLjit = 4 vs PLgp = 58 (the
"storage cost 14.5x higher" example), v* ≈ 131 mph and the 4-vs-35
interfering-trees example (Section 5.4).
"""

import math

import pytest

from repro.core.analysis import (
    AnalysisParams,
    contention_crossover_speed,
    interference_length_greedy,
    interference_length_jit,
    jit_forward_time,
    jit_storage_wins_lifetime,
    mps_to_paper_mph,
    prefetch_length_greedy,
    prefetch_length_jit,
    prefetch_speed_mps,
    spatial_interference_bound,
    temporal_interference_greedy,
    temporal_interference_jit,
    tree_setup_bound,
    warmup_free_advance_time,
    warmup_interval_s,
    warmup_periods,
)


def storage_example_params():
    """Section 5.2: walking user 4 m/s, Tp=10 s, Tfresh=5 s, Tsleep=15 s."""
    return AnalysisParams(
        t_period_s=10.0,
        t_fresh_s=5.0,
        t_sleep_s=15.0,
        v_user_mps=4.0,
        v_prefetch_mps=prefetch_speed_mps(100.0, 5, 60, 5000.0),
    )


class TestForwardingTime:
    def test_eq10(self):
        params = AnalysisParams(2.0, 1.0, 15.0, 4.0, 200.0)
        # tsend(k-1) <= (k-1)*Tp - Tsleep - 2*Tfresh
        assert jit_forward_time(10, params) == pytest.approx(10 * 2 - 15 - 2)

    def test_negative_early_in_session(self):
        params = AnalysisParams(2.0, 1.0, 15.0, 4.0, 200.0)
        assert jit_forward_time(0, params) < 0  # warmup: must catch up

    def test_tree_setup_bound(self):
        params = AnalysisParams(2.0, 1.0, 15.0, 4.0, 200.0)
        assert tree_setup_bound(params) == pytest.approx(16.0)


class TestPrefetchSpeed:
    def test_paper_469_mph_example(self):
        """Section 5.2: 100 m, 5 hops, 60 B at 5 kb/s -> ~469 mph."""
        v = prefetch_speed_mps(100.0, 5, 60, 5000.0)
        assert mps_to_paper_mph(v) == pytest.approx(468.75, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            prefetch_speed_mps(0.0, 5, 60, 5000.0)
        with pytest.raises(ValueError):
            prefetch_speed_mps(100.0, 5, 60, 0.0)


class TestStorageCost:
    def test_paper_pljit_4(self):
        """Section 5.2 example: 4 trees ahead under JIT."""
        assert prefetch_length_jit(storage_example_params()) == 4

    def test_paper_plgp_58(self):
        """Section 5.2 example: up to 58 trees under greedy over 600 s.

        The paper's eq. (11) with its two separate floors evaluates to 59;
        the prose quotes 58 (a single floor over the difference).  We
        implement the printed formula and accept the 1-tree discrepancy.
        """
        assert prefetch_length_greedy(600.0, storage_example_params()) in (58, 59)

    def test_paper_ratio_14_5(self):
        params = storage_example_params()
        ratio = prefetch_length_greedy(600.0, params) / prefetch_length_jit(params)
        assert ratio == pytest.approx(14.5, abs=0.3)

    def test_greedy_grows_with_lifetime(self):
        params = storage_example_params()
        assert prefetch_length_greedy(1200.0, params) > prefetch_length_greedy(
            600.0, params
        )

    def test_jit_constant_in_lifetime(self):
        params = storage_example_params()
        assert prefetch_length_jit(params) == prefetch_length_jit(params)

    def test_eq13_threshold(self):
        params = storage_example_params()
        threshold = jit_storage_wins_lifetime(params)
        expected = (15 + 2 * 5 + 10) / (1 - params.speed_ratio)
        assert threshold == pytest.approx(expected)
        # beyond the threshold greedy stores strictly more
        beyond = threshold * 2
        assert prefetch_length_greedy(beyond, params) > prefetch_length_jit(params)

    def test_eq13_infinite_when_user_outruns_prefetch(self):
        params = AnalysisParams(2.0, 1.0, 9.0, 100.0, 50.0)
        assert jit_storage_wins_lifetime(params) == math.inf


class TestWarmup:
    def _params(self, t_sleep=9.0):
        return AnalysisParams(2.0, 1.0, t_sleep, 4.0, 200.0)

    def test_eq16_at_zero_advance(self):
        params = self._params()
        # ~ (Tsleep + 2 Tfresh) / Tperiod periods
        k = warmup_periods(0.0, params)
        assert 5 <= k <= 7

    def test_warmup_shrinks_with_advance_time(self):
        params = self._params()
        assert warmup_periods(6.0, params) < warmup_periods(-6.0, params)

    def test_warmup_zero_when_early_enough(self):
        params = self._params()
        ta_star = warmup_free_advance_time(params)
        assert warmup_periods(ta_star + 0.1, params) == 0

    def test_warmup_free_threshold_formula(self):
        params = self._params()
        expected = (2 * 1.0 + 9.0) / (1 - params.speed_ratio)
        assert warmup_free_advance_time(params) == pytest.approx(expected)

    def test_interval_is_periods_times_tp(self):
        params = self._params()
        assert warmup_interval_s(0.0, params) == pytest.approx(
            warmup_periods(0.0, params) * 2.0
        )

    def test_approximation_tsleep_plus_2fresh_minus_ta(self):
        """Section 5.3: Tw ~ Tsleep + 2 Tfresh - Ta when vprfh >> vuser."""
        params = AnalysisParams(2.0, 1.0, 15.0, 4.0, 1e9)
        for ta in (-8.0, 0.0, 8.0):
            approx = 15.0 + 2.0 - ta
            assert warmup_interval_s(ta, params) == pytest.approx(approx, abs=2.0)


class TestContention:
    def example_params(self):
        """Section 5.4 second example: 4 m/s walker, Tp=5 s."""
        return AnalysisParams(
            t_period_s=5.0,
            t_fresh_s=3.0,
            t_sleep_s=9.0,
            v_user_mps=4.0,
            v_prefetch_mps=prefetch_speed_mps(100.0, 5, 60, 5000.0),
        )

    def test_paper_vstar_131_mph(self):
        """Section 5.4: Rc=50, Rq=150, Tsleep=9, Tfresh=3 -> v* ~ 131 mph."""
        v_star = contention_crossover_speed(150.0, 50.0, 9.0, 3.0)
        assert mps_to_paper_mph(v_star) == pytest.approx(131.25, rel=0.01)

    def test_paper_35_interfering_trees_greedy(self):
        """Section 5.4: about 35 interfering trees under greedy."""
        params = self.example_params()
        assert interference_length_greedy(150.0, 50.0, params) == 35

    def test_paper_about_4_interfering_trees_jit(self):
        """Section 5.4: about 4 under JIT (we compute ceil(Ttree/Tp) = 3;
        the paper quotes 'about 4', i.e. our bound plus the tree itself)."""
        params = self.example_params()
        assert temporal_interference_jit(params) in (3, 4)
        assert interference_length_jit(150.0, 50.0, params) <= 4

    def test_jit_never_worse_than_greedy(self):
        params = self.example_params()
        assert interference_length_jit(150.0, 50.0, params) <= interference_length_greedy(
            150.0, 50.0, params
        )

    def test_fast_user_converges_to_spatial_bound(self):
        """Above v* both schemes hit the Ms spatial cap."""
        v_star = contention_crossover_speed(150.0, 50.0, 9.0, 3.0)
        params = AnalysisParams(5.0, 3.0, 9.0, v_star * 1.5, v_star * 10)
        ms = spatial_interference_bound(150.0, 50.0, params)
        assert interference_length_jit(150.0, 50.0, params) == ms
        assert interference_length_greedy(150.0, 50.0, params) == ms

    def test_spatial_bound_eq17(self):
        params = AnalysisParams(5.0, 3.0, 9.0, 4.0, 200.0)
        expected = math.ceil((4 * 150 + 2 * 50) / (4.0 * 5.0))
        assert spatial_interference_bound(150.0, 50.0, params) == expected

    def test_temporal_greedy_eq18(self):
        params = self.example_params()
        expected = math.ceil((9 + 3) * params.v_prefetch_mps / (5 * 4.0))
        assert temporal_interference_greedy(params) == expected


class TestValidation:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            AnalysisParams(0.0, 1.0, 9.0, 4.0, 200.0)
        with pytest.raises(ValueError):
            AnalysisParams(2.0, 1.0, 9.0, -1.0, 200.0)
        with pytest.raises(ValueError):
            AnalysisParams(2.0, 1.0, 9.0, 4.0, 0.0)

    def test_warmup_requires_feasible_speeds(self):
        params = AnalysisParams(2.0, 1.0, 9.0, 10.0, 5.0)
        with pytest.raises(ValueError):
            warmup_periods(0.0, params)
