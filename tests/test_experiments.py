"""Tests for the experiment harness: configs and short end-to-end runs."""

import pytest

from repro.experiments.config import (
    MODE_GREEDY,
    MODE_IDLE,
    MODE_JIT,
    MODE_NP,
    ExperimentConfig,
    paper_section62_config,
    paper_section63_config,
)
from repro.experiments.runner import (
    mean_success_ratio,
    run_experiment,
    run_replications,
)


class TestConfig:
    def test_defaults_match_paper(self):
        config = ExperimentConfig()
        assert config.network.n_nodes == 200
        assert config.query.radius_m == 150.0
        assert config.query.period_s == 2.0
        assert config.query.freshness_s == 1.0

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(mode="bogus")

    def test_profile_mode_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(profile_mode="bogus")

    def test_sweep_helpers(self):
        config = ExperimentConfig()
        assert config.with_sleep_period(15.0).network.sleep_period_s == 15.0
        assert config.with_speed_range((6.0, 10.0)).mobility.speed_range == (6.0, 10.0)
        assert config.with_change_interval(42.0).mobility.change_interval_s == 42.0
        assert config.with_mode(MODE_NP).mode == MODE_NP
        assert config.with_seed(9).seed == 9

    def test_advance_time_helper_sets_planner(self):
        config = ExperimentConfig().with_advance_time(6.0)
        assert config.profile_mode == "planner"
        assert config.advance_time_s == 6.0

    def test_gps_error_helper_sets_predictor(self):
        config = ExperimentConfig().with_gps_error(10.0)
        assert config.profile_mode == "predictor"
        assert config.gps_error_m == 10.0

    def test_section62_preset(self):
        config = paper_section62_config(mode=MODE_GREEDY, sleep_period_s=15.0)
        assert config.mode == MODE_GREEDY
        assert config.network.sleep_period_s == 15.0
        assert config.mobility.change_interval_s == 50.0
        assert config.duration_s == 400.0

    def test_section63_preset_planner(self):
        config = paper_section63_config(advance_time_s=6.0)
        assert config.profile_mode == "planner"
        assert config.mobility.change_interval_s == 70.0

    def test_section63_preset_predictor(self):
        config = paper_section63_config(gps_error_m=10.0)
        assert config.profile_mode == "predictor"


QUICK = dict(seed=5, duration_s=40.0)


class TestShortRuns:
    def test_jit_run_produces_metrics(self):
        result = run_experiment(ExperimentConfig(mode=MODE_JIT, **QUICK))
        assert result.metrics is not None
        assert result.metrics.num_periods == 20
        assert result.backbone_size > 0
        assert result.frames_sent > 0

    def test_jit_beats_np(self):
        jit = run_experiment(ExperimentConfig(mode=MODE_JIT, **QUICK))
        np_ = run_experiment(ExperimentConfig(mode=MODE_NP, **QUICK))
        assert jit.metrics.mean_fidelity() > np_.metrics.mean_fidelity()
        assert jit.success_ratio >= np_.success_ratio

    def test_greedy_stores_more_than_jit(self):
        jit = run_experiment(ExperimentConfig(mode=MODE_JIT, **QUICK))
        greedy = run_experiment(ExperimentConfig(mode=MODE_GREEDY, **QUICK))
        assert greedy.max_prefetch_length > jit.max_prefetch_length

    def test_idle_run_has_no_metrics(self):
        result = run_experiment(ExperimentConfig(mode=MODE_IDLE, **QUICK))
        assert result.metrics is None
        assert result.success_ratio == 0.0
        assert result.power.mean_sleeper_power_w > 0.1

    def test_reproducible_given_seed(self):
        a = run_experiment(ExperimentConfig(mode=MODE_JIT, **QUICK))
        b = run_experiment(ExperimentConfig(mode=MODE_JIT, **QUICK))
        assert a.metrics.fidelity_series() == b.metrics.fidelity_series()
        assert a.frames_sent == b.frames_sent

    def test_different_seeds_differ(self):
        a = run_experiment(ExperimentConfig(mode=MODE_JIT, seed=5, duration_s=40.0))
        b = run_experiment(ExperimentConfig(mode=MODE_JIT, seed=6, duration_s=40.0))
        assert a.frames_sent != b.frames_sent

    def test_run_replications(self):
        results = run_replications(
            ExperimentConfig(mode=MODE_JIT, duration_s=30.0), seeds=[1, 2]
        )
        assert len(results) == 2
        assert results[0].config.seed == 1
        assert 0.0 <= mean_success_ratio(results) <= 1.0

    def test_mean_success_ratio_empty(self):
        assert mean_success_ratio([]) == 0.0
