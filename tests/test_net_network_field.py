"""Unit tests for network construction and the synthetic sensor fields."""

import pytest

from repro.geometry.shapes import Circle, Rect
from repro.geometry.vec import Vec2
from repro.net.field import (
    GradientField,
    Hotspot,
    HotspotField,
    UniformField,
    fire_scenario_field,
)
from repro.net.network import NetworkConfig, build_network, uniform_positions
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams

from .conftest import line_positions, make_network


class TestNetworkConfig:
    def test_paper_defaults(self):
        config = NetworkConfig()
        assert config.n_nodes == 200
        assert config.region.width == pytest.approx(450.0)
        assert config.comm_range_m == pytest.approx(105.0)
        assert config.sensing_range_m == pytest.approx(50.0)
        assert config.bitrate_bps == pytest.approx(2e6)
        assert config.active_window_s == pytest.approx(0.1)

    def test_with_sleep_period(self):
        config = NetworkConfig().with_sleep_period(15.0)
        assert config.sleep_period_s == 15.0
        assert config.psm.beacon_interval_s == 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(n_nodes=0)
        with pytest.raises(ValueError):
            NetworkConfig(comm_range_m=-1.0)


class TestBuildNetwork:
    def test_uniform_positions_inside_region(self):
        config = NetworkConfig(n_nodes=50)
        positions = uniform_positions(config, RandomStreams(1))
        assert len(positions) == 50
        assert all(config.region.contains(p) for p in positions)

    def test_uniform_positions_reproducible(self):
        config = NetworkConfig(n_nodes=10)
        a = uniform_positions(config, RandomStreams(3))
        b = uniform_positions(config, RandomStreams(3))
        assert a == b

    def test_position_count_mismatch_rejected(self, sim):
        config = NetworkConfig(n_nodes=5)
        with pytest.raises(ValueError):
            build_network(sim, config, RandomStreams(1), positions=[Vec2(0, 0)])

    def test_neighbors_match_brute_force(self, sim):
        config = NetworkConfig(n_nodes=60, region=Rect.square(300.0))
        network = build_network(sim, config, RandomStreams(7))
        rc = config.comm_range_m
        for node in network.nodes[:20]:
            expected = {
                other.node_id
                for other in network.nodes
                if other is not node
                and other.position.distance_to(node.position) <= rc + 1e-9
            }
            assert {n.node_id for n in node.neighbors} == expected

    def test_nodes_in_disk_and_area(self, sim):
        network = make_network(sim, line_positions(5, 50.0))
        found = network.nodes_in_disk(Vec2(0, 0), 120.0)
        assert sorted(n.node_id for n in found) == [0, 1, 2]
        found_area = network.nodes_in_area(Circle(Vec2(0, 0), 120.0))
        assert sorted(n.node_id for n in found_area) == [0, 1, 2]

    def test_node_by_id(self, sim):
        network = make_network(sim, line_positions(3, 50.0))
        assert network.node_by_id(2).position == Vec2(100, 0)


class TestBackbone:
    def test_apply_backbone_sets_roles(self, sim):
        network = make_network(sim, line_positions(4, 50.0))
        network.apply_backbone([0, 2])
        assert [n.is_active for n in network.nodes] == [True, False, True, False]
        assert len(network.active_nodes) == 2
        assert len(network.sleeper_nodes) == 2

    def test_apply_backbone_twice_rejected(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        network.apply_backbone([0])
        with pytest.raises(RuntimeError):
            network.apply_backbone([1])

    def test_active_neighbors_populated(self, sim):
        network = make_network(sim, line_positions(4, 50.0))
        network.apply_backbone([0, 2])
        node1 = network.node_by_id(1)
        assert {n.node_id for n in node1.active_neighbors} == {0, 2}

    def test_nearest_active_node(self, sim):
        network = make_network(sim, line_positions(4, 50.0))
        network.apply_backbone([0, 3])
        assert network.nearest_active_node(Vec2(140, 0)).node_id == 3

    def test_nearest_active_without_backbone_raises(self, sim):
        network = make_network(sim, line_positions(2, 50.0))
        network.apply_backbone([])
        with pytest.raises(ValueError):
            network.nearest_active_node(Vec2(0, 0))

    def test_backbone_connectivity_check(self, sim):
        network = make_network(sim, line_positions(4, 100.0))
        network.apply_backbone([0, 1, 3])  # 3 is isolated (200 m gap to 1)
        assert not network.is_backbone_connected()

    def test_connected_backbone(self, sim):
        network = make_network(sim, line_positions(4, 100.0))
        network.apply_backbone([0, 1, 2, 3])
        assert network.is_backbone_connected()


class TestFields:
    def test_uniform(self):
        field = UniformField(level=37.5)
        assert field.value(Vec2(1, 2), 10.0) == 37.5

    def test_gradient(self):
        field = GradientField(base=10.0, slope_x=1.0, slope_y=2.0)
        assert field.value(Vec2(3, 4), 0.0) == pytest.approx(10 + 3 + 8)

    def test_hotspot_peak_at_center(self):
        spot = Hotspot(center=Vec2(0, 0), amplitude=100.0, sigma=10.0)
        assert spot.value(Vec2(0, 0), 0.0) == pytest.approx(100.0)
        assert spot.value(Vec2(30, 0), 0.0) < 2.0

    def test_hotspot_drift(self):
        spot = Hotspot(center=Vec2(0, 0), amplitude=100.0, sigma=10.0, drift=Vec2(1, 0))
        assert spot.value(Vec2(10, 0), 10.0) == pytest.approx(100.0)

    def test_hotspot_growth(self):
        spot = Hotspot(center=Vec2(0, 0), amplitude=100.0, sigma=10.0, growth_per_s=0.01)
        assert spot.value(Vec2(0, 0), 100.0) == pytest.approx(200.0)

    def test_hotspot_field_sums(self):
        field = HotspotField(
            base=20.0,
            hotspots=(
                Hotspot(center=Vec2(0, 0), amplitude=50.0, sigma=5.0),
                Hotspot(center=Vec2(0, 0), amplitude=30.0, sigma=5.0),
            ),
        )
        assert field.value(Vec2(0, 0), 0.0) == pytest.approx(100.0)

    def test_fire_scenario_warmer_near_front(self):
        field = fire_scenario_field(450.0)
        near_front = field.value(Vec2(340, 315), 0.0)
        far_corner = field.value(Vec2(30, 30), 0.0)
        assert near_front > far_corner

    def test_node_reads_field_with_noise(self, sim):
        from repro.net.node import SensorNode

        network = make_network(sim, line_positions(1, 0.0))
        node = network.nodes[0]
        node.field = UniformField(level=25.0)
        assert node.read_sensor() == pytest.approx(25.0)
        node.sensor_noise_std = 1.0
        readings = {node.read_sensor() for _ in range(5)}
        assert len(readings) > 1  # noise actually applied
