"""Protocol integration tests: MobiQuery on small deterministic networks."""

import pytest

from repro.core.gateway import MobiQueryGateway
from repro.core.query import Aggregation, QuerySpec
from repro.core.service import MobiQueryConfig, MobiQueryProtocol
from repro.geometry.vec import Vec2
from repro.mobility.path import PiecewisePath
from repro.mobility.planner import FullKnowledgeProvider
from repro.net.field import UniformField
from repro.net.node import MobileEndpoint
from repro.net.routing import GeoRouter
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

from .conftest import make_network


def grid_positions(nx, ny, spacing, origin=0.0):
    return [
        Vec2(origin + i * spacing, origin + j * spacing)
        for j in range(ny)
        for i in range(nx)
    ]


class Stack:
    """A full MobiQuery stack over a deterministic grid network."""

    def __init__(
        self,
        sim,
        policy="jit",
        sleep_period=6.0,
        psm_offset=2.0,
        duration=30.0,
        period=2.0,
        freshness=1.0,
        radius=100.0,
        user_path=None,
        backbone=None,
        tracer=None,
        provider=None,
    ):
        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer()
        positions = grid_positions(6, 6, 42.0)  # 36 nodes over 210 m square
        self.network = make_network(
            sim,
            positions,
            comm_range=105.0,
            sleep_period=sleep_period,
            psm_offset=psm_offset,
            region_side=250.0,
            tracer=self.tracer,
        )
        for node in self.network.nodes:
            node.field = UniformField(level=20.0)
        if backbone is None:
            # checkerboard backbone: connected, half the nodes
            backbone = [n.node_id for n in self.network.nodes if n.node_id % 2 == 0]
        self.network.apply_backbone(backbone)
        self.geo = GeoRouter(self.network, self.tracer)
        self.spec = QuerySpec(
            aggregation=Aggregation.AVG,
            radius_m=radius,
            period_s=period,
            freshness_s=freshness,
            lifetime_s=duration,
        )
        self.protocol = MobiQueryProtocol(
            self.network,
            self.geo,
            MobiQueryConfig(prefetch_policy=policy),
            self.tracer,
        )
        if user_path is None:
            user_path = PiecewisePath.stationary(Vec2(105, 105))
        self.path = user_path
        self.proxy = MobileEndpoint(
            node_id=50_000,
            sim=sim,
            channel=self.network.channel,
            rng=RandomStreams(77).stream("proxy"),
            position_fn=user_path.position_at,
            tracer=self.tracer,
        )
        self.network.channel.register_mobile(self.proxy)
        self.gateway = MobiQueryGateway(
            self.proxy,
            self.network,
            self.spec,
            self.protocol,
            provider or FullKnowledgeProvider(user_path, duration),
            self.tracer,
        )
        self.gateway.start()
        self.duration = duration

    def run(self, until=None):
        self.sim.run(until=self.duration + 0.5 if until is None else until)


class TestEndToEndDelivery:
    def test_results_delivered_every_period(self, sim):
        stack = Stack(sim)
        stack.run()
        delivered_ks = {d.k for d in stack.gateway.deliveries}
        assert delivered_ks == set(range(1, 16))

    def test_results_on_time(self, sim):
        stack = Stack(sim)
        stack.run()
        for d in stack.gateway.deliveries:
            assert d.time <= stack.spec.deadline(d.k) + 1e-9

    def test_contributors_only_from_query_area(self, sim):
        """Spatial constraint: contributors lie within Rq of the pickup."""
        stack = Stack(sim)
        stack.run()
        for d in stack.gateway.deliveries:
            area_ids = {
                n.node_id
                for n in stack.network.nodes_in_disk(Vec2(105, 105), stack.spec.radius_m)
            }
            assert set(d.contributors) <= area_ids

    def test_aggregate_value_matches_field(self, sim):
        """With a uniform field every AVG must equal the field level."""
        stack = Stack(sim)
        stack.run()
        assert stack.gateway.deliveries
        for d in stack.gateway.deliveries:
            assert d.value == pytest.approx(20.0)

    def test_sleepers_contribute_after_warmup(self, sim):
        stack = Stack(sim)
        stack.run()
        late = [d for d in stack.gateway.deliveries if d.k >= 8]
        assert late
        sleeper_ids = {n.node_id for n in stack.network.sleeper_nodes}
        for d in late:
            assert set(d.contributors) & sleeper_ids, "no sleeping node contributed"

    def test_full_fidelity_after_warmup(self, sim):
        stack = Stack(sim)
        stack.run()
        area_ids = {
            n.node_id
            for n in stack.network.nodes_in_disk(Vec2(105, 105), stack.spec.radius_m)
        }
        late = [d for d in stack.gateway.deliveries if d.k >= 10]
        best = max(len(set(d.contributors) & area_ids) / len(area_ids) for d in late)
        assert best >= 0.9


class TestFreshness:
    def test_readings_taken_within_freshness_window(self, sim):
        """Leaf wake overrides sit exactly at deadline - Tfresh."""
        stack = Stack(sim)
        read_times = []
        for node in stack.network.nodes:
            original = node.read_sensor

            def probe(node=node, original=original):
                read_times.append((stack.sim.now, node.node_id))
                return original()

            node.read_sensor = probe
        stack.run()
        assert read_times
        for t, _ in read_times:
            k = round(t / stack.spec.period_s + 0.5)
            deadline = k * stack.spec.period_s
            assert deadline - stack.spec.freshness_s - 1e-6 <= t <= deadline


class TestPrefetchTiming:
    def test_jit_holds_prefetch_until_bound(self, sim):
        tracer = Tracer(keep=["collector-assigned"])
        stack = Stack(sim, policy="jit", tracer=tracer)
        stack.run()
        bound_slack = 1.0  # transit + anycast delivery
        for record in tracer.records("collector-assigned"):
            k = record["k"]
            jit_time = stack.protocol.jit_forward_time(stack.spec, k)
            # assigned no earlier than the (k-1) send bound (or at t~0 catch-up)
            assert record.time >= max(0.0, jit_time) - bound_slack

    def test_greedy_assigns_all_collectors_early(self, sim):
        tracer = Tracer(keep=["collector-assigned"])
        stack = Stack(sim, policy="greedy", tracer=tracer)
        stack.run(until=5.0)
        ks = {r["k"] for r in tracer.records("collector-assigned")}
        # all 15 future pickup points claimed within the first seconds
        assert len(ks) >= 14

    def test_jit_limits_concurrent_trees(self, sim):
        stack = Stack(sim, policy="jit")
        counts = []
        def probe():
            counts.append(len(stack.protocol.live_collector_periods()))
        for t in range(5, 28):
            sim.schedule_at(float(t), probe)
        stack.run()
        # eq (12): ceil((Tsleep + 2 Tfresh)/Tp) + 1 = ceil(8/2)+1 = 5
        assert max(counts) <= 5 + 1

    def test_greedy_concurrent_trees_grow_with_lifetime(self, sim):
        stack = Stack(sim, policy="greedy")
        counts = []
        sim.schedule_at(3.0, lambda: counts.append(len(stack.protocol.live_collector_periods())))
        stack.run()
        assert counts[0] > 8


class TestStorageTraces:
    def test_storage_tracker_prefetch_length(self, sim):
        from repro.core.metrics import StorageTracker

        tracer = Tracer()
        stack = Stack(sim, policy="jit", tracer=tracer)
        storage = StorageTracker(tracer, stack.spec)
        stack.run()
        assert 1 <= storage.max_prefetch_length <= 6

    def test_greedy_prefetch_length_larger(self, sim):
        from repro.core.metrics import StorageTracker

        tracer = Tracer()
        stack = Stack(sim, policy="greedy", tracer=tracer)
        storage = StorageTracker(tracer, stack.spec)
        stack.run()
        assert storage.max_prefetch_length >= 13

    def test_tree_states_garbage_collected(self, sim):
        stack = Stack(sim)
        stack.run(until=stack.duration + 5.0)
        assert stack.protocol.tree_state_count() == 0
