"""The wire-chaos plane: plan validation, determinism, HTTP injection.

Chaos lives strictly *between* the socket and the app: it draws from its
own dedicated ``"faults.wire"`` stream, so however hard it mangles the
HTTP surface, the world underneath stays bit-identical (pinned in
test_golden_determinism.py).
"""

import threading

import pytest

from repro.api.scenarios import ScenarioSpec
from repro.faults.plan import FaultPlan, WireChaos
from repro.serve.chaos import WireChaosPlane
from repro.serve.client import RetryPolicy, ServeClient
from repro.serve.daemon import ServeApp, make_server
from repro.serve.errors import WireError


PAYLOAD = {"radius_m": 60.0, "period_s": 2.0, "freshness_s": 1.0}


def chaos_spec(wire, **overrides):
    data = {
        "name": "chaos-tiny",
        "description": "wire-chaos test world",
        "mode": "jit",
        "seed": 2,
        "duration_s": 12.0,
        "requests": [],
        "faults": {"wire": wire},
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


# ----------------------------------------------------------------------
# WireChaos validation + plan round trip
# ----------------------------------------------------------------------
def test_wire_chaos_validates_probabilities():
    WireChaos(reset_prob=0.5, delay_prob=0.5, delay_s=1.0)
    for bad in (
        {"reset_prob": -0.1},
        {"reset_prob": 1.1},
        {"error_prob": 2.0},
        {"truncate_prob": -1.0},
        {"delay_s": -0.5},
        {"delay_prob": 0.5},  # delay without a magnitude
    ):
        with pytest.raises(ValueError):
            WireChaos(**bad)


def test_fault_plan_wire_section_round_trips():
    plan = FaultPlan.from_dict(
        {"wire": {"reset_prob": 0.1, "delay_prob": 0.2, "delay_s": 0.05}}
    )
    assert plan.wire is not None
    assert not plan.empty
    assert plan.world_empty  # wire-only: nothing happens inside the world
    back = FaultPlan.from_dict(plan.to_dict())
    assert back.wire == plan.wire


def test_fault_plan_rejects_malformed_wire_sections():
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"wire": [0.1]})
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"wire": {"reset_probability": 0.1}})


def test_empty_wire_section_normalizes_to_no_wire_plan():
    # An all-zeros wire section and no wire section are the same plan —
    # the bit-identity guarantee depends on it.
    explicit = FaultPlan.from_dict({"wire": {}})
    zeros = FaultPlan.from_dict(
        {"wire": {"reset_prob": 0.0, "error_prob": 0.0}}
    )
    absent = FaultPlan.from_dict({})
    assert explicit.wire is None and zeros.wire is None
    assert explicit.empty and zeros.empty
    assert explicit.to_dict() == absent.to_dict()


# ----------------------------------------------------------------------
# The plane: determinism and counters
# ----------------------------------------------------------------------
def test_plane_refuses_empty_chaos_and_is_seed_deterministic():
    with pytest.raises(ValueError):
        WireChaosPlane(WireChaos(), seed=1)
    chaos = WireChaos(
        reset_prob=0.3, delay_prob=0.3, delay_s=0.2, error_prob=0.3,
        truncate_prob=0.3,
    )
    a = WireChaosPlane(chaos, seed=7)
    b = WireChaosPlane(chaos, seed=7)
    actions_a = [a.plan_request() for _ in range(64)]
    actions_b = [b.plan_request() for _ in range(64)]
    assert actions_a == actions_b
    assert a.counters == b.counters
    assert a.counters["requests"] == 64
    # With every prob at 0.3, 64 draws virtually surely fire something.
    assert (
        a.counters["resets"] + a.counters["injected_errors"]
        + a.counters["truncations"] + a.counters["delays"]
    ) > 0
    assert WireChaosPlane(chaos, seed=8).plan_request is not None
    snap = a.snapshot()
    assert snap["plan"]["reset_prob"] == 0.3
    assert snap["requests"] == 64


def test_certain_probabilities_fire_every_time():
    chaos = WireChaos(error_prob=1.0)
    plane = WireChaosPlane(chaos, seed=1)
    actions = [plane.plan_request() for _ in range(8)]
    assert all(a.inject_error for a in actions)
    assert plane.counters["injected_errors"] == 8


def test_wire_chaos_daemon_world_is_bit_identical_to_plain():
    # Same submits, one daemon carrying a hostile wire plan (exercised
    # heavily via plan_request), one daemon with no plan at all: the
    # worlds underneath must finish with identical fingerprints — the
    # chaos plane's draws never touch the simulation's streams.
    wire = {"reset_prob": 0.4, "delay_prob": 0.4, "delay_s": 0.05,
            "error_prob": 0.4, "truncate_prob": 0.4}

    def run(spec):
        app = ServeApp(spec, time_scale=0.0)
        app.submit("alice", dict(PAYLOAD))
        if app.chaos is not None:
            for _ in range(32):  # burn the wire stream hard mid-run
                app.chaos.plan_request()
        app.submit("bob", dict(PAYLOAD))
        app.start()
        app.begin_drain()
        assert app.wait_drained(60.0)
        return app.finish()["fingerprints"]

    chaotic = run(chaos_spec(wire))
    plain = run(chaos_spec(wire, faults={}))
    assert chaotic == plain


# ----------------------------------------------------------------------
# HTTP integration: the middleware mangles real requests
# ----------------------------------------------------------------------
def run_http(app):
    server = make_server(app, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    return server, f"http://{host}:{port}"


def test_injected_errors_are_typed_and_survivable_via_retry():
    # error_prob=1: every request answers 503 chaos-injected before
    # dispatch.  A fail-fast client sees the typed payload as data; a
    # retrying client burns its attempts and reports gave_up.
    app = ServeApp(chaos_spec({"error_prob": 1.0}), time_scale=0.0)
    app.start()
    server, url = run_http(app)
    try:
        status, resp = ServeClient(url, "alice").request("GET", "/healthz")
        assert status == 503
        assert resp["error"]["code"] == "chaos-injected"
        retrier = ServeClient(
            url, "bob", retry=RetryPolicy(max_attempts=3, base_s=0.01)
        )
        status, resp = retrier.request("GET", "/healthz")
        assert status == 503
        counters, attempts = retrier.counters_snapshot()
        assert counters["chaos_injected"] == 3
        assert counters["retries"] == 2
        assert counters["gave_up"] == 1
        assert attempts == [3]
        # Nothing ever reached the app: chaos preempts dispatch.
        assert app.stats_payload()["server"]["wire_chaos"]["injected_errors"] >= 4
        assert len(app.log.ops) == 0
    finally:
        server.shutdown()
        server.server_close()
    app.begin_drain()
    assert app.wait_drained(60.0)
    app.finish()


def test_resets_and_truncations_surface_as_transport_failures():
    # reset_prob=1: the daemon closes the connection without answering;
    # an exhausted client raises the typed daemon-unreachable error.
    app = ServeApp(chaos_spec({"reset_prob": 1.0}), time_scale=0.0)
    app.start()
    server, url = run_http(app)
    try:
        client = ServeClient(
            url, "alice", retry=RetryPolicy(max_attempts=2, base_s=0.01)
        )
        with pytest.raises(WireError) as info:
            client.healthz()
        assert info.value.code == "daemon-unreachable"
        counters, _ = client.counters_snapshot()
        assert counters["transport_errors"] == 2
    finally:
        server.shutdown()
        server.server_close()

    # truncate_prob=1: dispatch happens (state commits!) but the body is
    # cut short — the client sees a transport failure, not a verdict.
    app2 = ServeApp(chaos_spec({"truncate_prob": 1.0}), time_scale=0.0)
    app2.start()
    server2, url2 = run_http(app2)
    try:
        client = ServeClient(url2, "alice")
        with pytest.raises(WireError):
            client.healthz()
        assert app2.chaos.counters["truncations"] >= 1
    finally:
        server2.shutdown()
        server2.server_close()


def test_truncated_submit_retry_with_idempotency_never_double_admits():
    # The exact failure idempotency keys exist for: the submit COMMITS,
    # the response is lost on the wire, the client retries — and must
    # get the same session back, with exactly one log op.
    app = ServeApp(chaos_spec({"truncate_prob": 1.0}), time_scale=0.0)
    app.start()
    server, url = run_http(app)
    try:
        client = ServeClient(
            url, "alice", retry=RetryPolicy(max_attempts=4, base_s=0.01)
        )
        with pytest.raises(WireError):
            client.submit(dict(PAYLOAD))
        # Every retried attempt deduped onto the first commit.
        assert len(app.log.ops) == 1
        assert app.backend.stats().submitted == 1
        assert app.stats_payload()["server"]["idempotency"]["hits"] == 3
    finally:
        server.shutdown()
        server.server_close()
    app.begin_drain()
    assert app.wait_drained(60.0)
    app.finish()
