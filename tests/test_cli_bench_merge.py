"""Regression tests for the BENCH_perf.json merge in ``repro bench``.

The bench merges two half-reports into one artifact: the hot-path command
preserves a previously written ``cluster`` section, and ``--cluster``
preserves the previously written scenario sections.  A missing or corrupt
prior file must never crash the merge and must never silently drop a
previously pinned section — the rewrite proceeds with a stderr warning.

The suites themselves are stubbed out (they are multi-second simulation
runs); what is under test is the merge and fail-soft logic around them.
"""

import json

import pytest

from repro.cli import main
from repro.experiments import perf


def _stub_perf_report(**overrides):
    # scale != quick keeps the fingerprint gate out of the way.
    report = {
        "schema": 1,
        "scale": "paper",
        "repeats": 1,
        "accelerator": "stub",
        "scenarios": {"fig4_jit": {"wall_s": 1.0, "events_per_sec": 10.0,
                                   "events_executed": 10}},
    }
    report.update(overrides)
    return report


def _stub_cluster_report():
    entry = {
        "shards": 1,
        "workers": 0,
        "parallel_used": False,
        "wall_s": 1.0,
        "events_executed": 10,
        "frames_sent": 5,
        "mean_success": 1.0,
    }
    return {
        "scenario": "cluster_scale_64users",
        "scale": "paper",
        "repeats": 1,
        "users": 64,
        "shards1": entry,
        "shards4": dict(entry, shards=4),
        "speedup_sharded_vs_single": 1.0,
    }


@pytest.fixture
def stub_suites(monkeypatch):
    monkeypatch.setattr(
        perf, "run_perf_suite", lambda **kwargs: _stub_perf_report()
    )
    monkeypatch.setattr(
        perf, "run_cluster_suite", lambda **kwargs: _stub_cluster_report()
    )


class TestBenchMerge:
    def test_missing_prior_file_is_fine_and_silent(
        self, tmp_path, stub_suites, capsys
    ):
        out = tmp_path / "BENCH_perf.json"
        assert main(["bench", "--output", str(out)]) == 0
        assert "warning" not in capsys.readouterr().err
        assert "cluster" not in json.loads(out.read_text())

    def test_prior_cluster_section_survives_a_hot_path_rerun(
        self, tmp_path, stub_suites, capsys
    ):
        out = tmp_path / "BENCH_perf.json"
        out.write_text(json.dumps({"scale": "quick", "cluster": {"marker": 7}}))
        assert main(["bench", "--output", str(out)]) == 0
        assert "warning" not in capsys.readouterr().err
        assert json.loads(out.read_text())["cluster"] == {"marker": 7}

    def test_string_json_prior_warns_instead_of_crashing(
        self, tmp_path, stub_suites, capsys
    ):
        """The regression: a valid-JSON *string* containing ``"cluster"``
        used to pass the ``"cluster" in previous`` check as a substring
        match and crash the merge with a TypeError."""
        out = tmp_path / "BENCH_perf.json"
        out.write_text(json.dumps("stale cluster artifact"))
        assert main(["bench", "--output", str(out)]) == 0
        err = capsys.readouterr().err
        assert "warning" in err
        assert "not a JSON object" in err
        written = json.loads(out.read_text())
        assert "cluster" not in written
        assert written["scenarios"]  # the fresh report still landed

    def test_corrupt_prior_warns_and_rewrites(
        self, tmp_path, stub_suites, capsys
    ):
        out = tmp_path / "BENCH_perf.json"
        out.write_text("{not json at all")
        assert main(["bench", "--output", str(out)]) == 0
        err = capsys.readouterr().err
        assert "warning" in err
        assert "unreadable" in err
        assert json.loads(out.read_text())["scenarios"]


class TestBenchClusterMerge:
    def test_missing_prior_file_still_writes_cluster_section(
        self, tmp_path, stub_suites, capsys
    ):
        out = tmp_path / "BENCH_perf.json"
        assert main(["bench", "--cluster", "--output", str(out)]) == 0
        assert "warning" not in capsys.readouterr().err
        written = json.loads(out.read_text())
        assert written["cluster"]["scenario"] == "cluster_scale_64users"

    def test_prior_scenarios_survive_a_cluster_rerun(
        self, tmp_path, stub_suites, capsys
    ):
        out = tmp_path / "BENCH_perf.json"
        out.write_text(
            json.dumps({"scale": "quick", "scenarios": {"fig4_jit": {"wall_s": 2.0}}})
        )
        assert main(["bench", "--cluster", "--output", str(out)]) == 0
        assert "warning" not in capsys.readouterr().err
        written = json.loads(out.read_text())
        assert written["scenarios"] == {"fig4_jit": {"wall_s": 2.0}}
        assert "cluster" in written

    def test_corrupt_prior_warns_but_still_writes_cluster(
        self, tmp_path, stub_suites, capsys
    ):
        """The mirror-image regression: the cluster merge used to crash on
        an unreadable prior report instead of rewriting with a warning."""
        out = tmp_path / "BENCH_perf.json"
        out.write_text("[1, 2,")
        assert main(["bench", "--cluster", "--output", str(out)]) == 0
        err = capsys.readouterr().err
        assert "warning" in err
        assert "unreadable" in err
        written = json.loads(out.read_text())
        assert "cluster" in written
        assert written["scenarios"] == {}
