"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 3.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, log.append, "x")
        handle.cancel()
        sim.run()
        assert log == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_property(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending
        handle.cancel()
        assert not handle.pending

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.pending_count == 1


class TestEdgeCases:
    """Corner cases the multi-user workload engine leans on."""

    def test_cancelled_handle_does_not_fire_even_when_cancelled_mid_run(self):
        """An event may cancel a same-instant later event before it fires."""
        sim = Simulator()
        log = []
        victim = sim.schedule(1.0, log.append, "victim")
        sim.schedule_at(1.0, victim.cancel)
        # FIFO order puts `victim` first: it fires before the canceller.
        sim.run()
        assert log == ["victim"]

        sim2 = Simulator()
        log2 = []

        def arm():
            victim2 = sim2.schedule(0.0, log2.append, "victim")
            sim2.call_soon(victim2.cancel)
            victim2.cancel()  # cancelled before its slot: must never fire

        sim2.schedule(1.0, arm)
        sim2.run()
        assert log2 == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, log.append, "x")
        sim.run()
        handle.cancel()  # already fired: must not corrupt anything
        assert log == ["x"]
        assert not handle.pending

    def test_same_instant_fifo_across_schedule_and_schedule_at(self):
        """Mixing schedule()/schedule_at()/call_soon at one instant keeps
        strict scheduling order (the seq tie-break)."""
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule_at(1.0, log.append, "b")
        sim.schedule(1.0, log.append, "c")
        sim.schedule_at(1.0, log.append, "d")
        sim.run()
        assert log == ["a", "b", "c", "d"]

    def test_same_instant_fifo_with_interleaved_cancels(self):
        sim = Simulator()
        log = []
        handles = [sim.schedule(2.0, log.append, tag) for tag in "abcde"]
        handles[1].cancel()
        handles[3].cancel()
        sim.run()
        assert log == ["a", "c", "e"]

    def test_schedule_in_past_raises_simulation_error_mid_run(self):
        """Once the clock advanced, scheduling behind it must raise."""
        sim = Simulator()
        errors = []

        def backdate():
            try:
                sim.schedule_at(sim.now - 0.5, lambda: None)
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, backdate)
        sim.run()
        assert len(errors) == 1

    def test_reentrant_run_raises(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_peek_skips_cancelled_head(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0

    def test_cancelled_events_do_not_count_as_executed(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(1.0, lambda: None)
        drop.cancel()
        sim.run()
        assert keep is not None
        assert sim.events_executed == 1


class TestRunControl:
    def test_run_until_executes_boundary_events(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "in")
        sim.schedule(2.0, log.append, "boundary")
        sim.schedule(2.5, log.append, "out")
        sim.run(until=2.0)
        assert log == ["in", "boundary"]
        assert sim.now == 2.0

    def test_run_until_sets_clock_even_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_in_past_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=4.0)

    def test_continue_running_after_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(5.0, log.append, 5)
        sim.run(until=2.0)
        sim.run(until=10.0)
        assert log == [1, 5]

    def test_stop_halts_immediately(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append("a"), sim.stop()))
        sim.schedule(2.0, log.append, "b")
        sim.run()
        assert log[0] == "a"
        assert "b" not in log

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(until=100.0, max_events=50)

    def test_step_returns_false_on_empty(self):
        assert Simulator().step() is False

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.schedule(3.0, lambda: None)
        assert sim.peek() == 3.0

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 4


class TestMaxEventsBoundary:
    """Regression: run() used to execute max_events + 1 events before
    raising (`executed > max_events` checked after the step)."""

    def test_exactly_max_events_then_drain_is_fine(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(float(i + 1), log.append, i)
        sim.run(max_events=5)  # queue drains at exactly the limit: no error
        assert log == [0, 1, 2, 3, 4]

    def test_no_event_beyond_max_events_executes(self):
        sim = Simulator()
        log = []
        for i in range(6):
            sim.schedule(float(i + 1), log.append, i)
        with pytest.raises(SimulationError):
            sim.run(max_events=5)
        # The sixth event must not have run — not even one past the limit.
        assert log == [0, 1, 2, 3, 4]
        assert sim.events_executed == 5

    def test_runaway_model_still_caught(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(until=100.0, max_events=50)
        assert sim.events_executed == 50


class TestFastScheduling:
    """schedule_fast/schedule_at_fast: identical ordering, no handle."""

    def test_fast_events_interleave_fifo_with_normal_ones(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule_fast(1.0, log.append, "b")
        sim.schedule_at(1.0, log.append, "c")
        sim.schedule_at_fast(1.0, log.append, "d")
        sim.run()
        assert log == ["a", "b", "c", "d"]

    def test_fast_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_fast(-0.1, lambda: None)

    def test_fast_schedule_at_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at_fast(5.0, lambda: None)

    def test_fast_events_count_in_pending_and_step(self):
        sim = Simulator()
        log = []
        sim.schedule_fast(1.0, log.append, "x")
        assert sim.pending_count == 1
        assert sim.peek() == 1.0
        assert sim.step() is True
        assert log == ["x"]


class TestCancellationAccounting:
    """pending_count is O(1) bookkeeping; compaction keeps it exact."""

    def test_pending_count_after_mass_cancellation(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i, lambda: None) for i in range(500)]
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending_count == 250

    def test_compaction_preserves_order_and_counts(self):
        sim = Simulator()
        log = []
        keep = [sim.schedule(float(i + 1), log.append, i) for i in range(100)]
        drop = [sim.schedule(1000.0 + i, lambda: None) for i in range(300)]
        for handle in drop:
            handle.cancel()  # triggers in-place compaction
        assert sim.pending_count == 100
        sim.run()
        assert log == list(range(100))
        assert keep[0].pending is False

    def test_cancel_mid_run_with_compaction(self):
        sim = Simulator()
        log = []
        victims = [sim.schedule(2.0 + i * 1e-6, log.append, i) for i in range(200)]

        def cancel_all():
            for victim in victims:
                victim.cancel()

        sim.schedule(1.0, cancel_all)
        sim.schedule(5000.0, log.append, "end")
        sim.run()
        assert log == ["end"]
        assert sim.events_executed == 2
