"""The crash-safe op log (WAL) and idempotent submits.

The WAL's contract: every committed op is appended before the response
leaves the daemon, fsynced every ``flush_every`` ops, and a SIGKILL at
any moment leaves a flushed prefix that replays bit-identically (at
worst one partially written tail line, which the partial loader drops).
Idempotency closes the remaining hole — a committed submit whose
response died on the wire can be retried without double-admitting.
"""

import json

import pytest

from repro.api.admission import AdmissionDecision
from repro.api.scenarios import ScenarioSpec
from repro.cli import main
from repro.serve.daemon import ServeApp
from repro.serve.log import (
    SubmissionLog,
    load_partial_log,
    verify_partial_log,
)


def tiny_spec(**overrides):
    data = {
        "name": "wal-tiny",
        "description": "WAL test world",
        "mode": "jit",
        "seed": 2,
        "duration_s": 12.0,
        "requests": [],
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


PAYLOAD = {"radius_m": 60.0, "period_s": 2.0, "freshness_s": 1.0}


def record(log, sid, start=0.0):
    log.record_submit(
        now=start,
        session=sid,
        payload=dict(PAYLOAD),
        decision=AdmissionDecision.accept(),
    )


# ----------------------------------------------------------------------
# The WAL file itself
# ----------------------------------------------------------------------
def test_wal_writes_header_then_ops_and_tracks_flushes(tmp_path):
    path = str(tmp_path / "test.wal")
    log = SubmissionLog(tiny_spec(), wal_path=path, flush_every=2)
    assert log.flushed_ops == 0
    record(log, 1)
    assert log.flushed_ops == 0  # buffered, below the flush interval
    record(log, 2, start=1.0)
    assert log.flushed_ops == 2
    log.close_wal()
    lines = open(path, encoding="utf-8").read().splitlines()
    assert len(lines) == 3
    header = json.loads(lines[0])
    assert header["format"] == "repro-serve-wal/1"
    assert header["scenario"]["name"] == "wal-tiny"
    assert json.loads(lines[1])["op"] == "submit"


def test_wal_flush_every_validation():
    with pytest.raises(ValueError):
        SubmissionLog(tiny_spec(), wal_path=None, flush_every=0)


def test_partial_loader_recovers_full_and_truncated_wals(tmp_path):
    path = str(tmp_path / "crash.wal")
    log = SubmissionLog(tiny_spec(), wal_path=path, flush_every=1)
    record(log, 1)
    log.record_cancel(now=3.0, session=1)
    log.close_wal()

    data = load_partial_log(path)
    assert [op["op"] for op in data["ops"]] == ["submit", "cancel"]
    assert not data["wal_truncated_tail"]
    ok, first, second = verify_partial_log(data)
    assert ok and first == second
    assert len(first["sessions"]) == 1

    # Simulate the SIGKILL: chop the file mid-way through the last line.
    raw = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(raw[: len(raw) - 7])
    data = load_partial_log(path)
    assert [op["op"] for op in data["ops"]] == ["submit"]
    assert data["wal_truncated_tail"]
    ok, first, second = verify_partial_log(data)
    assert ok, f"prefix replay diverged:\n{first}\n{second}"


def test_partial_loader_rejects_missing_or_alien_headers(tmp_path):
    empty = tmp_path / "empty.wal"
    empty.write_text("")
    with pytest.raises(ValueError):
        load_partial_log(str(empty))
    alien = tmp_path / "alien.wal"
    alien.write_text('{"format": "something-else/9"}\n')
    with pytest.raises(ValueError):
        load_partial_log(str(alien))
    garbage = tmp_path / "garbage.wal"
    garbage.write_text("not json at all\n")
    with pytest.raises(ValueError):
        load_partial_log(str(garbage))


# ----------------------------------------------------------------------
# Daemon integration: an abandoned (never drained) app leaves a WAL
# ----------------------------------------------------------------------
def test_abandoned_daemon_wal_replays_bit_identically(tmp_path):
    path = str(tmp_path / "SERVE_killed.wal")
    app = ServeApp(tiny_spec(), time_scale=0.0, wal_path=path, wal_flush_every=1)
    first = app.submit("alice", dict(PAYLOAD))
    second = app.submit("bob", dict(PAYLOAD))
    app.cancel("bob", second["session"])
    # No drain, no finish, no close — the process "dies" here.  Every op
    # was flushed (flush_every=1), so the whole log is the prefix.
    data = load_partial_log(path)
    assert [op["op"] for op in data["ops"]] == ["submit", "submit", "cancel"]
    submits = [op for op in data["ops"] if op["op"] == "submit"]
    assert {op["session"] for op in submits} == {
        first["session"], second["session"],
    }
    ok, a, b = verify_partial_log(data)
    assert ok, f"prefix replay diverged:\n{a}\n{b}"


def test_cli_replay_partial_exit_codes(tmp_path, capsys):
    path = str(tmp_path / "SERVE_cli.wal")
    app = ServeApp(tiny_spec(), time_scale=0.0, wal_path=path, wal_flush_every=1)
    app.submit("alice", dict(PAYLOAD))
    assert main(["replay", "--partial", path]) == 0
    out = capsys.readouterr().out
    assert "partial replay ok" in out
    assert main(["replay", "--partial", str(tmp_path / "missing.wal")]) == 2


# ----------------------------------------------------------------------
# Idempotent submits (the retry-safety half of the WAL story)
# ----------------------------------------------------------------------
def test_duplicate_idempotency_key_returns_same_session_one_log_op():
    app = ServeApp(tiny_spec(), time_scale=0.0)
    first = app.submit("alice", dict(PAYLOAD), idempotency_key="alice.1")
    replayed = app.submit("alice", dict(PAYLOAD), idempotency_key="alice.1")
    assert replayed == first
    assert replayed is not first  # a defensive copy, not the cached dict
    assert len(app.log.ops) == 1
    assert app.backend.stats().submitted == 1
    # A different key is a genuinely new submit.
    third = app.submit("alice", dict(PAYLOAD), idempotency_key="alice.2")
    assert third["session"] != first["session"]
    assert len(app.log.ops) == 2
    # Keys are scoped per tenant: bob's "alice.1" is his own.
    fourth = app.submit("bob", dict(PAYLOAD), idempotency_key="alice.1")
    assert fourth["session"] != first["session"]
    stats = app.stats_payload()["server"]["idempotency"]
    assert stats == {"entries": 3, "hits": 1}
    app.start()
    app.begin_drain()
    assert app.wait_drained(60.0)
    app.finish()


def test_rejected_verdicts_are_cached_by_idempotency_key_too():
    # A per-area cap of one plus two users pinned to the same patrol
    # path forces a deterministic rejection for the second submit.
    spec = tiny_spec(
        admission={"policy": "per-area-cap", "max_overlapping": 1}
    )
    app = ServeApp(spec, time_scale=0.0)
    payload = dict(PAYLOAD)
    payload["path"] = {
        "kind": "patrol",
        "waypoints": [[200.0, 200.0], [260.0, 200.0]],
        "speed": 2.0,
        "loops": 4,
    }
    admitted = app.submit("alice", dict(payload), idempotency_key="a.1")
    assert admitted["status"] == "admitted"
    rejected = app.submit("alice", dict(payload), idempotency_key="a.2")
    assert rejected["status"] == "rejected"
    # The rejected submit consumed a decision (it IS logged); replaying
    # its key must return the cached verdict, not re-ask admission.
    again = app.submit("alice", dict(payload), idempotency_key="a.2")
    assert again == rejected
    assert len(app.log.ops) == 2
    app.start()
    app.begin_drain()
    assert app.wait_drained(60.0)
    app.finish()
