"""Tests for GPS, motion profiles, and the planner/predictor providers."""

import numpy as np
import pytest

from repro.geometry.vec import Vec2
from repro.mobility.gps import GpsModel
from repro.mobility.path import PiecewisePath, Waypoint
from repro.mobility.planner import FullKnowledgeProvider, PlannerProfileProvider
from repro.mobility.predictor import HistoryPredictorProvider
from repro.mobility.profile import MotionProfile


def straight_path(speed=4.0, duration=200.0):
    return PiecewisePath.from_velocity(Vec2(0, 0), Vec2(speed, 0), 0.0, duration)


def turning_path():
    """East for 70 s at 4 m/s, then north for 70 s."""
    return PiecewisePath(
        [
            Waypoint(0.0, Vec2(0, 0)),
            Waypoint(70.0, Vec2(280, 0)),
            Waypoint(140.0, Vec2(280, 280)),
        ]
    )


class TestGpsModel:
    def test_zero_error_is_exact(self):
        gps = GpsModel(max_error_m=0.0)
        fix = gps.read(straight_path(), 10.0, np.random.default_rng(1))
        assert fix.position.is_close(Vec2(40, 0))
        assert fix.time == 10.0

    def test_error_bounded(self):
        gps = GpsModel(max_error_m=10.0)
        rng = np.random.default_rng(3)
        path = straight_path()
        for t in range(20):
            fix = gps.read(path, float(t), rng)
            assert fix.position.distance_to(path.position_at(float(t))) <= 10.0 + 1e-9

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            GpsModel(max_error_m=-1.0)


class TestMotionProfile:
    def test_advance_time(self):
        profile = MotionProfile(path=straight_path(), ts=10.0, validity_s=50.0, tg=4.0)
        assert profile.advance_time == pytest.approx(6.0)
        assert profile.expires_at == pytest.approx(60.0)

    def test_negative_advance_time(self):
        profile = MotionProfile(path=straight_path(), ts=10.0, validity_s=50.0, tg=18.0)
        assert profile.advance_time == pytest.approx(-8.0)

    def test_covers(self):
        profile = MotionProfile(path=straight_path(), ts=10.0, validity_s=50.0, tg=10.0)
        assert profile.covers(30.0)
        assert not profile.covers(5.0)
        assert not profile.covers(70.0)

    def test_generations_increase(self):
        a = MotionProfile(path=straight_path(), ts=0.0, validity_s=1.0, tg=0.0)
        b = MotionProfile(path=straight_path(), ts=0.0, validity_s=1.0, tg=0.0)
        assert b.generation > a.generation

    def test_validity_must_be_positive(self):
        with pytest.raises(ValueError):
            MotionProfile(path=straight_path(), ts=0.0, validity_s=0.0, tg=0.0)


class TestFullKnowledgeProvider:
    def test_single_exact_profile_at_zero(self):
        path = turning_path()
        provider = FullKnowledgeProvider(path, duration_s=140.0)
        arrivals = provider.arrivals()
        assert len(arrivals) == 1
        assert arrivals[0].time == 0.0
        profile = arrivals[0].profile
        assert profile.position_at(100.0).is_close(path.position_at(100.0))


class TestPlannerProvider:
    def test_one_profile_per_leg(self):
        provider = PlannerProfileProvider(turning_path(), 140.0, advance_time_s=6.0)
        arrivals = provider.arrivals()
        assert len(arrivals) == 2
        assert arrivals[0].profile.ts == 0.0
        assert arrivals[1].profile.ts == 70.0

    def test_positive_advance_time_arrives_early(self):
        provider = PlannerProfileProvider(turning_path(), 140.0, advance_time_s=6.0)
        second = provider.arrivals()[1]
        assert second.time == pytest.approx(64.0)
        assert second.profile.advance_time == pytest.approx(6.0)

    def test_negative_advance_time_arrives_late(self):
        provider = PlannerProfileProvider(turning_path(), 140.0, advance_time_s=-8.0)
        second = provider.arrivals()[1]
        assert second.time == pytest.approx(78.0)

    def test_arrival_never_before_zero(self):
        provider = PlannerProfileProvider(turning_path(), 140.0, advance_time_s=25.0)
        first = provider.arrivals()[0]
        assert first.time == 0.0

    def test_profiles_are_exact_within_leg(self):
        path = turning_path()
        provider = PlannerProfileProvider(path, 140.0, advance_time_s=0.0)
        second = provider.arrivals()[1].profile
        assert second.position_at(100.0).is_close(path.position_at(100.0))


class TestPredictorProvider:
    def _provider(self, path, err=0.0, duration=140.0, **kwargs):
        return HistoryPredictorProvider(
            path,
            duration,
            gps=GpsModel(max_error_m=err),
            rng=np.random.default_rng(7),
            sampling_period_s=8.0,
            **kwargs,
        )

    def test_exact_fixes_give_exact_velocity(self):
        provider = self._provider(straight_path())
        first = provider.arrivals()[0]
        # predicted position matches the true straight line
        assert first.profile.position_at(50.0).is_close(Vec2(200, 0), tol=1e-6)

    def test_profile_timing_is_negative_advance(self):
        provider = self._provider(straight_path())
        first = provider.arrivals()[0]
        assert first.time == pytest.approx(8.0)
        assert first.profile.advance_time == pytest.approx(-8.0)

    def test_new_profile_after_each_change(self):
        provider = self._provider(turning_path())
        times = [a.time for a in provider.arrivals()]
        assert 8.0 in times
        assert 78.0 in times  # change at 70 + sampling period 8

    def test_no_divergence_reissues_on_exact_straight_path(self):
        provider = self._provider(straight_path())
        assert len(provider.arrivals()) == 1

    def test_divergence_reissues_with_error(self):
        provider = self._provider(
            straight_path(duration=300.0),
            err=10.0,
            duration=300.0,
            divergence_threshold_m=5.0,
        )
        arrivals = provider.arrivals()
        assert len(arrivals) > 1  # monitor fired at least once

    def test_reissue_reduces_prediction_error(self):
        path = straight_path(duration=300.0)
        rng = np.random.default_rng(5)
        with_monitor = HistoryPredictorProvider(
            path, 300.0, GpsModel(10.0), rng, divergence_threshold_m=10.0
        ).arrivals()
        # Prediction error at a late time under the latest profile is small.
        last = with_monitor[-1].profile
        t = min(290.0, last.expires_at)
        error = last.position_at(t).distance_to(path.position_at(t))
        assert error < 40.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._provider(straight_path(), duration=-1.0)
        with pytest.raises(ValueError):
            HistoryPredictorProvider(
                straight_path(), 10.0, GpsModel(0.0),
                np.random.default_rng(1), sampling_period_s=0.0,
            )
