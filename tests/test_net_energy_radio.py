"""Unit tests for the energy meter and radio state machine."""

import pytest

from repro.net.energy import PAPER_POWER_MODEL, EnergyMeter, PowerModel, RadioState
from repro.net.radio import Radio
from repro.sim.kernel import Simulator


class FakeReception:
    """Stands in for a channel reception record."""

    def __init__(self):
        self.corrupted = False
        self.reason = None

    def corrupt(self, reason):
        if not self.corrupted:
            self.corrupted = True
            self.reason = reason


class TestPowerModel:
    def test_paper_numbers(self):
        assert PAPER_POWER_MODEL.tx_w == pytest.approx(1.400)
        assert PAPER_POWER_MODEL.rx_w == pytest.approx(1.000)
        assert PAPER_POWER_MODEL.idle_w == pytest.approx(0.830)
        assert PAPER_POWER_MODEL.sleep_w == pytest.approx(0.130)

    def test_watts_per_state(self):
        model = PowerModel()
        assert model.watts(RadioState.TX) == model.tx_w
        assert model.watts(RadioState.RX) == model.rx_w
        assert model.watts(RadioState.IDLE) == model.idle_w
        assert model.watts(RadioState.SLEEP) == model.sleep_w


class TestEnergyMeter:
    def test_integrates_over_states(self):
        sim = Simulator()
        meter = EnergyMeter(sim, PowerModel())
        # idle 2 s, then sleep 3 s
        sim.schedule(2.0, meter.on_state_change, RadioState.SLEEP)
        sim.run(until=5.0)
        expected = 2.0 * 0.830 + 3.0 * 0.130
        assert meter.total_joules() == pytest.approx(expected)

    def test_seconds_in_state(self):
        sim = Simulator()
        meter = EnergyMeter(sim, PowerModel())
        sim.schedule(1.0, meter.on_state_change, RadioState.TX)
        sim.schedule(1.5, meter.on_state_change, RadioState.IDLE)
        sim.run(until=4.0)
        assert meter.seconds_in(RadioState.TX) == pytest.approx(0.5)
        assert meter.seconds_in(RadioState.IDLE) == pytest.approx(3.5)

    def test_average_power(self):
        sim = Simulator()
        meter = EnergyMeter(sim, PowerModel())
        sim.schedule(5.0, meter.on_state_change, RadioState.SLEEP)
        sim.run(until=10.0)
        expected = (5 * 0.830 + 5 * 0.130) / 10.0
        assert meter.average_power_w() == pytest.approx(expected)

    def test_average_power_at_time_zero(self):
        sim = Simulator()
        meter = EnergyMeter(sim, PowerModel())
        assert meter.average_power_w() == pytest.approx(0.830)


class TestRadio:
    def _radio(self):
        sim = Simulator()
        return sim, Radio(sim, owner_id=1, power_model=PowerModel())

    def test_initial_state_idle(self):
        _, radio = self._radio()
        assert radio.state is RadioState.IDLE
        assert radio.is_listening

    def test_sleep_and_wake(self):
        _, radio = self._radio()
        radio.sleep()
        assert radio.is_sleeping
        assert not radio.is_listening
        radio.wake()
        assert radio.state is RadioState.IDLE

    def test_wake_noop_when_not_sleeping(self):
        _, radio = self._radio()
        radio.set_state(RadioState.RX)
        radio.wake()
        assert radio.state is RadioState.RX

    def test_tx_guard_rejects_sleeping(self):
        _, radio = self._radio()
        radio.sleep()
        with pytest.raises(RuntimeError):
            radio.set_state_tx_guarded()

    def test_tx_guard_rejects_double_tx(self):
        _, radio = self._radio()
        radio.set_state_tx_guarded()
        with pytest.raises(RuntimeError):
            radio.set_state_tx_guarded()

    def test_end_transmission_returns_to_idle(self):
        _, radio = self._radio()
        radio.set_state_tx_guarded()
        radio.end_transmission()
        assert radio.state is RadioState.IDLE

    def test_reception_corrupted_by_sleep(self):
        _, radio = self._radio()
        reception = FakeReception()
        radio.begin_reception(reception)
        assert radio.state is RadioState.RX
        radio.sleep()
        assert reception.corrupted
        assert reception.reason == "receiver_left_listening"

    def test_reception_corrupted_by_tx(self):
        _, radio = self._radio()
        reception = FakeReception()
        radio.begin_reception(reception)
        radio.set_state_tx_guarded()
        assert reception.corrupted

    def test_overlapping_receptions_corrupt_each_other(self):
        _, radio = self._radio()
        first = FakeReception()
        second = FakeReception()
        radio.begin_reception(first)
        radio.begin_reception(second)
        assert first.corrupted and second.corrupted
        assert first.reason == "overlap"

    def test_single_reception_clean(self):
        _, radio = self._radio()
        reception = FakeReception()
        radio.begin_reception(reception)
        radio.end_reception(reception)
        assert not reception.corrupted
        assert radio.state is RadioState.IDLE

    def test_end_reception_restores_idle_only_when_drained(self):
        _, radio = self._radio()
        a, b = FakeReception(), FakeReception()
        radio.begin_reception(a)
        radio.begin_reception(b)
        radio.end_reception(a)
        assert radio.state is RadioState.RX
        radio.end_reception(b)
        assert radio.state is RadioState.IDLE
