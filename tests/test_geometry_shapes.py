"""Unit tests for circles, rectangles and coverage predicates."""

import math

import pytest

from repro.geometry.shapes import (
    Circle,
    Rect,
    is_point_covered,
    is_point_k_covered,
    points_in_circle,
    segment_point_distance,
)
from repro.geometry.vec import Vec2


class TestCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(Vec2(0, 0), -1.0)

    def test_contains_inside_boundary_outside(self):
        c = Circle(Vec2(0, 0), 5.0)
        assert c.contains(Vec2(3, 0))
        assert c.contains(Vec2(5, 0))  # boundary included
        assert not c.contains(Vec2(5.1, 0))

    def test_area(self):
        assert Circle(Vec2(0, 0), 2.0).area() == pytest.approx(4 * math.pi)

    def test_intersects(self):
        a = Circle(Vec2(0, 0), 5.0)
        assert a.intersects(Circle(Vec2(9, 0), 5.0))
        assert a.intersects(Circle(Vec2(10, 0), 5.0))  # tangent
        assert not a.intersects(Circle(Vec2(11, 0), 5.0))

    def test_contains_circle(self):
        outer = Circle(Vec2(0, 0), 10.0)
        assert outer.contains_circle(Circle(Vec2(2, 0), 5.0))
        assert not outer.contains_circle(Circle(Vec2(6, 0), 5.0))

    def test_boundary_point(self):
        c = Circle(Vec2(1, 1), 2.0)
        assert c.boundary_point(0.0).is_close(Vec2(3, 1))


class TestCircleIntersectionPoints:
    def test_two_points_symmetric(self):
        a = Circle(Vec2(0, 0), 5.0)
        b = Circle(Vec2(6, 0), 5.0)
        points = a.intersection_points(b)
        assert len(points) == 2
        for p in points:
            assert a.center.distance_to(p) == pytest.approx(5.0)
            assert b.center.distance_to(p) == pytest.approx(5.0)
        assert points[0].x == pytest.approx(3.0)
        assert points[1].x == pytest.approx(3.0)
        assert points[0].y == pytest.approx(-points[1].y)

    def test_tangent_single_point(self):
        a = Circle(Vec2(0, 0), 5.0)
        b = Circle(Vec2(10, 0), 5.0)
        points = a.intersection_points(b)
        assert len(points) == 1
        assert points[0].is_close(Vec2(5, 0))

    def test_disjoint_none(self):
        a = Circle(Vec2(0, 0), 1.0)
        assert a.intersection_points(Circle(Vec2(10, 0), 1.0)) == []

    def test_contained_none(self):
        a = Circle(Vec2(0, 0), 10.0)
        assert a.intersection_points(Circle(Vec2(1, 0), 2.0)) == []

    def test_coincident_centers_degenerate(self):
        a = Circle(Vec2(0, 0), 5.0)
        assert a.intersection_points(Circle(Vec2(0, 0), 5.0)) == []

    def test_different_radii(self):
        a = Circle(Vec2(0, 0), 3.0)
        b = Circle(Vec2(4, 0), 2.0)
        points = a.intersection_points(b)
        assert len(points) == 2
        for p in points:
            assert a.center.distance_to(p) == pytest.approx(3.0)
            assert b.center.distance_to(p) == pytest.approx(2.0)


class TestRect:
    def test_square_factory(self):
        r = Rect.square(450.0)
        assert r.width == r.height == 450.0
        assert r.area() == pytest.approx(450.0 * 450.0)

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            Rect(10, 0, 0, 10)

    def test_contains_with_tolerance(self):
        r = Rect.square(10.0)
        assert r.contains(Vec2(5, 5))
        assert r.contains(Vec2(10, 10))
        assert not r.contains(Vec2(10.5, 5))
        assert r.contains(Vec2(10.5, 5), tol=1.0)

    def test_clamp(self):
        r = Rect.square(10.0)
        assert r.clamp(Vec2(-3, 15)) == Vec2(0, 10)
        assert r.clamp(Vec2(4, 4)) == Vec2(4, 4)

    def test_center(self):
        assert Rect(0, 0, 10, 20).center() == Vec2(5, 10)

    def test_corners_ccw(self):
        corners = Rect(0, 0, 1, 2).corners()
        assert corners == (Vec2(0, 0), Vec2(1, 0), Vec2(1, 2), Vec2(0, 2))


class TestCoveragePredicates:
    def test_points_in_circle_filters(self):
        circle = Circle(Vec2(0, 0), 2.0)
        inside = points_in_circle([Vec2(1, 0), Vec2(3, 0), Vec2(0, 1.9)], circle)
        assert inside == [Vec2(1, 0), Vec2(0, 1.9)]

    def test_is_point_covered(self):
        disks = [Circle(Vec2(0, 0), 1.0), Circle(Vec2(5, 0), 1.0)]
        assert is_point_covered(Vec2(5.5, 0), disks)
        assert not is_point_covered(Vec2(2.5, 0), disks)

    def test_is_point_k_covered(self):
        disks = [Circle(Vec2(0, 0), 2.0), Circle(Vec2(1, 0), 2.0), Circle(Vec2(9, 9), 1.0)]
        assert is_point_k_covered(Vec2(0.5, 0), disks, k=2)
        assert not is_point_k_covered(Vec2(0.5, 0), disks, k=3)
        assert is_point_k_covered(Vec2(0.5, 0), disks, k=0)

    def test_segment_point_distance(self):
        a, b = Vec2(0, 0), Vec2(10, 0)
        assert segment_point_distance(a, b, Vec2(5, 3)) == pytest.approx(3.0)
        assert segment_point_distance(a, b, Vec2(-4, 3)) == pytest.approx(5.0)
        assert segment_point_distance(a, a, Vec2(3, 4)) == pytest.approx(5.0)
