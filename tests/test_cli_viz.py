"""Tests for the CLI, ASCII visualization and reporting helpers."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.reporting import format_series, format_table
from repro.experiments.viz import render_fidelity_strip, render_field


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table("T", ["col", "value"], [("a", 1.0), ("bb", 22)])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[2]
        assert "1.000" in table
        assert "22" in table

    def test_format_table_empty_rows(self):
        table = format_table("Empty", ["x"], [])
        assert "Empty" in table
        assert "x" in table

    def test_format_series_bars(self):
        text = format_series("S", [(1, 1.0), (2, 0.0)], width=10)
        lines = text.splitlines()
        assert "#" * 10 in lines[2]
        assert "#" not in lines[3]

    def test_format_series_clamps(self):
        text = format_series("S", [(1, 2.0), (2, -1.0)], width=10)
        assert "#" * 10 in text  # clamped to 1.0


class TestViz:
    def test_render_fidelity_strip_wraps(self):
        series = [(k, 1.0) for k in range(1, 131)]
        strip = render_fidelity_strip(series, width=60)
        lines = strip.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("k=   1")
        assert lines[2].startswith("k= 121")

    def test_render_fidelity_strip_levels(self):
        strip = render_fidelity_strip([(1, 0.0), (2, 0.5), (3, 1.0)])
        assert strip.endswith("#")

    def test_render_field_contains_nodes_and_legend(self, sim):
        from .conftest import line_positions, make_network

        network = make_network(sim, line_positions(5, 100.0), region_side=500.0)
        network.apply_backbone([0, 2, 4])
        art = render_field(network, width=50)
        assert "O" in art
        assert "." in art
        assert "legend" in art

    def test_render_field_with_path_area_user(self, sim):
        from repro.geometry.vec import Vec2
        from repro.mobility.path import PiecewisePath
        from repro.core.query import QuerySpec
        from .conftest import line_positions, make_network

        network = make_network(sim, line_positions(5, 100.0), region_side=500.0)
        network.apply_backbone([0, 2, 4])
        path = PiecewisePath.from_velocity(Vec2(50, 250), Vec2(2, 0), 0.0, 100.0)
        spec = QuerySpec(radius_m=120.0, lifetime_s=100.0)
        art = render_field(
            network,
            width=50,
            path=path,
            area=spec.area_at(Vec2(100, 250)),
            user=Vec2(50, 250),
        )
        assert "U" in art
        assert "*" in art
        assert ":" in art


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_rejects_bad_fig(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "3"])

    def test_analysis_command(self, capsys):
        assert main(["analysis"]) == 0
        out = capsys.readouterr().out
        assert "vprfh (mph)" in out
        assert "v* (mph)" in out

    def test_topology_command(self, capsys):
        assert main(["topology", "--seed", "1", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "backbone:" in out
        assert "legend" in out

    def test_run_command_idle(self, capsys):
        assert main(["run", "--mode", "idle", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "idle run" in out

    def test_run_command_jit_short(self, capsys):
        assert main(["run", "--mode", "jit", "--duration", "12", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "success ratio" in out
        assert "fidelity per period" in out


class TestProfileCommand:
    def test_profile_scenario_short(self, capsys, tmp_path):
        out_path = str(tmp_path / "prof.out")
        assert main([
            "profile", "fig4_jit", "--duration", "10", "--top", "5",
            "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "function calls" in out  # pstats header
        assert f"raw profile written to {out_path}" in out
        assert (tmp_path / "prof.out").exists()

    def test_profile_unknown_scenario(self, capsys):
        assert main(["profile", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "fig4_jit" in err  # error lists the valid names

    def test_profile_bad_sort_key(self, capsys, tmp_path):
        out_path = str(tmp_path / "prof.out")
        assert main([
            "profile", "fig4_jit", "--duration", "5", "--sort", "bogus",
            "--out", out_path,
        ]) == 2
        assert "invalid --sort key" in capsys.readouterr().err

    def test_profile_rejects_nonpositive_top(self, capsys):
        assert main(["profile", "fig4_jit", "--top", "0"]) == 2
        assert "--top" in capsys.readouterr().err

    def test_profile_bad_duration_clean_error(self, capsys):
        assert main(["profile", "fig4_jit", "--duration", "-5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro profile: error:")
