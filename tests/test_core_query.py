"""Tests for the query model and mergeable aggregates."""

import pytest

from repro.core.query import AggregateState, Aggregation, QueryResult, QuerySpec


class TestQuerySpec:
    def test_paper_defaults(self):
        spec = QuerySpec()
        assert spec.radius_m == 150.0
        assert spec.period_s == 2.0
        assert spec.freshness_s == 1.0

    def test_num_periods(self):
        spec = QuerySpec(period_s=2.0, lifetime_s=400.0)
        assert spec.num_periods == 200

    def test_num_periods_rounds_down(self):
        spec = QuerySpec(period_s=3.0, lifetime_s=10.0)
        assert spec.num_periods == 3

    def test_deadline_and_sense_time(self):
        spec = QuerySpec(period_s=2.0, freshness_s=1.0)
        assert spec.deadline(5) == pytest.approx(10.0)
        assert spec.sense_time(5) == pytest.approx(9.0)

    def test_deadline_index_validation(self):
        with pytest.raises(ValueError):
            QuerySpec().deadline(0)

    def test_unique_ids(self):
        assert QuerySpec().query_id != QuerySpec().query_id

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QuerySpec(radius_m=0.0)
        with pytest.raises(ValueError):
            QuerySpec(period_s=0.0)
        with pytest.raises(ValueError):
            QuerySpec(lifetime_s=0.5, period_s=1.0)


class TestAggregateState:
    def test_from_reading(self):
        agg = AggregateState.from_reading(7, 25.0)
        assert agg.count == 1
        assert agg.contributors == {7}
        assert agg.value(Aggregation.AVG) == 25.0

    def test_merge_statistics(self):
        a = AggregateState.from_reading(1, 10.0)
        b = AggregateState.from_reading(2, 30.0)
        a.merge(b)
        assert a.count == 2
        assert a.value(Aggregation.AVG) == pytest.approx(20.0)
        assert a.value(Aggregation.MIN) == 10.0
        assert a.value(Aggregation.MAX) == 30.0
        assert a.value(Aggregation.SUM) == 40.0
        assert a.value(Aggregation.COUNT) == 2.0

    def test_merge_duplicate_contributor_ignored(self):
        a = AggregateState.from_reading(1, 10.0)
        a.merge(AggregateState.from_reading(1, 10.0))
        assert a.count == 1
        assert a.value(Aggregation.SUM) == 10.0

    def test_merge_multi_contributor_partials(self):
        left = AggregateState.from_reading(1, 10.0)
        left.merge(AggregateState.from_reading(2, 20.0))
        right = AggregateState.from_reading(3, 60.0)
        right.merge(AggregateState.from_reading(4, 30.0))
        left.merge(right)
        assert left.count == 4
        assert left.contributors == {1, 2, 3, 4}
        assert left.value(Aggregation.AVG) == pytest.approx(30.0)

    def test_empty_value_is_none(self):
        assert AggregateState().value(Aggregation.AVG) is None

    def test_copy_is_independent(self):
        a = AggregateState.from_reading(1, 5.0)
        b = a.copy()
        b.merge(AggregateState.from_reading(2, 7.0))
        assert a.count == 1
        assert b.count == 2

    def test_merge_order_invariance(self):
        readings = [(1, 4.0), (2, -3.0), (3, 10.0), (4, 0.5)]
        forward = AggregateState()
        for nid, v in readings:
            forward.merge(AggregateState.from_reading(nid, v))
        backward = AggregateState()
        for nid, v in reversed(readings):
            backward.merge(AggregateState.from_reading(nid, v))
        for agg in Aggregation:
            assert forward.value(agg) == pytest.approx(backward.value(agg))


class TestQueryResult:
    def test_on_time(self):
        result = QueryResult(
            query_id=1, k=3, deadline=6.0, delivered_at=5.9,
            value=1.0, contributors=frozenset({1}),
        )
        assert result.on_time

    def test_late(self):
        result = QueryResult(
            query_id=1, k=3, deadline=6.0, delivered_at=6.1,
            value=1.0, contributors=frozenset({1}),
        )
        assert not result.on_time
