"""Unit tests for 2-D vector arithmetic."""

import math

import pytest

from repro.geometry.vec import Vec2


class TestConstruction:
    def test_zero(self):
        assert Vec2.zero() == Vec2(0.0, 0.0)

    def test_from_polar_east(self):
        v = Vec2.from_polar(2.0, 0.0)
        assert v.is_close(Vec2(2.0, 0.0))

    def test_from_polar_north(self):
        v = Vec2.from_polar(3.0, math.pi / 2)
        assert v.is_close(Vec2(0.0, 3.0))

    def test_immutability(self):
        v = Vec2(1.0, 2.0)
        with pytest.raises(AttributeError):
            v.x = 5.0  # type: ignore[misc]


class TestArithmetic:
    def test_add(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)

    def test_sub(self):
        assert Vec2(5, 5) - Vec2(2, 3) == Vec2(3, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Vec2(1, -2) * 3 == Vec2(3, -6)
        assert 3 * Vec2(1, -2) == Vec2(3, -6)

    def test_division(self):
        assert Vec2(4, 8) / 2 == Vec2(2, 4)

    def test_negation(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_iteration_unpacks(self):
        x, y = Vec2(7, 9)
        assert (x, y) == (7, 9)


class TestMeasures:
    def test_dot(self):
        assert Vec2(1, 2).dot(Vec2(3, 4)) == 11

    def test_cross_sign(self):
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0
        assert Vec2(0, 1).cross(Vec2(1, 0)) == -1.0

    def test_norm_345(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)

    def test_norm_sq_avoids_sqrt(self):
        assert Vec2(3, 4).norm_sq() == pytest.approx(25.0)

    def test_distance_symmetry(self):
        a, b = Vec2(0, 0), Vec2(6, 8)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a)) == pytest.approx(10.0)

    def test_distance_sq(self):
        assert Vec2(0, 0).distance_sq_to(Vec2(1, 1)) == pytest.approx(2.0)

    def test_angle(self):
        assert Vec2(0, 2).angle() == pytest.approx(math.pi / 2)


class TestTransforms:
    def test_normalized_has_unit_length(self):
        assert Vec2(3, 4).normalized().norm() == pytest.approx(1.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2.zero().normalized()

    def test_perpendicular_is_orthogonal(self):
        v = Vec2(3, 4)
        assert v.dot(v.perpendicular()) == pytest.approx(0.0)

    def test_rotated_quarter_turn(self):
        assert Vec2(1, 0).rotated(math.pi / 2).is_close(Vec2(0, 1), tol=1e-12)

    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec2(0, 0), Vec2(10, 20)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(5, 10)

    def test_clamped(self):
        lo, hi = Vec2(0, 0), Vec2(10, 10)
        assert Vec2(-5, 20).clamped(lo, hi) == Vec2(0, 10)
        assert Vec2(5, 5).clamped(lo, hi) == Vec2(5, 5)

    def test_as_tuple(self):
        assert Vec2(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_is_close_tolerance(self):
        assert Vec2(1, 1).is_close(Vec2(1 + 1e-10, 1 - 1e-10))
        assert not Vec2(1, 1).is_close(Vec2(1.1, 1))
