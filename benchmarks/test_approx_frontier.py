"""The accuracy/energy frontier: coarse summaries vs the exact protocol.

The ``uav-survey`` scenario is the frontier's pinned witness: four
survey UAVs sweep the field at 12 m/s with 70 m disks every 3 s — fast
enough that the exact protocol pays heavy collection traffic keeping up.
The same workload at ``accuracy="coarse"`` answers every period from
the in-network summary plane instead.  This module gates the frontier:

* **frames** — coarse must cut frames on air by at least 2x vs the
  exact twin (in practice it sends *zero* new frames: summaries ride
  the existing beacon/report traffic);
* **honesty** — every coarse answer must sit within its own declared
  ``error_bound`` of the exact twin's answer for the same period;
* **health** — the coarse leg still scores full delivery success, and
  nothing is silently stale (the scenario's 3 s duty cycle keeps
  summaries inside the freshness bound).

Run with ``make approx-smoke`` (both physics legs in CI).
"""

import pytest

from repro.api.scenarios import get_scenario, run_scenario

#: declared-vs-observed error comparisons tolerate only float noise
_EPS = 1e-9

#: the frontier gate: exact must spend at least this many times the
#: frames the coarse leg spends (guarded against a zero-frame coarse leg)
FRONTIER_FRAME_RATIO = 2.0


def run_legs():
    spec = get_scenario("uav-survey")
    coarse = run_scenario(spec)  # the scenario's native accuracy
    exact = run_scenario(spec, accuracy="exact")
    return spec, coarse, exact


@pytest.fixture(scope="module")
def legs():
    return run_legs()


class TestApproxFrontier:
    def test_coarse_cuts_frames_at_least_2x(self, legs, emit):
        spec, coarse, exact = legs
        ratio = exact.frames_sent / max(1, coarse.frames_sent)
        emit(
            "\napprox frontier (uav-survey, 60 s, 4 UAVs):\n"
            f"  exact : {exact.frames_sent} frames on air, "
            f"success {exact.mean_success:.3f}\n"
            f"  coarse: {coarse.frames_sent} frames on air, "
            f"success {coarse.mean_success:.3f}\n"
            f"  frame ratio exact/coarse: {ratio:.1f}x "
            f"(gate: >= {FRONTIER_FRAME_RATIO:g}x)\n"
        )
        assert exact.frames_sent >= FRONTIER_FRAME_RATIO * max(
            1, coarse.frames_sent
        )

    def test_observed_error_within_declared_bound(self, legs, emit):
        """Per-period honesty: |coarse - exact| <= declared bound.

        Compared only on periods both legs delivered — the exact leg can
        miss a deadline (that is exactly why it pays more frames), and a
        missed exact period has no reference value to compare against.
        """
        spec, coarse, exact = legs
        compared = 0
        worst_slack = 0.0
        for h_coarse, h_exact in zip(coarse.handles, exact.handles):
            assert h_coarse.spec.user_id == h_exact.spec.user_id
            for k in range(1, h_coarse.spec.num_periods + 1):
                oc = h_coarse.period_outcome(k)
                oe = h_exact.period_outcome(k)
                if oc is None or oe is None:
                    continue
                if not (oc.delivered and oe.delivered):
                    continue
                if oc.value is None or oe.value is None:
                    continue
                assert oc.error_bound is not None
                error = abs(oc.value - oe.value)
                assert error <= oc.error_bound + _EPS, (
                    f"user {h_coarse.spec.user_id} period {k}: observed "
                    f"error {error:.6f} exceeds declared bound "
                    f"{oc.error_bound:.6f}"
                )
                worst_slack = max(worst_slack, error)
                compared += 1
        assert compared >= 20, (
            f"only {compared} delivered period pairs — the scenario no "
            "longer exercises the frontier"
        )
        emit(
            f"  bounds: {compared} period pairs compared, worst observed "
            f"error {worst_slack:.4f} — all within declared bounds\n"
        )

    def test_coarse_leg_is_healthy(self, legs):
        spec, coarse, _exact = legs
        assert coarse.admitted == 4
        assert coarse.mean_success == 1.0
        degraded = sum(s.degraded_periods for s in coarse.workload.sessions)
        assert degraded == 0, (
            "the scenario's duty cycle must keep summaries fresh; "
            f"{degraded} periods were stale"
        )

    def test_exact_twin_is_really_exact(self, legs):
        """The exact leg must not touch the summary plane at all."""
        spec, _coarse, exact = legs
        assert exact.frames_sent > 0
        for handle in exact.handles:
            for k in range(1, handle.spec.num_periods + 1):
                outcome = handle.period_outcome(k)
                if outcome is not None:
                    assert outcome.error_bound is None
