"""Admission control under saturation — worst-user quality vs open door.

At N=16 simultaneous arrivals the shared medium is past its knee: every
session's deadlines phase-lock, report storms collide, and the *minimum*
per-user success ratio collapses well below the mean (see
``test_multiuser_scaling.py``).  This benchmark measures what the service
can do about it now that admission is a first-class policy:

* **accept-all** — the open service; every user is admitted into the
  storm.
* **per-area-cap** — sessions whose query area would overlap too many
  live sessions are rejected at submit time; the users the service *does*
  take keep their quality (spatial load shedding).
* **phase-assign** — everyone is admitted but the server offsets each
  session's start across phase slots, de-synchronising the deadline
  bursts without rejecting anyone.

The pinned expectation (the PR's acceptance bar): per-area-cap improves
the admitted fleet's minimum success ratio over accept-all at N=16.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.api import (
    AcceptAllPolicy,
    AdmissionPolicy,
    MobiQueryService,
    PerAreaCapPolicy,
    PhaseAssignPolicy,
    QueryRequest,
)
from repro.experiments.config import MODE_JIT, ExperimentConfig
from repro.experiments.figures import SCALE_PAPER, bench_scale
from repro.experiments.reporting import format_table

#: fleet-sized query areas (see test_multiuser_scaling.FLEET_RADIUS_M)
FLEET_RADIUS_M = 60.0
NUM_USERS = 16


@dataclass(frozen=True)
class AdmissionRow:
    """One policy's measured outcome at N=16."""

    policy: str
    admitted: int
    rejected: int
    mean_success: float
    min_success: float
    frames_collided: int


def _run_policy(
    name: str, policy: AdmissionPolicy, duration_s: float, seed: int
) -> AdmissionRow:
    config = ExperimentConfig(mode=MODE_JIT, seed=seed, duration_s=duration_s)
    service = MobiQueryService(config, admission=policy)
    handles = [
        # a simultaneous burst: the phase-locking worst case
        service.submit(
            QueryRequest(radius_m=FLEET_RADIUS_M, period_s=2.0, freshness_s=1.0)
        )
        for _ in range(NUM_USERS)
    ]
    result = service.finalize()
    return AdmissionRow(
        policy=name,
        admitted=sum(1 for h in handles if h.accepted),
        rejected=sum(1 for h in handles if not h.accepted),
        mean_success=result.mean_success_ratio(),
        min_success=result.min_success_ratio(),
        frames_collided=service.network.channel.frames_collided,
    )


def run_admission_comparison(scale: Optional[str] = None) -> List[AdmissionRow]:
    scale = scale or bench_scale()
    duration = 240.0 if scale == SCALE_PAPER else 90.0
    seed = 1
    return [
        _run_policy("accept-all", AcceptAllPolicy(), duration, seed),
        _run_policy(
            "per-area-cap", PerAreaCapPolicy(max_overlapping=3), duration, seed
        ),
        _run_policy("phase-assign", PhaseAssignPolicy(slots=4), duration, seed),
    ]


def test_per_area_cap_improves_worst_user(once, emit):
    rows = once(run_admission_comparison)
    emit(format_table(
        f"Admission control at N={NUM_USERS} (simultaneous burst)",
        ["policy", "admitted", "rejected", "mean", "min", "collisions"],
        [
            (
                r.policy,
                r.admitted,
                r.rejected,
                f"{r.mean_success:.3f}",
                f"{r.min_success:.3f}",
                r.frames_collided,
            )
            for r in rows
        ],
    ))
    by_name = {r.policy: r for r in rows}
    accept_all = by_name["accept-all"]
    capped = by_name["per-area-cap"]
    phased = by_name["phase-assign"]
    # the open door admits everyone; the cap genuinely sheds load
    assert accept_all.admitted == NUM_USERS
    assert 1 <= capped.admitted < NUM_USERS
    assert phased.admitted == NUM_USERS
    # the acceptance bar: spatial load shedding lifts the worst admitted
    # user measurably above the open-door worst user
    assert capped.min_success >= accept_all.min_success + 0.02
    # and the admitted fleet's mean does not pay for it
    assert capped.mean_success >= accept_all.mean_success - 0.02
    # phase assignment helps everyone without rejecting anyone
    assert phased.min_success >= accept_all.min_success
