"""Cluster scale-out smoke: single-shard identity + pinned fingerprints.

The cluster's load-bearing guarantee is that sharding is *transparent*:
``ClusterService(shards=1)`` computes bit-for-bit what a single
``MobiQueryService`` computes, and the sharded layout is deterministic.
This module gates both at quick scale — the same check the cluster-smoke
CI job runs via ``make bench-cluster`` — and reports the measured
sharded-vs-single wall-clock ratio (a speedup even in-process: four
50-node worlds do less per-frame work than one 200-node world; worker
processes widen it on multi-core machines).
"""

import pytest

from repro.api.scenarios import run_scenario
from repro.cluster import ClusterService
from repro.experiments.perf import (
    CLUSTER_RESULT_FINGERPRINTS,
    cluster_fingerprint_mismatches,
    cluster_scenario,
    format_cluster_report,
    run_cluster_suite,
)


class TestClusterScaleSmoke:
    def test_quick_scale_suite_matches_pins(self, emit):
        """The 64-user scenario: shards=1 must reproduce the pinned
        MobiQueryService fingerprint; shards=4 must reproduce its own."""
        report = run_cluster_suite(scale="quick", repeats=1)
        emit(format_cluster_report(report))
        mismatches = cluster_fingerprint_mismatches(report)
        assert mismatches == [], "\n".join(mismatches)
        assert report["shards1"]["shards"] == 1
        assert report["speedup_sharded_vs_single"] > 0.0

    def test_pins_cover_both_layouts(self):
        for key in ("shards1", "shards4"):
            pin = CLUSTER_RESULT_FINGERPRINTS[key]
            assert {"frames_sent", "frames_delivered", "mean_success"} <= set(pin)

    def test_single_shard_identity_off_pin(self):
        """Identity holds away from the pinned seed/duration too."""
        spec = cluster_scenario("quick").with_overrides(
            duration_s=16.0, seed=7, shards=1, workers=0
        )
        small = spec.to_dict()
        small["requests"] = [{**dict(spec.requests[0]), "count": 6}]
        spec = type(spec).from_dict(small)
        single = run_scenario(spec)
        from repro.api.scenarios import _scenario_config

        cluster = run_scenario(
            spec, backend=ClusterService(_scenario_config(spec), shards=1)
        )
        assert (
            cluster.frames_sent,
            cluster.frames_delivered,
            cluster.events_executed,
        ) == (single.frames_sent, single.frames_delivered, single.events_executed)
        assert [s.success_ratio for s in cluster.workload.sessions] == [
            s.success_ratio for s in single.workload.sessions
        ]
