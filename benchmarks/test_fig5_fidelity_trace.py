"""Figure 5 — dynamic behaviour: per-period data fidelity traces.

Paper result: with Tsleep = 15 s both schemes suffer an initial warmup of
about 5 low-fidelity queries (eq. 16 with Ta = 0); after it MQ-JIT holds
fidelity at ~100% nearly every period, while MQ-GP shows significant
variance caused by congestion losses.
"""

import statistics

from repro.experiments.config import MODE_GREEDY, MODE_JIT
from repro.experiments.figures import run_fig5
from repro.experiments.reporting import format_series


def test_fig5_fidelity_trace(once, emit):
    traces = once(run_fig5)
    by_mode = {t.mode: t for t in traces}
    for trace in traces:
        head = trace.series[:40]
        emit(
            format_series(
                f"Figure 5 — data fidelity per period ({trace.mode}), first 40 periods",
                head,
            )
        )

    jit = by_mode[MODE_JIT]
    greedy = by_mode[MODE_GREEDY]

    # Shape 1: a visible warmup phase exists (paper: ~5 periods; eq. 16
    # bounds it near (Tsleep + 2 Tfresh) / Tp ~ 9 for Ta=0 at Ts=15).
    assert 1 <= jit.warmup_periods <= 12

    # Shape 2: after warmup JIT is near-perfect.
    post = [f for k, f in jit.series if k > jit.warmup_periods + 2]
    assert statistics.mean(post) > 0.93

    # Shape 3: GP's steady state is noisier / weaker than JIT's.
    jit_post = [f for k, f in jit.series if k > 15]
    gp_post = [f for k, f in greedy.series if k > 15]
    assert statistics.mean(gp_post) <= statistics.mean(jit_post) + 1e-9
    assert statistics.pstdev(gp_post) >= statistics.pstdev(jit_post) - 0.01
