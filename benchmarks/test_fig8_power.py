"""Figure 8 — average power consumption per sleeping node.

Paper result: power falls as the sleep period grows (for CCP alone and for
MobiQuery); MobiQuery's increase over bare CCP stays below 0.05 W in every
setting; the late-profile variant (Ta = -3 s) consumes slightly *less* than
Ta = +9 s because warmup periods wake fewer nodes.
"""

from collections import defaultdict

from repro.experiments.figures import run_fig8
from repro.experiments.reporting import format_table


def test_fig8_power(once, emit):
    rows = once(run_fig8)
    emit(
        format_table(
            "Figure 8 — average power per sleeping node (W)",
            ["variant", "Tsleep (s)", "power (W)"],
            [(r.variant, r.sleep_period_s, r.sleeper_power_w) for r in rows],
        )
    )
    by_variant = defaultdict(dict)
    for r in rows:
        by_variant[r.variant][r.sleep_period_s] = r.sleeper_power_w

    sleeps = sorted(next(iter(by_variant.values())).keys())
    ccp = by_variant["CCP (no query)"]

    for variant, series in by_variant.items():
        # Shape 1: longer sleep periods draw less power.
        assert series[sleeps[-1]] < series[sleeps[0]]

    for ta_variant in ("MQ-JIT Ta=-3s", "MQ-JIT Ta=+9s"):
        for sleep_period in sleeps:
            overhead = by_variant[ta_variant][sleep_period] - ccp[sleep_period]
            # Shape 2: MobiQuery's overhead stays under the paper's 0.05 W.
            assert 0.0 <= overhead < 0.05

    # Shape 3: Ta=-3 consumes no more than Ta=+9 (warmup wakes fewer nodes).
    for sleep_period in sleeps:
        assert (
            by_variant["MQ-JIT Ta=-3s"][sleep_period]
            <= by_variant["MQ-JIT Ta=+9s"][sleep_period] + 0.003
        )
