"""Figure 6 — success ratio vs motion-profile advance time (Ta).

Paper result: for each sleep period the success ratio increases with Ta
and converges close to 100% once Ta exceeds the warmup-free threshold
(~(2 Tfresh + Tsleep) / (1 - vu/vp), i.e. ~11 s for Tsleep = 9 s).
"""

from collections import defaultdict

from repro.experiments.figures import run_fig6
from repro.experiments.reporting import format_table


def test_fig6_advance_time(once, emit):
    rows = once(run_fig6)
    emit(
        format_table(
            "Figure 6 — success ratio vs advance time (MQ-JIT)",
            ["Tsleep (s)", "Ta (s)", "success"],
            [(r.sleep_period_s, r.advance_time_s, r.success_ratio) for r in rows],
        )
    )
    by_sleep = defaultdict(list)
    for r in rows:
        by_sleep[r.sleep_period_s].append((r.advance_time_s, r.success_ratio))

    for sleep_period, series in by_sleep.items():
        series.sort()
        values = [s for _, s in series]
        # Shape 1: success grows with advance time (small slack for noise).
        assert values[-1] >= values[0] - 0.02
        assert max(values) == max(values[-2:]) or values[-1] >= 0.9
        # Shape 2: with generous advance time the service is near-perfect.
        assert values[-1] >= 0.85
        # Shape 3: late profiles (negative Ta) measurably hurt.
        assert values[0] <= values[-1]
