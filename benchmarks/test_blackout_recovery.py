"""The blackout-recovery drill: the pinned fault-injection benchmark.

``blackout-recovery-16users`` drops a 100 m disk at the field centre for
20 s (t=30..50) with a 30% radio-corruption window on top (t=35..40),
under a 16-user fleet.  This module gates the robustness acceptance
criteria:

* the scenario *completes* — every session admitted and scored, outage
  periods marked ``degraded`` rather than silently dropped;
* pre-blackout periods are bit-identical to the fault-free twin (the
  fault plane draws from its own RNG stream, so the worlds only diverge
  once the first fault fires);
* post-recovery success is within 5 pp of the fault-free run, where
  "post-recovery" starts two full PSM sleep periods (9 s each) after the
  blackout ends — crashed sleepers rejoin at their next wake window and
  the query trees need a rebuild round, so t > 50 + 2*9 = 68 s.

Measured at the pinned seed (7): fleet mean success 0.61 faulted vs 0.89
fault-free, 47 degraded periods across 8 of 16 sessions, post-recovery
success 0.92 vs 0.96 (gap ~4 pp).
"""

from repro.api.scenarios import get_scenario, run_scenario

#: blackout ends at 50 s; recovery = two sleep periods of sleeper rejoin
BLACKOUT_END_S = 50.0
RECOVERY_WINDOW_S = 2 * 9.0
POST_RECOVERY_CUTOFF_S = BLACKOUT_END_S + RECOVERY_WINDOW_S
#: acceptance bar: post-recovery success within 5 pp of the no-fault run
MAX_POST_RECOVERY_GAP = 0.05


def _success_after(result, cutoff_s: float) -> float:
    records = [
        r
        for s in result.workload.sessions
        for r in s.metrics.records
        if r.deadline > cutoff_s
    ]
    assert records, f"no periods after t={cutoff_s}s"
    return sum(1 for r in records if r.success) / len(records)


def _format_drill(faulted, clean) -> str:
    lines = [
        "Blackout-recovery drill (blackout-recovery-16users, seed 7)",
        "",
        " user  degraded  success(faulted)  success(no-fault)",
        " ----  --------  ----------------  -----------------",
    ]
    clean_by_user = {s.user_id: s for s in clean.workload.sessions}
    for s in faulted.workload.sessions:
        twin = clean_by_user[s.user_id]
        lines.append(
            f" {s.user_id:>4}  {s.degraded_periods:>8}  "
            f"{s.success_ratio:16.3f}  {twin.success_ratio:17.3f}"
        )
    lines += [
        "",
        f"fleet mean success: {faulted.mean_success:.3f} faulted vs "
        f"{clean.mean_success:.3f} fault-free",
        f"post-recovery (t>{POST_RECOVERY_CUTOFF_S:.0f}s) success: "
        f"{_success_after(faulted, POST_RECOVERY_CUTOFF_S):.3f} vs "
        f"{_success_after(clean, POST_RECOVERY_CUTOFF_S):.3f}",
    ]
    return "\n".join(lines)


class TestBlackoutRecovery:
    def test_drill_completes_and_recovers_within_five_points(self, emit, once):
        spec = get_scenario("blackout-recovery-16users")
        faulted = once(run_scenario, spec)
        clean = run_scenario(spec.with_overrides(faults={}))
        emit(_format_drill(faulted, clean))

        # Completes: the whole fleet is admitted and scored.
        assert faulted.admitted == 16
        assert len(faulted.workload.sessions) == 16

        # Degraded periods are *reported*, not dropped: the outage shows
        # up as per-session degraded counts and a clearly lower mean.
        degraded = [s.degraded_periods for s in faulted.workload.sessions]
        assert sum(degraded) > 0
        assert all(s.degraded_periods == 0 for s in clean.workload.sessions)
        assert faulted.mean_success < clean.mean_success

        # Pre-blackout the worlds are bit-identical (dedicated RNG stream:
        # nothing diverges until the first fault fires at t=30).
        first_fault = min(
            b["at_s"] for b in spec.fault_plan().to_dict()["blackouts"]
        )
        for fs, cs in zip(faulted.workload.sessions, clean.workload.sessions):
            f_pre = [(r.k, r.success, r.fidelity) for r in fs.metrics.records
                     if r.deadline < first_fault]
            c_pre = [(r.k, r.success, r.fidelity) for r in cs.metrics.records
                     if r.deadline < first_fault]
            assert f_pre == c_pre

        # The acceptance gate: post-recovery success within 5 pp.
        gap = _success_after(clean, POST_RECOVERY_CUTOFF_S) - _success_after(
            faulted, POST_RECOVERY_CUTOFF_S
        )
        assert gap <= MAX_POST_RECOVERY_GAP, (
            f"post-recovery success gap {gap:.4f} exceeds "
            f"{MAX_POST_RECOVERY_GAP:.2f}"
        )
