"""Hot-path performance harness — events/sec, wall-clock, and gating.

Times the canonical scenarios (the fig4 single-user setting, the 16-user
scaling point, and the heterogeneous-mix service-façade run), writes a
fresh report to ``REPRO_PERF_REPORT`` (default: a per-run temp file —
the committed ``BENCH_perf.json`` is only ever regenerated through the
explicit ``make bench-perf`` flow, so a plain test run cannot dirty the
pinned baseline with machine noise), and enforces three properties:

* **Determinism** (always): each scenario's result fingerprint (frame
  counts, mean success) and event-count fingerprint must equal the pinned
  quick-scale values — a perf "win" that changes what the simulation
  computes fails here, and one that repacks kernel events must re-pin
  ``EVENT_FINGERPRINTS`` deliberately.
* **Event structure** (always): reception end-of-airtime kernel events
  scale O(frames), not O(frames x listeners) — the batching contract of
  the reception pipeline, asserted by a direct event census below.
* **No regression** (opt-in): when ``REPRO_PERF_BASELINE`` points at a
  BENCH_perf.json previously written elsewhere, events/sec may not drop
  more than ``REPRO_PERF_THRESHOLD`` (default 20%) below it.  Same
  machine: use the strict default (``make perf-gate``).  CI diffs the
  fresh measurement against the committed report with a widened threshold,
  because the committed numbers come from a different machine and
  per-core runner speed routinely varies by tens of percent; the wide
  gate still catches structural regressions (the O(overrides^2) PSM
  chain this PR removed was a 3-5x events/sec swing).

The recorded pre-PR baselines (see ``PRE_PR_BASELINE`` in
``repro.experiments.perf``) document the overhaul trajectory: PR 2's
inlining pass (2.1-2.7x) and PR 4's batched reception pipeline + PSM
wake-wheel (a further ~2x wall-clock with ~83% fewer kernel events and
bit-identical results; events/sec is NOT comparable across that pin
because each remaining event does far more work).
"""

import json
import os
from pathlib import Path

from repro.experiments.perf import (
    PRE_PR_BASELINE,
    REGRESSION_THRESHOLD,
    check_regressions,
    fingerprint_mismatches,
    format_perf_report,
    load_report,
    run_perf_suite,
    write_report,
)
from repro.geometry.vec import Vec2
from repro.net.channel import Channel
from repro.net.node import SensorNode
from repro.net.packet import BROADCAST, Frame
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams

#: repeats per scenario; 2 keeps the smoke cheap while absorbing one
#: scheduler hiccup (the minimum is reported)
REPEATS = 2


def test_perf_hotpaths(once, emit, tmp_path):
    report = once(run_perf_suite, repeats=REPEATS)
    emit(format_perf_report(report))
    # Never the committed BENCH_perf.json: that file is a pinned baseline
    # regenerated only via `make bench-perf` alongside an explaining code
    # change.  CI points REPRO_PERF_REPORT at its artifact path.
    report_path = Path(
        os.environ.get("REPRO_PERF_REPORT") or tmp_path / "BENCH_perf.json"
    )
    write_report(report, str(report_path))

    # The artifact must carry both the fresh numbers and the recorded
    # pre-PR baseline, so the speedup trajectory travels with the file.
    written = json.loads(report_path.read_text())
    assert written["pre_pr_baseline"] == PRE_PR_BASELINE
    for name in ("fig4_jit", "scale_16users", "hetero_mix_8users"):
        assert name in written["scenarios"]
        assert written["scenarios"][name]["events_per_sec"] > 0

    # Determinism: speed may vary by machine, results may not.
    mismatches = fingerprint_mismatches(report)
    assert not mismatches, "\n".join(mismatches)

    # Opt-in regression gate against a reference report; threshold
    # overridable for cross-machine comparisons (see module docstring).
    baseline_path = os.environ.get("REPRO_PERF_BASELINE")
    if baseline_path:
        threshold = float(
            os.environ.get("REPRO_PERF_THRESHOLD", REGRESSION_THRESHOLD)
        )
        regressions = check_regressions(
            report, load_report(baseline_path), threshold=threshold
        )
        assert not regressions, "\n".join(regressions)


def _census_run(n_nodes: int, frames: int):
    """Drive ``frames`` broadcasts through one MAC on an ``n_nodes`` clique
    and count end-of-airtime events as they are scheduled."""
    sim = Simulator()
    channel = Channel(sim, comm_range=105.0, bitrate_bps=2e6)
    streams = RandomStreams(11)
    nodes = []
    for i in range(n_nodes):
        # 2 m spacing: every node hears every frame (maximal cohort).
        node = SensorNode(i, Vec2(2.0 * i, 0.0), sim, channel,
                         streams.stream(f"mac-{i}"))
        channel.register_static(node)
        nodes.append(node)
    finish_events = 0
    original = sim.schedule_fast

    def counting_schedule_fast(delay, fn, *args):
        nonlocal finish_events
        if getattr(fn, "__name__", "") == "_finish_transmission":
            finish_events += 1
        original(delay, fn, *args)

    sim.schedule_fast = counting_schedule_fast  # type: ignore[method-assign]
    for _ in range(frames):
        nodes[0].send(Frame("census", 0, BROADCAST, 200))
    sim.run(until=30.0)
    assert channel.frames_sent == frames
    assert channel.frames_delivered == frames * (n_nodes - 1)
    return finish_events, sim.events_executed


def test_reception_events_scale_with_frames_not_listeners():
    """The batching contract: ONE end-of-airtime kernel event per frame,
    and total kernel events independent of the listener-cohort size.

    Before the batch pipeline a frame's receiver-side work was at least
    proportional to listeners in allocated objects; this census pins the
    event-count side: a 20-listener clique costs exactly the same kernel
    events as a 6-listener one for the same frame sequence.
    """
    frames = 40
    finish_small, events_small = _census_run(6, frames)
    finish_large, events_large = _census_run(20, frames)
    assert finish_small == frames  # O(frames), not O(frames x listeners)
    assert finish_large == frames
    assert events_small == events_large
    # Per broadcast frame: one MAC attempt + one end-of-airtime batch
    # event (the MAC completion rides the latter).  Everything beyond that
    # would be per-listener leakage.
    assert events_small <= 2 * frames
