"""Hot-path performance harness — events/sec, wall-clock, and gating.

Times the canonical scenarios (the fig4 single-user setting, the 16-user
scaling point, and the heterogeneous-mix service-façade run), writes
``BENCH_perf.json`` at the repo root, and enforces two properties:

* **Determinism** (always): each scenario's event and frame counts must
  equal the pinned quick-scale fingerprints — a perf "win" that changes
  what the simulation computes fails here.
* **No regression** (opt-in): when ``REPRO_PERF_BASELINE`` points at a
  BENCH_perf.json previously written *on the same machine*, events/sec
  may not drop more than 20% below it.  Wall-clock across different CI
  machines is not comparable, so the cross-run gate stays opt-in; CI
  uploads the fresh report as an artifact instead, building the repo's
  perf trajectory.

The recorded pre-PR baseline (see ``PRE_PR_BASELINE`` in
``repro.experiments.perf``) documents the overhaul this harness landed
with: 2.1-2.7x on both scenarios (machine-noise window decides where in
that range a given run lands), with identical results.
"""

import json
import os
from pathlib import Path

from repro.experiments.perf import (
    PRE_PR_BASELINE,
    REGRESSION_THRESHOLD,
    check_regressions,
    fingerprint_mismatches,
    format_perf_report,
    load_report,
    run_perf_suite,
    write_report,
)

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: repeats per scenario; 2 keeps the smoke cheap while absorbing one
#: scheduler hiccup (the minimum is reported)
REPEATS = 2


def test_perf_hotpaths(once, emit):
    report = once(run_perf_suite, repeats=REPEATS)
    emit(format_perf_report(report))
    write_report(report, str(REPORT_PATH))

    # The artifact must carry both the fresh numbers and the recorded
    # pre-PR baseline, so the speedup trajectory travels with the file.
    written = json.loads(REPORT_PATH.read_text())
    assert written["pre_pr_baseline"] == PRE_PR_BASELINE
    for name in ("fig4_jit", "scale_16users", "hetero_mix_8users"):
        assert name in written["scenarios"]
        assert written["scenarios"][name]["events_per_sec"] > 0

    # Determinism: speed may vary by machine, results may not.
    mismatches = fingerprint_mismatches(report)
    assert not mismatches, "\n".join(mismatches)

    # Opt-in regression gate against a same-machine reference report.
    baseline_path = os.environ.get("REPRO_PERF_BASELINE")
    if baseline_path:
        regressions = check_regressions(
            report, load_report(baseline_path), threshold=REGRESSION_THRESHOLD
        )
        assert not regressions, "\n".join(regressions)
