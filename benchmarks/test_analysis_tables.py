"""Section 5 worked examples — closed form and simulation, paper vs ours.

Tab A (Section 5.2): prefetch speed ~469 mph; storage cost PLjit = 4 vs
PLgp = 58 (14.5x) for the walking-user example; plus measured prefetch
lengths from simulation under the Section 6.1 settings.

Tab B (Section 5.4): contention crossover v* ~ 131 mph; interference
lengths ~4 (JIT) vs ~35 (GP); plus measured interference lengths.

Tab C (Section 5.3): the eq. (16) warmup bound against measured warmup.
"""

import pytest

from repro.core.analysis import (
    AnalysisParams,
    prefetch_length_greedy,
    prefetch_length_jit,
)
from repro.experiments.figures import (
    contention_analysis_table,
    measured_contention,
    measured_storage,
    run_warmup_comparison,
    storage_analysis_table,
)
from repro.experiments.reporting import format_table


def test_storage_table(once, emit):
    rows = storage_analysis_table()
    measured = once(measured_storage)
    emit(
        format_table(
            "Tab A — Section 5.2 storage cost (closed form)",
            ["quantity", "paper", "ours"],
            [(r.quantity, r.paper_value, r.our_value) for r in rows],
        )
        + "\n\n"
        + format_table(
            "Tab A' — measured max prefetch length (Section 6.1 settings)",
            ["scheme", "trees ahead of user"],
            sorted(measured.items()),
        )
    )
    values = {r.quantity: r.our_value for r in rows}
    assert values["vprfh (mph)"] == pytest.approx(469, rel=0.01)
    assert values["PL_jit (trees)"] == 4
    assert values["PL_gp (trees, Td=600s)"] in (58, 59)
    # Simulated: greedy's storage dwarfs JIT's, and JIT obeys eq. (12):
    # ceil((9 + 2*1)/2) + 1 = 7 under the Section 6.1 parameters.
    assert measured["greedy"] > 3 * measured["jit"]
    params = AnalysisParams(2.0, 1.0, 9.0, 4.0, 200.0)
    assert measured["jit"] <= prefetch_length_jit(params)


def test_contention_table(once, emit):
    rows = contention_analysis_table()
    measured = once(measured_contention)
    emit(
        format_table(
            "Tab B — Section 5.4 network contention (closed form)",
            ["quantity", "paper", "ours"],
            [(r.quantity, r.paper_value, r.our_value) for r in rows],
        )
        + "\n\n"
        + format_table(
            "Tab B' — measured interference length (Section 6.1 settings)",
            ["scheme", "interfering tree setups"],
            sorted(measured.items()),
        )
    )
    values = {r.quantity: r.our_value for r in rows}
    assert values["v* (mph)"] == pytest.approx(131, rel=0.01)
    assert values["interfering trees (JIT)"] <= 4
    assert values["interfering trees (GP)"] == 35
    # Simulated: greedy's concurrent tree setups dominate JIT's.
    assert measured["greedy"] > measured["jit"]


def test_warmup_bound(once, emit):
    rows = once(run_warmup_comparison)
    emit(
        format_table(
            "Tab C — Section 5.3 warmup interval: eq. (16) bound vs measured",
            ["Ta (s)", "bound Tw (s)", "measured Tw (s)"],
            [(r.advance_time_s, r.bound_s, r.measured_s) for r in rows],
        )
    )
    for row in rows:
        # eq. (16) is an upper bound; allow one period of slack for the
        # discrete post-change window alignment.
        assert row.measured_s <= row.bound_s + 2.0
    # the bound (and the measurement) shrink as Ta grows
    bounds = [r.bound_s for r in sorted(rows, key=lambda r: r.advance_time_s)]
    assert bounds == sorted(bounds, reverse=True)
