"""Multi-user scaling — per-user success ratio and wall-clock vs N.

The paper evaluates MobiQuery one mobile user at a time; this benchmark
opens the concurrency axis: 1, 4, 16 and 32 users share one network, one
kernel and one protocol instance, each running an independent query
session (staggered arrivals, fleet-sized query areas).

Expected shape:

* at N=4 every user's success ratio stays within 10 percentage points of
  the single-user baseline — concurrent sessions genuinely coexist;
* beyond that the shared medium saturates gracefully (beacon-window
  setup floods and report bursts from overlapping areas collide), so the
  mean degrades smoothly rather than collapsing;
* wall-clock grows roughly linearly with N (events scale with sessions).

Arrival staggering matters: simultaneous arrivals phase-lock every
session's deadlines, and the aligned report storms cost ~10-20 points of
success ratio at N=4 (measured; see the workload quickstart notes).
"""

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.config import MODE_JIT, ExperimentConfig, QueryParams
from repro.experiments.figures import SCALE_PAPER, bench_scale
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_experiment
from repro.workload.arrivals import ARRIVAL_STAGGERED

#: query radius for the fleet runs.  The paper's Rq=150 m covers a third
#: of the 450x450 field per user — 16+ such areas overlap everywhere and
#: only measure saturation.  60 m keeps areas fleet-sized while still
#: spanning dozens of nodes each.
FLEET_RADIUS_M = 60.0

#: stagger between session starts: 2.5 s = one 2 s period plus a
#: quarter-period phase shift, so neighbouring sessions' deadlines
#: interleave instead of phase-locking.
ARRIVAL_SPACING_S = 2.5


@dataclass(frozen=True)
class ScalingRow:
    """One fleet size's measured scaling point."""

    num_users: int
    duration_s: float
    wall_clock_s: float
    success_ratios: Tuple[float, ...]
    mean_success: float
    min_success: float
    mean_fidelity: float
    frames_sent: int
    frames_collided: int
    events_executed: int


def scaling_grid(scale: str) -> Tuple[List[int], float]:
    if scale == SCALE_PAPER:
        return [1, 4, 16, 32], 300.0
    return [1, 4, 16, 32], 120.0


def run_scaling(scale: Optional[str] = None) -> List[ScalingRow]:
    """One shared network per N; all users ride the same kernel run."""
    scale = scale or bench_scale()
    fleet_sizes, duration = scaling_grid(scale)
    base = ExperimentConfig(
        mode=MODE_JIT,
        seed=1,
        duration_s=duration,
        query=QueryParams(radius_m=FLEET_RADIUS_M),
    )
    rows: List[ScalingRow] = []
    for n in fleet_sizes:
        config = base.with_num_users(
            n,
            arrival_process=ARRIVAL_STAGGERED,
            arrival_spacing_s=ARRIVAL_SPACING_S,
        )
        started = time.perf_counter()
        result = run_experiment(config)
        wall = time.perf_counter() - started
        ratios = tuple(result.user_success_ratios)
        rows.append(
            ScalingRow(
                num_users=n,
                duration_s=duration,
                wall_clock_s=wall,
                success_ratios=ratios,
                mean_success=result.mean_user_success_ratio,
                min_success=result.min_user_success_ratio,
                mean_fidelity=result.workload.mean_fidelity(),
                frames_sent=result.frames_sent,
                frames_collided=result.frames_collided,
                events_executed=result.events_executed,
            )
        )
    return rows


def test_multiuser_scaling(once, emit):
    rows = once(run_scaling)
    emit(
        format_table(
            "Multi-user scaling — per-user success and wall-clock vs N "
            f"(staggered {ARRIVAL_SPACING_S} s, Rq={FLEET_RADIUS_M:.0f} m)",
            [
                "users",
                "success mean",
                "success min",
                "fidelity",
                "wall (s)",
                "frames",
                "collided",
            ],
            [
                (
                    r.num_users,
                    f"{r.mean_success:.3f}",
                    f"{r.min_success:.3f}",
                    f"{r.mean_fidelity:.3f}",
                    f"{r.wall_clock_s:.1f}",
                    r.frames_sent,
                    r.frames_collided,
                )
                for r in rows
            ],
        )
    )
    by_n = {r.num_users: r for r in rows}
    assert set(by_n) == {1, 4, 16, 32}

    # Every fleet size ran one session per user on the shared network.
    for r in rows:
        assert len(r.success_ratios) == r.num_users

    # The acceptance bar: at N=4 every user stays within 10 percentage
    # points of the single-user baseline.
    baseline = by_n[1].success_ratios[0]
    assert baseline >= 0.9, "single-user baseline itself is unhealthy"
    for user_id, ratio in enumerate(by_n[4].success_ratios):
        assert ratio >= baseline - 0.10, (
            f"user {user_id} at N=4 fell {baseline - ratio:.3f} below the "
            f"single-user baseline {baseline:.3f}"
        )

    # Saturation is graceful, not a collapse: large fleets still serve
    # most periods for most users.
    assert by_n[16].mean_success >= 0.6
    assert by_n[32].mean_success >= 0.4

    # Work scales with the fleet: more users, more traffic and events.
    assert by_n[32].frames_sent > by_n[4].frames_sent > by_n[1].frames_sent
    assert by_n[32].events_executed > by_n[1].events_executed
