"""Figure 4 — success ratio of MQ-JIT vs MQ-GP vs NP.

Paper result (Section 6.2): MQ-JIT stays near 100% for every sleep period
and user speed; MQ-GP reaches ~90% for short sleep periods and degrades as
the sleep period grows; NP stays below ~35% and degrades with both sleep
period and speed.  The reproduced table must preserve those orderings and
trends (absolute values depend on the MAC substrate).
"""

from collections import defaultdict

from repro.experiments.config import MODE_GREEDY, MODE_JIT, MODE_NP
from repro.experiments.figures import run_fig4
from repro.experiments.reporting import format_table


def test_fig4_success_ratio(once, emit):
    rows = once(run_fig4)
    emit(
        format_table(
            "Figure 4 — success ratio (MQ-JIT / MQ-GP / NP)",
            ["mode", "Tsleep (s)", "speed (m/s)", "success", "fidelity"],
            [
                (
                    r.mode,
                    r.sleep_period_s,
                    f"{r.speed_range[0]:.0f}-{r.speed_range[1]:.0f}",
                    r.success_ratio,
                    r.mean_fidelity,
                )
                for r in rows
            ],
        )
    )
    by_mode = defaultdict(dict)
    for r in rows:
        by_mode[r.mode][(r.sleep_period_s, r.speed_range)] = r.success_ratio

    # Shape 1: JIT dominates NP everywhere, and beats or ties GP.
    for cell, jit_success in by_mode[MODE_JIT].items():
        assert jit_success > by_mode[MODE_NP][cell] + 0.2
        assert jit_success >= by_mode[MODE_GREEDY][cell] - 0.05

    # Shape 2: JIT stays high across every cell (paper: near 100%).
    for jit_success in by_mode[MODE_JIT].values():
        assert jit_success >= 0.8

    # Shape 3: NP is crippled by duty cycling and worsens with sleep period.
    # (At Tsleep ~ Tperiod a beacon window falls inside most periods, so NP
    # retains partial service; it collapses once Tsleep >> Tperiod, which is
    # where the paper's <35% band sits.)
    np_cells = by_mode[MODE_NP]
    speeds = sorted({s for (_, s) in np_cells})
    for speed in speeds:
        series = [np_cells[(ts, speed)] for ts in sorted({t for (t, _) in np_cells})]
        assert series[-1] <= series[0] + 0.05  # non-increasing (with slack)
        assert series[-1] < 0.35  # longest sleep period: paper's NP band
        assert max(series) < 0.8
