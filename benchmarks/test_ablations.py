"""Ablations of this reproduction's design choices (DESIGN.md §4).

Not a paper figure — these benches justify two implementation decisions by
measuring what happens without them:

* **PSM setup redelivery**: buffered setups stay pending across beacon
  windows until their period expires.  One-shot delivery starves sleepers
  whose only window broadcast collided, and greedy prefetching collapses
  entirely (its one shot happens during the initial flood storm).
* **Latency margins**: per the paper's remark that MQ-GP's result latency
  "incurs a significant variance" while MQ-JIT is steady, collector
  delivery margins are compared between the schemes.
"""

import statistics
from dataclasses import replace

from repro.experiments.config import paper_section62_config
from repro.experiments.figures import bench_scale
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_experiment


def _duration() -> float:
    return 300.0 if bench_scale() == "paper" else 120.0


def run_redelivery_ablation():
    rows = []
    for mode in ("jit", "greedy"):
        for redeliver in (True, False):
            config = replace(
                paper_section62_config(
                    mode=mode, sleep_period_s=9.0, seed=1, duration_s=_duration()
                ),
                redeliver_setups=redeliver,
            )
            result = run_experiment(config)
            rows.append(
                (
                    mode,
                    "on" if redeliver else "off",
                    result.metrics.success_ratio(),
                    result.metrics.mean_fidelity(),
                )
            )
    return rows


def test_setup_redelivery_ablation(once, emit):
    rows = once(run_redelivery_ablation)
    emit(
        format_table(
            "Ablation — PSM setup redelivery across beacon windows",
            ["scheme", "redelivery", "success", "fidelity"],
            rows,
        )
    )
    by_key = {(mode, flag): success for mode, flag, success, _ in rows}
    # greedy depends on redelivery hard: its single delivery chance falls
    # into the initial flood storm
    assert by_key[("greedy", "on")] > by_key[("greedy", "off")] + 0.1
    # JIT benefits too (every loss otherwise starves a sleeper for good)
    assert by_key[("jit", "on")] >= by_key[("jit", "off")] - 0.02


def run_parent_upgrade_ablation():
    rows = []
    for seed in (1, 2, 3):
        for upgrade in (True, False):
            config = replace(
                paper_section62_config(
                    mode="jit", sleep_period_s=9.0, seed=seed, duration_s=_duration()
                ),
                parent_upgrade=upgrade,
            )
            result = run_experiment(config)
            rows.append(
                (
                    seed,
                    "on" if upgrade else "off",
                    result.metrics.success_ratio(),
                    result.metrics.mean_fidelity(),
                )
            )
    return rows


def test_parent_upgrade_ablation(once, emit):
    """First-sender flood parents occasionally sit *farther* from the
    collector than their children, inverting the eq. (1) sub-deadline order
    and dropping whole subtrees.  Upgrading to the closest heard sender
    removes those losses; without it mean fidelity must not be better."""
    rows = once(run_parent_upgrade_ablation)
    emit(
        format_table(
            "Ablation — parent upgrade in the setup flood (MQ-JIT)",
            ["seed", "upgrade", "success", "fidelity"],
            rows,
        )
    )
    on = statistics.mean(fid for _, flag, _, fid in rows if flag == "on")
    off = statistics.mean(fid for _, flag, _, fid in rows if flag == "off")
    assert on >= off - 0.005
    # and with the upgrade the service is solidly in the paper's band
    on_success = statistics.mean(s for _, flag, s, _ in rows if flag == "on")
    assert on_success >= 0.85
