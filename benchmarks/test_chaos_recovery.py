"""The chaos-recovery drill: the pinned wire-fault + crash benchmark.

``chaos-recovery`` slams the rush-hour burst through a daemon whose wire
is actively hostile — connection resets, injected 5xx, truncated bodies,
and response delays, all drawn from the dedicated ``"faults.wire"``
stream — then simulates a SIGKILL (the WAL file is read back exactly as
the dying process left it: flushed prefix only, buffered tail lost).
This module gates the PR-9 robustness acceptance criteria:

* the retrying slam client **completes 100% of admitted sessions** with
  zero errors and zero gave-ups — bounded decorrelated-jitter retries
  absorb every chaos action;
* **zero double-admits** — truncated submit responses force client
  retries, and the idempotency keys dedup every one of them: WAL submit
  ops == admitted sessions == unique session ids;
* the killed daemon's **flushed WAL prefix replays bit-identically**
  (two independent executions agree on every fingerprint).

Measured at the pinned chaos plan (probs 0.06/0.10/0.06/0.06, seed 3,
12-user burst, 8 retries): typically ~10-25 chaos actions fire per run,
absorbed by ~1.1-1.6 mean attempts per request.
"""

import threading

from repro.api.scenarios import get_scenario
from repro.serve.daemon import ServeApp, make_server
from repro.serve.log import load_partial_log, verify_partial_log
from repro.serve.slam import SlamConfig, run_slam

#: the pinned chaos plan: every wire failure mode on, none overwhelming
CHAOS_WIRE = {
    "reset_prob": 0.06,
    "delay_prob": 0.10,
    "delay_s": 0.05,
    "error_prob": 0.06,
    "truncate_prob": 0.06,
}
#: bounded retries per request — enough that P(gave up) is negligible
SLAM_RETRIES = 8


def _format_drill(report, chaos_snapshot, wal_ops) -> str:
    counts = report["counts"]
    attempts = report["retry"]["attempts"] or {}
    lines = [
        "Chaos-recovery drill (rush-hour-burst + wire chaos + SIGKILL)",
        "",
        " wire chaos fired   : "
        f"{chaos_snapshot['resets']} resets, "
        f"{chaos_snapshot['injected_errors']} injected 5xx, "
        f"{chaos_snapshot['truncations']} truncations, "
        f"{chaos_snapshot['delays']} delays "
        f"({chaos_snapshot['requests']} requests seen)",
        f" slam               : {counts['submitted']} submitted, "
        f"{counts['admitted']} admitted, {counts['errors']} errors",
        f" retries absorbed   : {counts['retries']} "
        f"(mean attempts {attempts.get('mean', 1.0):.2f}, "
        f"p99 {attempts.get('p99', 1.0):.0f}; gave up {counts['gave_up']})",
        f" sessions completed : {counts['sessions_finished']} / "
        f"{counts['admitted']}",
        f" WAL flushed prefix : {wal_ops} ops replayed bit-identically",
    ]
    return "\n".join(lines)


class TestChaosRecovery:
    def test_drill_completes_dedups_and_replays(self, emit, once, tmp_path):
        spec = get_scenario("rush-hour-burst").with_overrides(
            duration_s=30.0, faults={"wire": CHAOS_WIRE}
        )
        wal_path = str(tmp_path / "SERVE_chaos-recovery.wal")
        app = ServeApp(
            spec, time_scale=6.0, wal_path=wal_path, wal_flush_every=2
        )
        assert app.chaos is not None  # the plan actually armed the plane
        app.start()
        server = make_server(app, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address

        config = SlamConfig(
            url=f"http://{host}:{port}",
            rate=16.0,
            clients=4,
            duration_s=90.0,
            retries=SLAM_RETRIES,
            seed=1,
        )
        report = once(run_slam, spec, config)

        # The SIGKILL: stop answering and read the WAL exactly as it sits
        # on disk — the dying daemon never drains, flushes, or closes it.
        server.shutdown()
        server.server_close()
        chaos_snapshot = app.chaos.snapshot()
        data = load_partial_log(wal_path)
        emit(_format_drill(report, chaos_snapshot, len(data["ops"])))

        # Chaos actually fired (else the drill proved nothing).
        assert (
            chaos_snapshot["resets"]
            + chaos_snapshot["injected_errors"]
            + chaos_snapshot["truncations"]
            + chaos_snapshot["delays"]
        ) > 0, chaos_snapshot

        # 100% of the burst admitted and completed, zero errors/gave-ups.
        counts = report["counts"]
        assert counts["errors"] == 0, report["errors"][:5]
        assert counts["admitted"] == 12
        assert counts["sessions_finished"] == counts["admitted"]
        assert counts["gave_up"] == 0
        assert counts["stuck_threads"] == 0

        # Zero double-admits: every WAL submit op is a distinct session,
        # and the flushed count matches what the daemon durably promised.
        submits = [op for op in data["ops"] if op["op"] == "submit"]
        assert len(submits) <= counts["admitted"]  # tail may be unflushed
        assert len(submits) >= counts["admitted"] - (app.log.flush_every - 1)
        assert len({op["session"] for op in submits}) == len(submits)
        assert len(data["ops"]) == app.log.flushed_ops

        # The flushed prefix replays bit-identically, twice over.
        ok, first, second = verify_partial_log(data)
        assert ok, f"prefix replay diverged:\n{first}\n{second}"
        assert len(first["sessions"]) == len(submits)
