"""Figure 7 — unexpected motion changes and GPS location errors.

Paper result (Tsleep = 9 s): success drops as the user changes motion more
often; GPS error makes prediction worse (err = 10 m below err = 5 m below
exact); yet even frequent changes every 42 s keep the service useful
(paper: ~79% of results delivered), and infrequent-change curves approach
the error-free level.
"""

from collections import defaultdict

from repro.experiments.figures import run_fig7
from repro.experiments.reporting import format_table


def test_fig7_motion_changes(once, emit):
    rows = once(run_fig7)
    emit(
        format_table(
            "Figure 7 — success ratio vs motion-change interval",
            ["curve", "interval (s)", "success"],
            [(r.curve, r.change_interval_s, r.success_ratio) for r in rows],
        )
    )
    by_curve = defaultdict(dict)
    for r in rows:
        by_curve[r.curve][r.change_interval_s] = r.success_ratio

    intervals = sorted(next(iter(by_curve.values())).keys())
    shortest, longest = intervals[0], intervals[-1]

    for curve, series in by_curve.items():
        # Shape 1: rarer motion changes never hurt (with noise slack).
        assert series[longest] >= series[shortest] - 0.08
        # Shape 2: the service stays useful even under frequent changes.
        assert series[shortest] >= 0.25

    # Shape 3: location error degrades success relative to exact profiles.
    if "Ta=0s" in by_curve and "Ta=-8s,err=10m" in by_curve:
        for interval in intervals:
            assert by_curve["Ta=-8s,err=10m"][interval] <= by_curve["Ta=0s"][interval] + 0.05
