"""Benchmark harness configuration.

Benchmarks regenerate every data figure and worked example of the paper.
By default they run at ``quick`` scale (reduced grid, shorter sessions —
trends preserved).  Run at the paper's full scale with::

    REPRO_BENCH_SCALE=paper pytest benchmarks/ --benchmark-only

Each benchmark prints the reproduced table/series through the ``emit``
fixture, which suspends pytest's output capture so the tables land on the
real stdout (and in ``bench_output.txt`` when tee'd) even without ``-s``.
"""

import pytest


@pytest.fixture
def emit(pytestconfig):
    """Print a reproduction table on the uncaptured terminal stdout."""
    capman = pytestconfig.pluginmanager.getplugin("capturemanager")

    def _emit(text: str) -> None:
        if capman is not None:
            with capman.global_and_fixture_disabled():
                _write(text)
        else:  # pragma: no cover - capture plugin always present
            _write(text)

    return _emit


def _write(text: str) -> None:
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72, flush=True)


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulations are long)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
