"""Benchmark package: regenerates every figure/table of the paper."""
