"""The daemon's submission log — and the replay that proves the wire.

Every request the daemon accepts *or rejects* is appended as one op:
``("submit", sim_now, payload, decision)`` / ``("cancel", sim_now,
session)``.  That ordered log plus the scenario spec is a complete
deterministic description of the run: rebuilding the backend with a
:class:`~repro.cluster.transport.ReplayAdmissionPolicy` over the
recorded decisions, advancing the clock to each op's recorded sim time,
and re-applying the ops reproduces the live run bit for bit — the same
sessions, the same frame and event counters.  (Rejected submissions are
replayed too: path synthesis consumes mobility-RNG draws before the
admission verdict, so skipping one would desynchronise every later
draw.)

``repro replay SERVE_<name>.json`` runs :func:`verify_submission_log`
to check a recorded run's fingerprints — the wire layer provably adds
no physics.

Crash safety: when constructed with ``wal_path``, the log doubles as an
append-on-commit write-ahead log — every recorded op is appended as one
JSON line and fsync'd every ``flush_every`` ops, so a SIGKILL'd daemon
leaves a readable flushed prefix on disk.  ``repro replay --partial``
loads that prefix with :func:`load_partial_log` (tolerating a line
truncated mid-write by the crash) and :func:`verify_partial_log` proves
it replays bit-identically: no recorded fingerprints survive a SIGKILL,
so the proof replays the prefix twice and compares.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, TextIO, Tuple

from ..api.admission import AdmissionDecision
from ..api.backend import BackendStats
from ..api.scenarios import ScenarioSpec, build_backend, request_from_payload
from ..cluster.transport import (
    ReplayAdmissionPolicy,
    decision_from_dict,
    decision_to_dict,
)
from ..workload.engine import WorkloadResult

#: the log's format tag (bump on incompatible changes)
LOG_FORMAT = "repro-serve-log/1"
#: the write-ahead log's format tag (JSONL: header line, then op lines)
WAL_FORMAT = "repro-serve-wal/1"


def result_fingerprints(
    workload: WorkloadResult, stats: BackendStats
) -> Dict:
    """What live and replayed runs must agree on, bit for bit.

    Per-session scores plus the physics counters — all JSON-exact
    (floats round-trip, ints stay ints), so a fingerprint read back from
    disk compares equal to a freshly computed one.
    """
    return {
        "sessions": [
            [s.user_id, s.success_ratio, s.deliveries, s.degraded_periods]
            for s in workload.sessions
        ],
        "frames_sent": stats.frames_sent,
        "frames_collided": stats.frames_collided,
        "frames_delivered": stats.frames_delivered,
    }


class SubmissionLog:
    """Ordered record of every op a live daemon applied to its backend.

    With ``wal_path`` set the record is also crash-safe: ops are
    appended to a JSONL write-ahead log as they commit and fsync'd every
    ``flush_every`` ops (the durability/throughput dial).  Callers hold
    the daemon's app lock around ``record_*``, so the WAL needs no lock
    of its own.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        wal_path: Optional[str] = None,
        flush_every: int = 1,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.spec = spec
        self.ops: List[Dict] = []
        self.wal_path = wal_path
        self.flush_every = int(flush_every)
        self._wal: Optional[TextIO] = None
        self._written = 0
        self._unflushed = 0
        #: how many ops are durably on disk (survive SIGKILL)
        self.flushed_ops = 0
        if wal_path is not None:
            self._wal = open(wal_path, "w", encoding="utf-8")
            self._wal.write(
                json.dumps(
                    {"format": WAL_FORMAT, "scenario": spec.to_dict()},
                    sort_keys=True,
                )
                + "\n"
            )
            self._flush_wal()

    def _append_wal(self, op: Dict) -> None:
        if self._wal is None:
            return
        self._wal.write(json.dumps(op, sort_keys=True) + "\n")
        self._written += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self._flush_wal()

    def _flush_wal(self) -> None:
        if self._wal is None:
            return
        self._wal.flush()
        os.fsync(self._wal.fileno())
        self.flushed_ops = self._written
        self._unflushed = 0

    def close_wal(self) -> None:
        """Final flush + close (clean shutdown; a SIGKILL never gets here)."""
        if self._wal is not None:
            self._flush_wal()
            self._wal.close()
            self._wal = None

    def record_submit(
        self,
        now: float,
        session: int,
        payload: Dict,
        decision: AdmissionDecision,
    ) -> None:
        op = {
            "op": "submit",
            "now": now,
            "session": session,
            "payload": dict(payload),
            "decision": decision_to_dict(decision),
        }
        self.ops.append(op)
        self._append_wal(op)

    def record_cancel(self, now: float, session: int) -> None:
        op = {"op": "cancel", "now": now, "session": session}
        self.ops.append(op)
        self._append_wal(op)

    def to_dict(self, fingerprints: Optional[Dict] = None) -> Dict:
        data = {
            "format": LOG_FORMAT,
            "scenario": self.spec.to_dict(),
            "ops": list(self.ops),
        }
        if fingerprints is not None:
            data["fingerprints"] = fingerprints
        return data


def replay_submission_log(data: Dict) -> Dict:
    """Re-execute a recorded run in-process; return its fingerprints.

    Deterministic: the same log always yields the same fingerprints,
    and they match the live daemon's — that is the acceptance test.
    """
    if data.get("format") != LOG_FORMAT:
        raise ValueError(
            f"unsupported log format {data.get('format')!r}; "
            f"expected {LOG_FORMAT!r}"
        )
    spec = ScenarioSpec.from_dict(data["scenario"])
    ops = list(data.get("ops", ()))
    decisions = [
        decision_from_dict(op["decision"]) for op in ops if op["op"] == "submit"
    ]
    backend = build_backend(spec, admission=ReplayAdmissionPolicy(decisions))
    handles: Dict[int, object] = {}
    clock = 0.0
    for op in ops:
        now = float(op["now"])
        if now > clock:
            backend.advance(now)
            clock = now
        if op["op"] == "submit":
            handles[int(op["session"])] = backend.submit(
                request_from_payload(op["payload"])
            )
        elif op["op"] == "cancel":
            backend.cancel(handles[int(op["session"])])
        else:
            raise ValueError(f"unknown log op {op['op']!r}")
    workload = backend.close()
    return result_fingerprints(workload, backend.stats())


def load_partial_log(path: str) -> Dict:
    """Read a (possibly SIGKILL-truncated) WAL into replayable log form.

    The header line must parse — a WAL whose very first fsync never
    landed is unreadable and raises ``ValueError``.  Op lines are read
    until the first one that does not parse: a crash can only truncate
    the *tail* of the file (appends are sequential), so everything
    before the torn line is exactly the flushed prefix.
    """
    header: Optional[Dict] = None
    ops: List[Dict] = []
    truncated = False
    with open(path, "r", encoding="utf-8") as fh:
        for index, line in enumerate(fh):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
            except ValueError:
                truncated = True
                break
            if index == 0:
                if not isinstance(entry, dict) or entry.get("format") != WAL_FORMAT:
                    raise ValueError(
                        f"{path} is not a {WAL_FORMAT} write-ahead log "
                        f"(header: {entry!r})"
                    )
                header = entry
            else:
                ops.append(entry)
    if header is None:
        raise ValueError(f"{path} has no readable WAL header line")
    return {
        "format": LOG_FORMAT,
        "scenario": header["scenario"],
        "ops": ops,
        "wal_truncated_tail": truncated,
    }


def verify_partial_log(data: Dict) -> Tuple[bool, Dict, Dict]:
    """Prove a flushed WAL prefix is deterministic: replay it twice.

    A SIGKILL'd daemon wrote no fingerprints, so there is nothing
    recorded to compare against — instead the prefix is re-executed
    through two independently built backends, and bit-identical
    fingerprints from both is the crash-safety guarantee ``repro
    replay --partial`` gates on.
    """
    first = replay_submission_log(data)
    second = replay_submission_log(data)
    canon_first = json.loads(json.dumps(first))
    canon_second = json.loads(json.dumps(second))
    return canon_first == canon_second, first, second


def verify_submission_log(data: Dict) -> Tuple[bool, Optional[Dict], Dict]:
    """Replay a log and compare against its recorded fingerprints.

    Returns ``(ok, recorded, replayed)``; ``recorded`` is None (and
    ``ok`` False) when the log carries no fingerprints to check against.
    The comparison normalises through JSON so a log read back from disk
    and an in-memory one verify identically.
    """
    recorded = data.get("fingerprints")
    replayed = replay_submission_log(data)
    if recorded is None:
        return False, None, replayed
    canon = json.loads(json.dumps(recorded))
    return canon == json.loads(json.dumps(replayed)), recorded, replayed


__all__ = [
    "LOG_FORMAT",
    "WAL_FORMAT",
    "SubmissionLog",
    "load_partial_log",
    "replay_submission_log",
    "result_fingerprints",
    "verify_partial_log",
    "verify_submission_log",
]
