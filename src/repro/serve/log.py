"""The daemon's submission log — and the replay that proves the wire.

Every request the daemon accepts *or rejects* is appended as one op:
``("submit", sim_now, payload, decision)`` / ``("cancel", sim_now,
session)``.  That ordered log plus the scenario spec is a complete
deterministic description of the run: rebuilding the backend with a
:class:`~repro.cluster.transport.ReplayAdmissionPolicy` over the
recorded decisions, advancing the clock to each op's recorded sim time,
and re-applying the ops reproduces the live run bit for bit — the same
sessions, the same frame and event counters.  (Rejected submissions are
replayed too: path synthesis consumes mobility-RNG draws before the
admission verdict, so skipping one would desynchronise every later
draw.)

``repro replay SERVE_<name>.json`` runs :func:`verify_submission_log`
to check a recorded run's fingerprints — the wire layer provably adds
no physics.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..api.admission import AdmissionDecision
from ..api.backend import BackendStats
from ..api.scenarios import ScenarioSpec, build_backend, request_from_payload
from ..cluster.transport import (
    ReplayAdmissionPolicy,
    decision_from_dict,
    decision_to_dict,
)
from ..workload.engine import WorkloadResult

#: the log's format tag (bump on incompatible changes)
LOG_FORMAT = "repro-serve-log/1"


def result_fingerprints(
    workload: WorkloadResult, stats: BackendStats
) -> Dict:
    """What live and replayed runs must agree on, bit for bit.

    Per-session scores plus the physics counters — all JSON-exact
    (floats round-trip, ints stay ints), so a fingerprint read back from
    disk compares equal to a freshly computed one.
    """
    return {
        "sessions": [
            [s.user_id, s.success_ratio, s.deliveries, s.degraded_periods]
            for s in workload.sessions
        ],
        "frames_sent": stats.frames_sent,
        "frames_collided": stats.frames_collided,
        "frames_delivered": stats.frames_delivered,
    }


class SubmissionLog:
    """Ordered record of every op a live daemon applied to its backend."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.ops: List[Dict] = []

    def record_submit(
        self,
        now: float,
        session: int,
        payload: Dict,
        decision: AdmissionDecision,
    ) -> None:
        self.ops.append(
            {
                "op": "submit",
                "now": now,
                "session": session,
                "payload": dict(payload),
                "decision": decision_to_dict(decision),
            }
        )

    def record_cancel(self, now: float, session: int) -> None:
        self.ops.append({"op": "cancel", "now": now, "session": session})

    def to_dict(self, fingerprints: Optional[Dict] = None) -> Dict:
        data = {
            "format": LOG_FORMAT,
            "scenario": self.spec.to_dict(),
            "ops": list(self.ops),
        }
        if fingerprints is not None:
            data["fingerprints"] = fingerprints
        return data


def replay_submission_log(data: Dict) -> Dict:
    """Re-execute a recorded run in-process; return its fingerprints.

    Deterministic: the same log always yields the same fingerprints,
    and they match the live daemon's — that is the acceptance test.
    """
    if data.get("format") != LOG_FORMAT:
        raise ValueError(
            f"unsupported log format {data.get('format')!r}; "
            f"expected {LOG_FORMAT!r}"
        )
    spec = ScenarioSpec.from_dict(data["scenario"])
    ops = list(data.get("ops", ()))
    decisions = [
        decision_from_dict(op["decision"]) for op in ops if op["op"] == "submit"
    ]
    backend = build_backend(spec, admission=ReplayAdmissionPolicy(decisions))
    handles: Dict[int, object] = {}
    clock = 0.0
    for op in ops:
        now = float(op["now"])
        if now > clock:
            backend.advance(now)
            clock = now
        if op["op"] == "submit":
            handles[int(op["session"])] = backend.submit(
                request_from_payload(op["payload"])
            )
        elif op["op"] == "cancel":
            backend.cancel(handles[int(op["session"])])
        else:
            raise ValueError(f"unknown log op {op['op']!r}")
    workload = backend.close()
    return result_fingerprints(workload, backend.stats())


def verify_submission_log(data: Dict) -> Tuple[bool, Optional[Dict], Dict]:
    """Replay a log and compare against its recorded fingerprints.

    Returns ``(ok, recorded, replayed)``; ``recorded`` is None (and
    ``ok`` False) when the log carries no fingerprints to check against.
    The comparison normalises through JSON so a log read back from disk
    and an in-memory one verify identically.
    """
    recorded = data.get("fingerprints")
    replayed = replay_submission_log(data)
    if recorded is None:
        return False, None, replayed
    canon = json.loads(json.dumps(recorded))
    return canon == json.loads(json.dumps(replayed)), recorded, replayed


__all__ = [
    "LOG_FORMAT",
    "SubmissionLog",
    "replay_submission_log",
    "result_fingerprints",
    "verify_submission_log",
]
