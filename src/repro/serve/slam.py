"""``repro slam`` — the load generator that proves the daemon.

Replays a scenario's arrival process against a live ``repro serve`` at a
configured rate from N concurrent client identities, streams every
admitted session's outcomes, and reports admission/latency/success
percentiles.  The daemon records each submission in its replayable log,
so a slam run is simultaneously a load test and a determinism proof:
``repro replay SERVE_<name>.json`` re-executes it in-process and must
reproduce the daemon's result fingerprints bit for bit.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..api.scenarios import ScenarioSpec, build_request_payloads
from .client import RetryPolicy, ServeClient
from .errors import WireError
from .wire import summarize


@dataclass(frozen=True)
class SlamConfig:
    """How hard to push: arrival rate, concurrency, and wall budget."""

    url: str
    #: submissions per wall second
    rate: float = 8.0
    #: concurrent client identities (tokens ``slam-0`` .. ``slam-N-1``)
    clients: int = 2
    #: wall-clock budget; sessions still live at the end are cancelled
    duration_s: float = 120.0
    #: long-poll wait per results call
    wait_s: float = 0.5
    #: per-request HTTP timeout (recorded in the report config)
    timeout_s: float = 10.0
    #: bounded retries per logical request (0 = fail fast, the old way)
    retries: int = 3
    #: root seed of the clients' backoff streams
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"slam rate must be > 0, got {self.rate}")
        if self.clients < 1:
            raise ValueError(f"slam clients must be >= 1, got {self.clients}")
        if self.duration_s <= 0:
            raise ValueError(
                f"slam duration must be > 0, got {self.duration_s}"
            )
        if self.wait_s < 0:
            raise ValueError(f"slam wait must be >= 0, got {self.wait_s}")
        if self.timeout_s <= 0:
            raise ValueError(f"slam timeout must be > 0, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"slam retries must be >= 0, got {self.retries}")
        if self.seed < 0:
            raise ValueError(f"slam seed must be >= 0, got {self.seed}")


class _Worker:
    """One client identity: its session queue and streaming thread."""

    def __init__(self, index: int, config: SlamConfig) -> None:
        self.index = index
        self.client = ServeClient(
            config.url,
            f"slam-{index}",
            timeout_s=config.timeout_s,
            retry=RetryPolicy(
                max_attempts=config.retries + 1,
                base_s=0.05,
                cap_s=1.0,
                seed=config.seed,
            ),
        )
        self.lock = threading.Lock()
        #: sessions assigned by the submitter, not yet picked up
        self.inbox: List[Dict] = []
        self.poll_ms: List[float] = []
        self.sessions: List[Dict] = []
        self.errors: List[Dict] = []

    def assign(self, sid: int, num_periods: int) -> None:
        with self.lock:
            self.inbox.append(
                {
                    "session": sid,
                    "num_periods": num_periods,
                    "after": 0,
                    "on_time": 0,
                    "delivered": 0,
                    "received": 0,
                    "missed": 0,
                }
            )

    def stream(
        self,
        config: SlamConfig,
        deadline: float,
        submit_done: threading.Event,
    ) -> None:
        """Poll every assigned session until done, deadline, or drained."""
        live: List[Dict] = []
        while True:
            with self.lock:
                live.extend(self.inbox)
                self.inbox.clear()
            if not live:
                if submit_done.is_set():
                    return
                time.sleep(0.02)
                continue
            past_deadline = time.monotonic() > deadline
            for state in list(live):
                sid = state["session"]
                try:
                    if past_deadline:
                        self.client.cancel(sid)
                        state["cancelled"] = True
                    # Long-poll only when this worker has a single live
                    # session; otherwise short-poll to keep them all moving.
                    wait = config.wait_s if len(live) == 1 else 0.1
                    t0 = time.perf_counter()
                    resp = self.client.results(
                        sid,
                        after=state["after"],
                        wait_s=0.0 if past_deadline else wait,
                    )
                except WireError as exc:
                    # Daemon gone (all retries exhausted): record the
                    # typed failure and drop the session instead of
                    # dying silently and stranding the join.
                    self.errors.append({"session": sid, "error": str(exc)})
                    live.remove(state)
                    self.sessions.append(state)
                    continue
                self.poll_ms.append((time.perf_counter() - t0) * 1000.0)
                if "error" in resp:
                    self.errors.append({"session": sid, "response": resp})
                    live.remove(state)
                    self.sessions.append(state)
                    continue
                for outcome in resp["outcomes"]:
                    state["received"] += 1
                    state["delivered"] += 1 if outcome["delivered"] else 0
                    state["on_time"] += 1 if outcome["on_time"] else 0
                    state["after"] = max(state["after"], outcome["k"])
                state["missed"] += resp["missed"]
                if resp["done"] or (past_deadline and not resp["outcomes"]):
                    state["status"] = resp["status"]
                    live.remove(state)
                    self.sessions.append(state)


def run_slam(spec: ScenarioSpec, config: SlamConfig) -> Dict:
    """Drive one slam run end to end; returns the report (plain data).

    Raises :class:`~repro.serve.errors.WireError`
    (``daemon-unreachable``) when no daemon answers at ``config.url``.
    """
    payloads = sorted(
        build_request_payloads(spec), key=lambda p: p.get("start_s", 0.0)
    )
    workers = [_Worker(i, config) for i in range(config.clients)]
    workers[0].client.healthz()  # fail fast (and typed) on a dead daemon

    submit_ms: List[float] = []
    submissions: List[Dict] = []
    errors: List[Dict] = []
    submit_done = threading.Event()
    t_start = time.monotonic()
    deadline = t_start + config.duration_s

    threads = [
        threading.Thread(
            target=worker.stream,
            args=(config, deadline, submit_done),
            name=f"slam-stream-{worker.index}",
            daemon=True,
        )
        for worker in workers
    ]
    for thread in threads:
        thread.start()

    admitted = rejected = 0
    try:
        for index, payload in enumerate(payloads):
            due = t_start + index / config.rate
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            if time.monotonic() > deadline:
                errors.append(
                    {
                        "index": index,
                        "error": "wall budget exhausted before submission",
                    }
                )
                continue
            worker = workers[index % len(workers)]
            t0 = time.perf_counter()
            status, resp = worker.client.submit(payload)
            submit_ms.append((time.perf_counter() - t0) * 1000.0)
            submissions.append(
                {
                    "index": index,
                    "client": worker.index,
                    "status": status,
                    "wall_s": time.monotonic() - t_start,
                    "session": resp.get("session"),
                    "response": resp,
                }
            )
            if status == 201:
                admitted += 1
                worker.assign(resp["session"], resp["num_periods"])
            elif (
                status == 409
                and resp.get("error", {}).get("code") == "admission-rejected"
            ):
                rejected += 1
            else:
                errors.append({"index": index, "status": status, "response": resp})
    finally:
        submit_done.set()
    join_deadline_s = config.duration_s + 30.0
    for thread in threads:
        thread.join(timeout=join_deadline_s)
    # A thread still alive after its join deadline is a wedged client —
    # report it loudly (it counts as an error) instead of silently
    # pretending the run completed.
    stuck = [thread.name for thread in threads if thread.is_alive()]
    for name in stuck:
        errors.append(
            {
                "thread": name,
                "error": (
                    f"stream thread failed to join within "
                    f"{join_deadline_s:.0f}s"
                ),
            }
        )

    sessions = [s for w in workers for s in w.sessions]
    poll_ms = [ms for w in workers for ms in w.poll_ms]
    errors.extend(e for w in workers for e in w.errors)
    success_ratios = [
        s["on_time"] / s["num_periods"] for s in sessions if s["num_periods"]
    ]
    retry_counters: Dict[str, int] = {}
    attempts_all: List[int] = []
    for worker in workers:
        counters, attempts = worker.client.counters_snapshot()
        for key, value in counters.items():
            retry_counters[key] = retry_counters.get(key, 0) + value
        attempts_all.extend(attempts)
    wall_s = time.monotonic() - t_start
    submitted = len(submissions)
    return {
        "scenario": spec.name,
        "url": config.url,
        "config": {
            "rate": config.rate,
            "clients": config.clients,
            "duration_s": config.duration_s,
            "wait_s": config.wait_s,
            "timeout_s": config.timeout_s,
            "retries": config.retries,
            "seed": config.seed,
        },
        "counts": {
            "payloads": len(payloads),
            "submitted": submitted,
            "admitted": admitted,
            "rejected": rejected,
            "errors": len(errors),
            "sessions_finished": len(sessions),
            "outcomes": sum(s["received"] for s in sessions),
            "on_time": sum(s["on_time"] for s in sessions),
            "ring_missed": sum(s["missed"] for s in sessions),
            "retries": retry_counters.get("retries", 0),
            "shed": (
                retry_counters.get("rate_limited", 0)
                + retry_counters.get("overloaded", 0)
            ),
            "gave_up": retry_counters.get("gave_up", 0),
            "stuck_threads": len(stuck),
        },
        "wall_s": wall_s,
        "achieved_rate": submitted / wall_s if wall_s > 0 else 0.0,
        "latency_ms": {
            "submit": summarize(submit_ms),
            "poll": summarize(poll_ms),
        },
        "success": summarize(success_ratios),
        "retry": {
            "counters": retry_counters,
            "attempts": summarize([float(a) for a in attempts_all]),
        },
        "errors": errors[:50],
        "submissions": submissions,
    }


def markdown_table(report: Dict) -> str:
    """The slam report's headline numbers as a markdown table."""
    counts = report["counts"]
    submit = report["latency_ms"]["submit"] or {}
    poll = report["latency_ms"]["poll"] or {}
    success = report["success"] or {}

    def ms(stats: Dict, key: str) -> str:
        return f"{stats[key]:.1f}" if key in stats else "-"

    def ratio(stats: Dict, key: str) -> str:
        return f"{stats[key]:.3f}" if key in stats else "-"

    lines = [
        "| metric | value |",
        "|---|---|",
        f"| scenario | {report['scenario']} |",
        f"| submitted / admitted / rejected | {counts['submitted']} / "
        f"{counts['admitted']} / {counts['rejected']} |",
        f"| errors | {counts['errors']} |",
        f"| achieved rate (req/s) | {report['achieved_rate']:.2f} |",
        f"| outcomes streamed (on-time) | {counts['outcomes']} "
        f"({counts['on_time']}) |",
        f"| retries / shed / gave-up | {counts['retries']} / "
        f"{counts['shed']} / {counts['gave_up']} |",
        f"| submit latency p50/p99 (ms) | {ms(submit, 'p50')} / "
        f"{ms(submit, 'p99')} |",
        f"| poll latency p50/p99 (ms) | {ms(poll, 'p50')} / "
        f"{ms(poll, 'p99')} |",
        f"| session success mean/p50/p99 | {ratio(success, 'mean')} / "
        f"{ratio(success, 'p50')} / {ratio(success, 'p99')} |",
        f"| wall time (s) | {report['wall_s']:.1f} |",
    ]
    return "\n".join(lines)


def write_slam_outputs(
    report: Dict, out_dir: str = ".", name: Optional[str] = None
) -> str:
    """Write ``SLAM_<name>.json`` (and return its path)."""
    safe = (name or report["scenario"]).replace("/", "-").replace(" ", "-")
    path = os.path.join(out_dir, f"SLAM_{safe}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


__all__ = [
    "SlamConfig",
    "markdown_table",
    "run_slam",
    "write_slam_outputs",
]
