"""The daemon's overload-resilient serving edge.

Two layers of load shedding, both applied *before* a submit touches the
backend, the admission policy, or the submission log — a shed request
consumes zero RNG draws and leaves zero state, so the edge can never
perturb replay determinism:

* **Per-tenant token bucket** — each token (tenant) gets ``rate``
  submits per second with a ``burst`` allowance.  An empty bucket is a
  typed ``429 rate-limited`` with a ``Retry-After`` computed from the
  exact refill arithmetic.
* **Adaptive overload guard** — fed by the *live* backend state: the
  number of live sessions and the pump's pacing lag (how far the pump
  has fallen behind the wall-clock schedule ``time_scale`` promises).
  Breaching either ceiling is a typed ``503 overloaded`` carrying the
  configured ``Retry-After`` hint.

Everything is observable: the guard counts checks, admits, and both
shed classes, and :meth:`EdgeGuard.snapshot` surfaces them (plus the
active config) under ``server.edge`` in ``GET /stats``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict

from .errors import WireError


@dataclass(frozen=True)
class EdgeConfig:
    """The edge policy knobs; every limit defaults to off (0)."""

    #: per-tenant submits per second (0 disables rate limiting)
    rate: float = 0.0
    #: bucket capacity in submits (0 = auto: ``max(1, 2 * rate)``)
    burst: float = 0.0
    #: ceiling on live sessions across the backend (0 disables)
    max_live_sessions: int = 0
    #: ceiling on pump pacing lag in wall seconds (0 disables)
    max_pump_lag_s: float = 0.0
    #: Retry-After hint for overload sheds
    overload_retry_s: float = 1.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"edge rate must be >= 0, got {self.rate}")
        if self.burst < 0:
            raise ValueError(f"edge burst must be >= 0, got {self.burst}")
        if self.max_live_sessions < 0:
            raise ValueError(
                f"edge max_live_sessions must be >= 0, got {self.max_live_sessions}"
            )
        if self.max_pump_lag_s < 0:
            raise ValueError(
                f"edge max_pump_lag_s must be >= 0, got {self.max_pump_lag_s}"
            )
        if self.overload_retry_s <= 0:
            raise ValueError(
                f"edge overload_retry_s must be > 0, got {self.overload_retry_s}"
            )

    @property
    def enabled(self) -> bool:
        return bool(self.rate or self.max_live_sessions or self.max_pump_lag_s)

    @property
    def effective_burst(self) -> float:
        return self.burst if self.burst > 0 else max(1.0, 2.0 * self.rate)

    def to_dict(self) -> Dict:
        return {
            "rate": self.rate,
            "burst": self.effective_burst,
            "max_live_sessions": self.max_live_sessions,
            "max_pump_lag_s": self.max_pump_lag_s,
            "overload_retry_s": self.overload_retry_s,
        }


class TokenBucket:
    """The classic leaky counter: ``rate`` tokens/s up to ``burst``.

    Not thread-safe on its own — :class:`EdgeGuard` serializes access.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"token bucket rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"token bucket burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._stamp: float | None = None

    def try_take(self, now: float) -> tuple:
        """Take one token at wall time ``now``.

        Returns ``(True, 0.0)`` on success or ``(False, retry_after_s)``
        with the exact wall seconds until the next token accrues.
        """
        if self._stamp is not None:
            self.tokens = min(
                self.burst, self.tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class EdgeGuard:
    """The edge decision point the daemon consults on every submit."""

    def __init__(
        self,
        config: EdgeConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "checked": 0,
            "admitted": 0,
            "rate_limited": 0,
            "overloaded": 0,
        }

    def admit(self, token: str, live_sessions: int, pump_lag_s: float) -> None:
        """Pass the submit through the edge, or raise the typed shed.

        ``live_sessions`` and ``pump_lag_s`` are the live feed from the
        daemon (BackendStats-adjacent state sampled under the app lock).
        """
        if not self.config.enabled:
            return
        config = self.config
        with self._lock:
            self.counters["checked"] += 1
            if config.rate > 0:
                bucket = self._buckets.get(token)
                if bucket is None:
                    bucket = TokenBucket(config.rate, config.effective_burst)
                    self._buckets[token] = bucket
                ok, retry_after = bucket.try_take(self._clock())
                if not ok:
                    self.counters["rate_limited"] += 1
                    raise WireError(
                        "rate-limited",
                        f"tenant {token!r} exceeded {config.rate:g} submits/s "
                        f"(burst {config.effective_burst:g})",
                        retry_after_s=retry_after,
                    )
            if (
                config.max_live_sessions
                and live_sessions >= config.max_live_sessions
            ):
                self.counters["overloaded"] += 1
                raise WireError(
                    "overloaded",
                    f"{live_sessions} live sessions at the "
                    f"{config.max_live_sessions}-session ceiling",
                    retry_after_s=config.overload_retry_s,
                )
            if config.max_pump_lag_s and pump_lag_s > config.max_pump_lag_s:
                self.counters["overloaded"] += 1
                raise WireError(
                    "overloaded",
                    f"pump is {pump_lag_s:.2f}s behind its pacing schedule "
                    f"(ceiling {config.max_pump_lag_s:g}s)",
                    retry_after_s=config.overload_retry_s,
                )
            self.counters["admitted"] += 1

    def snapshot(self) -> Dict:
        """The ``server.edge`` section of ``GET /stats``."""
        with self._lock:
            return {
                "enabled": self.config.enabled,
                "config": self.config.to_dict(),
                "tenants": len(self._buckets),
                **dict(self.counters),
            }


__all__ = ["EdgeConfig", "EdgeGuard", "TokenBucket"]
