"""A bounded per-session result ring with long-poll readers.

Each admitted session gets one :class:`ResultRing`: the daemon's pump
thread appends per-period outcomes as their deadlines pass, and any
number of HTTP readers long-poll :meth:`read` for items newer than the
last period they saw.  The ring is bounded — a slow (or absent) reader
costs at most ``capacity`` buffered outcomes, never unbounded memory —
and honest about it: a reader that fell behind is told how many periods
it missed rather than being silently resynced.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Tuple


class ResultRing:
    """Bounded buffer of per-period outcome dicts, keyed by period ``k``.

    Thread-safe; writers :meth:`append` and :meth:`close`, readers
    :meth:`read`.  Items must arrive in strictly increasing ``k`` order
    (the pump harvests periods in deadline order, so this holds by
    construction).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque(maxlen=capacity)
        self._dropped = 0
        self._closed = False
        self._cond = threading.Condition()

    def append(self, item: Dict) -> None:
        """Buffer one outcome (evicting the oldest when full) and wake readers."""
        with self._cond:
            if self._closed:
                raise RuntimeError("append() on a closed ring")
            if len(self._items) == self.capacity:
                self._dropped += 1
            self._items.append(item)
            self._cond.notify_all()

    def close(self) -> None:
        """No more items will arrive (session done/cancelled); wake readers."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def dropped(self) -> int:
        """Outcomes evicted before any reader could have seen them."""
        with self._cond:
            return self._dropped

    def read(
        self, after_k: int = 0, wait_s: float = 0.0
    ) -> Tuple[List[Dict], int, bool]:
        """Everything buffered after period ``after_k``.

        Blocks up to ``wait_s`` for news when nothing is available yet
        (the long-poll).  Returns ``(items, missed, done)``: ``missed``
        counts periods that were evicted before this reader got to them
        (0 when it kept up), and ``done`` is True once the ring is closed
        — because a read always extends to the newest buffered item,
        ``done`` means the reader has seen everything it ever will.
        """
        deadline = None
        with self._cond:
            while True:
                items = [i for i in self._items if i["k"] > after_k]
                if items or self._closed or wait_s <= 0.0:
                    break
                if deadline is None:
                    import time

                    deadline = time.monotonic() + wait_s
                    remaining = wait_s
                else:
                    import time

                    remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    break
                self._cond.wait(remaining)
            missed = 0
            if items:
                oldest = items[0]["k"]
                if oldest > after_k + 1:
                    missed = oldest - after_k - 1
            return items, missed, self._closed


__all__ = ["ResultRing"]
