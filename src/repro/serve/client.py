"""A minimal stdlib HTTP client for the serve daemon's wire API.

Every response — success or typed error — comes back as parsed JSON;
transport-level failures (daemon down, timeout) surface as the typed
``daemon-unreachable`` :class:`~repro.serve.errors.WireError`, so CLI
callers can map any failure to the contract's exit codes.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from .daemon import TOKEN_HEADER
from .errors import WireError


class ServeClient:
    """One client identity (token) talking to one daemon."""

    def __init__(
        self, base_url: str, token: str, timeout_s: float = 10.0
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout_s = timeout_s

    def request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        """One round trip; returns ``(http_status, parsed_json)``."""
        data = json.dumps(body).encode("utf-8") if body is not None else None
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={
                TOKEN_HEADER: self.token,
                "Content-Type": "application/json",
            },
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # Typed errors ride in the body; keep them as data, not raises
            # — the caller decides what a 409 admission verdict means.
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {
                    "error": {
                        "code": "internal",
                        "message": f"non-JSON error body (HTTP {exc.code})",
                    }
                }
            return exc.code, payload
        except (urllib.error.URLError, OSError) as exc:
            raise WireError(
                "daemon-unreachable",
                f"no daemon at {self.base_url}: {exc}",
            ) from exc

    # ------------------------------------------------------------------
    # Endpoint helpers
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self.request("GET", "/healthz")[1]

    def stats(self) -> Dict:
        return self.request("GET", "/stats")[1]

    def submit(self, payload: Dict) -> Tuple[int, Dict]:
        return self.request("POST", "/sessions", body=payload)

    def results(
        self, session: int, after: int = 0, wait_s: float = 0.0
    ) -> Dict:
        return self.request(
            "GET", f"/sessions/{session}/results?after={after}&wait={wait_s:g}"
        )[1]

    def cancel(self, session: int) -> Dict:
        return self.request("DELETE", f"/sessions/{session}")[1]


__all__ = ["ServeClient"]
