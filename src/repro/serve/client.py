"""A resilient stdlib HTTP client for the serve daemon's wire API.

Every response — success or typed error — comes back as parsed JSON;
transport-level failures (daemon down, connection reset, truncated
body) surface as the typed ``daemon-unreachable``
:class:`~repro.serve.errors.WireError` carrying the last typed
``{code, message}`` payload seen, so CLI callers can map any failure to
the contract's exit codes.

Resilience (opt-in via :class:`RetryPolicy`):

* **Bounded retry with decorrelated-jitter backoff** — each retry
  sleeps ``min(cap, base + U(0,1) * 3 * previous)`` drawn from the
  client's own named RNG stream (``client-backoff.<token>``), floored
  by any ``Retry-After`` the server sent.  Transport failures and the
  typed retryable codes (``rate-limited``, ``overloaded``,
  ``chaos-injected``) are retried; everything else returns immediately.
* **Idempotency keys** — every ``submit`` carries a per-client unique
  ``X-Repro-Idempotency-Key``, held stable across its retries, so a
  submit whose response was lost on the wire can never double-admit.

The default policy (``max_attempts=1``) is the old fail-fast client.
"""

from __future__ import annotations

import http.client
import itertools
import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.rng import RandomStreams
from .daemon import IDEMPOTENCY_HEADER, TOKEN_HEADER
from .errors import RETRYABLE_CODES, WireError

#: per-code counter names in :attr:`ServeClient.counters`
_COUNTER_BY_CODE = {
    "rate-limited": "rate_limited",
    "overloaded": "overloaded",
    "chaos-injected": "chaos_injected",
}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with decorrelated-jitter backoff."""

    #: total attempts per logical request (1 = no retries)
    max_attempts: int = 1
    #: backoff floor per sleep
    base_s: float = 0.05
    #: backoff ceiling per sleep
    cap_s: float = 2.0
    #: root seed of the client's backoff stream
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"retry max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_s <= 0:
            raise ValueError(f"retry base_s must be > 0, got {self.base_s}")
        if self.cap_s < self.base_s:
            raise ValueError(
                f"retry cap_s ({self.cap_s}) must be >= base_s ({self.base_s})"
            )


class _TransportFailure(Exception):
    """Internal: one failed round trip (no parseable HTTP response)."""


class ServeClient:
    """One client identity (token) talking to one daemon."""

    def __init__(
        self,
        base_url: str,
        token: str,
        timeout_s: float = 10.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = RandomStreams(self.retry.seed).stream(
            f"client-backoff.{token}"
        )
        self._lock = threading.Lock()
        self._idem = itertools.count(1)
        self.counters: Dict[str, int] = {
            "requests": 0,
            "attempts": 0,
            "retries": 0,
            "transport_errors": 0,
            "rate_limited": 0,
            "overloaded": 0,
            "chaos_injected": 0,
            "gave_up": 0,
        }
        #: attempts consumed per finished logical request
        self.attempts_per_request: List[int] = []

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _note(self, key: str, n: int = 1) -> None:
        with self._lock:
            self.counters[key] += n

    def counters_snapshot(self) -> Tuple[Dict[str, int], List[int]]:
        with self._lock:
            return dict(self.counters), list(self.attempts_per_request)

    # ------------------------------------------------------------------
    # One wire round trip (no retries)
    # ------------------------------------------------------------------
    def _round_trip(
        self,
        method: str,
        path: str,
        body: Optional[Dict],
        headers: Optional[Dict[str, str]],
    ) -> Tuple[int, Dict, Optional[float]]:
        """Returns ``(status, payload, retry_after_s)``.

        Raises :class:`_TransportFailure` when no parseable HTTP
        response arrived (connection refused/reset, truncated or
        malformed body).
        """
        data = json.dumps(body).encode("utf-8") if body is not None else None
        all_headers = {
            TOKEN_HEADER: self.token,
            "Content-Type": "application/json",
        }
        if headers:
            all_headers.update(headers)
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=all_headers
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                raw = resp.read()
                try:
                    return resp.status, json.loads(raw.decode("utf-8")), None
                except (ValueError, UnicodeDecodeError) as exc:
                    raise _TransportFailure(
                        f"malformed response body (HTTP {resp.status}): {exc}"
                    ) from exc
        except urllib.error.HTTPError as exc:
            # Typed errors ride in the body; keep them as data, not
            # raises — the caller decides what a 409 verdict means.
            retry_after: Optional[float] = None
            header = exc.headers.get("Retry-After") if exc.headers else None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            try:
                raw = exc.read()
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError, OSError,
                    http.client.HTTPException) as body_exc:
                # A status line with an unreadable/truncated body is a
                # transport failure, not a verdict: the typed payload —
                # the only thing that tells a 503 shed from a 503 chaos
                # injection — never arrived, so retrying is the only
                # honest move.
                raise _TransportFailure(
                    f"unreadable error body (HTTP {exc.code}): "
                    f"{type(body_exc).__name__}: {body_exc}"
                ) from body_exc
            error = payload.get("error") if isinstance(payload, dict) else None
            if isinstance(error, dict) and error.get("retry_after_s") is not None:
                # The JSON hint is finer-grained than the integer header
                retry_after = float(error["retry_after_s"])
            return exc.code, payload, retry_after
        except _TransportFailure:
            raise
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            OSError,
        ) as exc:
            raise _TransportFailure(f"{type(exc).__name__}: {exc}") from exc

    # ------------------------------------------------------------------
    # The retrying request loop
    # ------------------------------------------------------------------
    def _backoff(self, previous_s: float, retry_after_s: Optional[float]) -> float:
        """Sleep one decorrelated-jitter step; returns the drawn delay."""
        with self._lock:
            draw = float(self._rng.random())
        delay = min(
            self.retry.cap_s, self.retry.base_s + draw * 3.0 * previous_s
        )
        time.sleep(max(delay, retry_after_s or 0.0))
        return delay

    def _finish(self, attempts: int, gave_up: bool) -> None:
        with self._lock:
            self.attempts_per_request.append(attempts)
            if gave_up:
                self.counters["gave_up"] += 1

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict]:
        """One logical request; returns ``(http_status, parsed_json)``.

        Retries (bounded by the policy) on transport failures and typed
        retryable codes; raises ``daemon-unreachable`` — including the
        last typed ``{code, message}`` seen, if any — when every
        attempt failed at the transport level.
        """
        self._note("requests")
        attempts = 0
        previous_s = self.retry.base_s
        last_typed: Optional[Dict] = None
        while True:
            attempts += 1
            self._note("attempts")
            try:
                status, payload, retry_after = self._round_trip(
                    method, path, body, headers
                )
            except _TransportFailure as exc:
                self._note("transport_errors")
                if attempts >= self.retry.max_attempts:
                    self._finish(attempts, gave_up=True)
                    typed = (
                        f"; last typed error: {json.dumps(last_typed)}"
                        if last_typed
                        else ""
                    )
                    raise WireError(
                        "daemon-unreachable",
                        f"no usable response from {self.base_url} after "
                        f"{attempts} attempt(s): {exc}{typed}",
                    ) from exc
                self._note("retries")
                previous_s = self._backoff(previous_s, None)
                continue
            error = payload.get("error") if isinstance(payload, dict) else None
            code = error.get("code") if isinstance(error, dict) else None
            if code in RETRYABLE_CODES:
                last_typed = {
                    "code": code,
                    "message": error.get("message", ""),
                }
                self._note(_COUNTER_BY_CODE[code])
                if attempts < self.retry.max_attempts:
                    self._note("retries")
                    previous_s = self._backoff(previous_s, retry_after)
                    continue
                # Exhausted: hand the typed shed back as data, counted
                self._finish(attempts, gave_up=True)
                return status, payload
            self._finish(attempts, gave_up=False)
            return status, payload

    # ------------------------------------------------------------------
    # Endpoint helpers
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self.request("GET", "/healthz")[1]

    def stats(self) -> Dict:
        return self.request("GET", "/stats")[1]

    def submit(self, payload: Dict) -> Tuple[int, Dict]:
        # One key per logical submit, stable across its retries: the
        # daemon dedups on (token, key), so a lost response can never
        # double-admit.
        key = f"{self.token}.{next(self._idem)}"
        return self.request(
            "POST", "/sessions", body=payload, headers={IDEMPOTENCY_HEADER: key}
        )

    def results(
        self, session: int, after: int = 0, wait_s: float = 0.0
    ) -> Dict:
        return self.request(
            "GET", f"/sessions/{session}/results?after={after}&wait={wait_s:g}"
        )[1]

    def cancel(self, session: int) -> Dict:
        return self.request("DELETE", f"/sessions/{session}")[1]


__all__ = ["RetryPolicy", "ServeClient"]
