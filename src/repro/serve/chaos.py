"""The daemon-side executor of a fault plan's ``wire`` section.

:class:`WireChaosPlane` turns the declarative
:class:`~repro.faults.plan.WireChaos` probabilities into one
:class:`ChaosAction` per incoming HTTP request: reset the connection
before dispatch, delay the response, answer with a typed
``chaos-injected`` 5xx instead of dispatching, or dispatch normally and
truncate the response body (state committed, response lost — the case
idempotency keys exist for).

Determinism: all draws come from one dedicated ``"faults.wire"`` stream
seeded by the scenario seed — *not* the world's ``"faults"`` stream
instance, which belongs to the single-threaded simulation and must see
exactly the in-world draw sequence replay reproduces.  Same seed + same
request arrival order ⇒ same chaos schedule; a daemon without a wire
section never constructs the stream at all, so an empty/absent wire
plan is bit-identical to no chaos plane existing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict

from ..faults.plan import WireChaos
from ..sim.rng import RandomStreams


@dataclass(frozen=True)
class ChaosAction:
    """What happens to one request, decided before dispatch."""

    reset: bool = False
    delay_s: float = 0.0
    inject_error: bool = False
    truncate: bool = False


class WireChaosPlane:
    """One daemon's chaos scheduler: a locked RNG stream + counters."""

    def __init__(self, chaos: WireChaos, seed: int) -> None:
        if chaos.empty:
            raise ValueError("an empty wire section builds no chaos plane")
        self.chaos = chaos
        self._rng = RandomStreams(seed).stream("faults.wire")
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "resets": 0,
            "delays": 0,
            "injected_errors": 0,
            "truncations": 0,
        }

    def plan_request(self) -> ChaosAction:
        """Draw one request's fate (HTTP threads serialize on the lock).

        Action precedence mirrors the handler: a reset preempts
        everything (no response at all), an injected error preempts the
        dispatch, truncation only matters for a response that is
        actually sent.  Delay composes with any of them.
        """
        chaos = self.chaos
        with self._lock:
            self.counters["requests"] += 1
            reset = (
                chaos.reset_prob > 0
                and float(self._rng.random()) < chaos.reset_prob
            )
            delay = 0.0
            if (
                chaos.delay_prob > 0
                and float(self._rng.random()) < chaos.delay_prob
            ):
                delay = float(self._rng.random()) * chaos.delay_s
            error = (
                chaos.error_prob > 0
                and float(self._rng.random()) < chaos.error_prob
            )
            truncate = (
                chaos.truncate_prob > 0
                and float(self._rng.random()) < chaos.truncate_prob
            )
            if delay:
                self.counters["delays"] += 1
            if reset:
                self.counters["resets"] += 1
            elif error:
                self.counters["injected_errors"] += 1
            elif truncate:
                self.counters["truncations"] += 1
        return ChaosAction(
            reset=reset, delay_s=delay, inject_error=error, truncate=truncate
        )

    def snapshot(self) -> Dict:
        """The ``server.wire_chaos`` section of ``GET /stats``."""
        with self._lock:
            return {
                "plan": {
                    "reset_prob": self.chaos.reset_prob,
                    "delay_prob": self.chaos.delay_prob,
                    "delay_s": self.chaos.delay_s,
                    "error_prob": self.chaos.error_prob,
                    "truncate_prob": self.chaos.truncate_prob,
                },
                **dict(self.counters),
            }


__all__ = ["ChaosAction", "WireChaosPlane"]
