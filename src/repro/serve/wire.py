"""Wire codec: JSON payloads <-> domain objects, plus stat summaries.

The daemon speaks exactly the request-payload dialect scenarios already
serialize (:func:`repro.api.scenarios.request_from_payload`), with a
tenancy restriction on top: identity fields (``user_id``) and host-side
objects (``provider``) may not cross the wire — the cluster assigns ids,
and providers live in the server process.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..api.requests import PeriodOutcome, QueryRequest
from .errors import WireError

#: template keys a wire submission may not carry
_FORBIDDEN_WIRE_KEYS = ("user_id", "provider", "count", "spacing_s")


def request_from_wire(payload: object) -> QueryRequest:
    """Decode one POST /sessions body into a :class:`QueryRequest`.

    Raises :class:`WireError` (``invalid-request``) on anything the
    in-process expansion would reject, plus the wire-only restrictions.
    """
    if not isinstance(payload, dict):
        raise WireError(
            "invalid-request",
            f"request body must be a JSON object, got {type(payload).__name__}",
        )
    for key in _FORBIDDEN_WIRE_KEYS:
        if key in payload:
            raise WireError(
                "invalid-request",
                f"field {key!r} may not be set over the wire",
            )
    from ..api.scenarios import request_from_payload

    try:
        return request_from_payload(payload)
    except (ValueError, TypeError) as exc:
        raise WireError("invalid-request", str(exc)) from exc


def outcome_to_wire(outcome: PeriodOutcome) -> Dict:
    """One per-period outcome as a JSON-ready dict (the stream item)."""
    center = outcome.area_center
    return {
        "k": outcome.k,
        "deadline": outcome.deadline,
        "delivered": outcome.delivered,
        "on_time": outcome.on_time,
        "value": outcome.value,
        "contributors": outcome.contributors,
        "delivered_at": outcome.delivered_at,
        "area_center": [center.x, center.y] if center is not None else None,
        "error_bound": outcome.error_bound,
    }


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def summarize(values: Sequence[float]) -> Optional[Dict]:
    """count/mean/p50/p90/p99/max of a sample; None when it is empty."""
    if not values:
        return None
    ordered: List[float] = sorted(values)
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(ordered, 50),
        "p90": percentile(ordered, 90),
        "p99": percentile(ordered, 99),
        "max": ordered[-1],
    }


__all__ = [
    "outcome_to_wire",
    "percentile",
    "request_from_wire",
    "summarize",
]
