"""The serving layer: daemon, wire contract, client, load generator.

``repro serve`` puts any :class:`~repro.api.backend.QueryBackend` behind
an HTTP/JSON session API with multi-tenant ownership, bounded result
rings, graceful SIGTERM drain, and a bit-identically replayable
submission log; ``repro slam`` is the load generator that proves it.
"""

from .chaos import ChaosAction, WireChaosPlane
from .client import RetryPolicy, ServeClient
from .daemon import (
    DEFAULT_SLICE_S,
    DEFAULT_TIME_SCALE,
    IDEMPOTENCY_HEADER,
    MAX_WAIT_S,
    TOKEN_HEADER,
    ServeApp,
    ServeHandler,
    make_server,
    run_serve,
)
from .edge import EdgeConfig, EdgeGuard, TokenBucket
from .errors import (
    ERROR_CODES,
    EXIT_FAILURE,
    EXIT_USAGE,
    RETRYABLE_CODES,
    WireError,
    map_exception,
)
from .log import (
    LOG_FORMAT,
    WAL_FORMAT,
    SubmissionLog,
    load_partial_log,
    replay_submission_log,
    result_fingerprints,
    verify_partial_log,
    verify_submission_log,
)
from .ring import ResultRing
from .slam import SlamConfig, markdown_table, run_slam, write_slam_outputs
from .wire import outcome_to_wire, percentile, request_from_wire, summarize

__all__ = [
    "ChaosAction",
    "DEFAULT_SLICE_S",
    "DEFAULT_TIME_SCALE",
    "ERROR_CODES",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "EdgeConfig",
    "EdgeGuard",
    "IDEMPOTENCY_HEADER",
    "LOG_FORMAT",
    "MAX_WAIT_S",
    "RETRYABLE_CODES",
    "ResultRing",
    "RetryPolicy",
    "ServeApp",
    "ServeClient",
    "ServeHandler",
    "SlamConfig",
    "SubmissionLog",
    "TOKEN_HEADER",
    "TokenBucket",
    "WAL_FORMAT",
    "WireChaosPlane",
    "WireError",
    "load_partial_log",
    "make_server",
    "map_exception",
    "markdown_table",
    "outcome_to_wire",
    "percentile",
    "replay_submission_log",
    "request_from_wire",
    "result_fingerprints",
    "run_serve",
    "run_slam",
    "summarize",
    "verify_partial_log",
    "verify_submission_log",
    "write_slam_outputs",
]
