"""The serving layer: daemon, wire contract, client, load generator.

``repro serve`` puts any :class:`~repro.api.backend.QueryBackend` behind
an HTTP/JSON session API with multi-tenant ownership, bounded result
rings, graceful SIGTERM drain, and a bit-identically replayable
submission log; ``repro slam`` is the load generator that proves it.
"""

from .client import ServeClient
from .daemon import (
    DEFAULT_SLICE_S,
    DEFAULT_TIME_SCALE,
    MAX_WAIT_S,
    TOKEN_HEADER,
    ServeApp,
    ServeHandler,
    make_server,
    run_serve,
)
from .errors import ERROR_CODES, EXIT_FAILURE, EXIT_USAGE, WireError, map_exception
from .log import (
    LOG_FORMAT,
    SubmissionLog,
    replay_submission_log,
    result_fingerprints,
    verify_submission_log,
)
from .ring import ResultRing
from .slam import SlamConfig, markdown_table, run_slam, write_slam_outputs
from .wire import outcome_to_wire, percentile, request_from_wire, summarize

__all__ = [
    "DEFAULT_SLICE_S",
    "DEFAULT_TIME_SCALE",
    "ERROR_CODES",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "LOG_FORMAT",
    "MAX_WAIT_S",
    "ResultRing",
    "ServeApp",
    "ServeClient",
    "ServeHandler",
    "SlamConfig",
    "SubmissionLog",
    "TOKEN_HEADER",
    "WireError",
    "make_server",
    "map_exception",
    "markdown_table",
    "outcome_to_wire",
    "percentile",
    "replay_submission_log",
    "request_from_wire",
    "result_fingerprints",
    "run_serve",
    "run_slam",
    "summarize",
    "verify_submission_log",
    "write_slam_outputs",
]
