"""``repro serve`` — the always-on query daemon.

One :class:`ServeApp` owns one :class:`~repro.api.backend.QueryBackend`
(single world or regional cluster, whatever the scenario asks for) and
exposes the full session lifecycle over HTTP/JSON:

* ``POST /sessions`` — submit; returns the session id + admission verdict
* ``GET /sessions/{id}/results?after=K&wait=S`` — long-poll outcomes
* ``DELETE /sessions/{id}`` — cancel
* ``GET /stats`` — live backend counters + server latency attribution
* ``GET /healthz`` — liveness

Architecture: **one pump thread owns the simulated clock**.  All backend
mutations — submits, cancels, clock advances — serialize through one
lock, so the kernel never sees concurrent access; HTTP threads
(``ThreadingHTTPServer``) only block on that lock for bounded slices
(``slice_s`` simulated seconds per advance).  The pump advances the sim
toward the earliest unharvested period deadline, paced against wall
time by ``time_scale`` (simulated seconds per wall second; 0 = free-run),
and harvests each period outcome into the owning session's bounded
:class:`~repro.serve.ring.ResultRing` the moment its deadline passes.

Tenancy: every request carries an ``X-Repro-Token`` header; a session
belongs to the token that created it, and any access with another token
is a typed ``foreign-session`` error — existence is admitted (404 vs 403
distinguishes unknown from foreign) but nothing else leaks.

Determinism: every submit (accepted *and* rejected) and cancel is
recorded in the :class:`~repro.serve.log.SubmissionLog`; replaying that
log in-process reproduces the daemon's sessions and physics counters bit
for bit.  ``SIGTERM`` drains: new submits get 503, live sessions run to
completion (bounded by ``--drain-timeout``, stragglers are recorded
force-cancels), the backend closes into a final
:class:`~repro.workload.engine.WorkloadResult`, and the log + summary
land in ``SERVE_<name>.json``.
"""

from __future__ import annotations

import itertools
import json
import signal
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from ..api.scenarios import ScenarioSpec, build_backend
from ..api.service import STATUS_ADMITTED, STATUS_COMPLETED, SessionHandle
from ..cluster.transport import RecordingAdmissionPolicy
from ..faults.sweep import leak_census
from .chaos import WireChaosPlane
from .edge import EdgeConfig, EdgeGuard
from .errors import WireError, map_exception
from .log import SubmissionLog, result_fingerprints
from .ring import ResultRing
from .wire import outcome_to_wire, request_from_wire, summarize

#: how far one pump advance may run, in simulated seconds
DEFAULT_SLICE_S = 0.5
#: simulated seconds per wall second (0 disables pacing — free-run)
DEFAULT_TIME_SCALE = 8.0
#: hard cap on one long-poll wait
MAX_WAIT_S = 30.0
#: the tenancy header
TOKEN_HEADER = "X-Repro-Token"
#: the submit-dedup header: a retried POST /sessions with the same key
#: returns the stored first response instead of double-admitting
IDEMPOTENCY_HEADER = "X-Repro-Idempotency-Key"


class _EndpointTimer:
    """Per-endpoint request-latency sample (bounded memory)."""

    def __init__(self, maxlen: int = 2048) -> None:
        self.count = 0
        self.samples_ms: deque = deque(maxlen=maxlen)

    def note(self, ms: float) -> None:
        self.count += 1
        self.samples_ms.append(ms)

    def snapshot(self) -> Dict:
        summary = summarize(list(self.samples_ms)) or {}
        summary["count"] = self.count
        return summary


class _Session:
    """Server-side session state: owner token, handle, result ring."""

    def __init__(
        self, sid: int, token: str, handle: SessionHandle, ring: ResultRing
    ) -> None:
        self.sid = sid
        self.token = token
        self.handle = handle
        self.ring = ring
        #: next period the pump will harvest (1-based)
        self.next_k = 1
        #: no more outcomes will ever arrive (completed/cancelled/rejected)
        self.done = False


class ServeApp:
    """The daemon's brain, independent of HTTP: sessions, pump, drain.

    Tests drive this object directly; :class:`ServeHandler` is a thin
    JSON shim over it.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        ring_capacity: int = 256,
        time_scale: float = DEFAULT_TIME_SCALE,
        slice_s: float = DEFAULT_SLICE_S,
        drain_timeout_s: float = 30.0,
        edge: Optional[EdgeConfig] = None,
        wal_path: Optional[str] = None,
        wal_flush_every: int = 8,
    ) -> None:
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        if slice_s <= 0:
            raise ValueError(f"slice_s must be > 0, got {slice_s}")
        self.spec = spec
        self.ring_capacity = ring_capacity
        self.time_scale = time_scale
        self.slice_s = slice_s
        self.drain_timeout_s = drain_timeout_s
        self.backend = build_backend(spec)
        # Interpose the decision recorder: the submission log needs every
        # admission verdict, in order, to replay the run bit-identically.
        self._recorder = RecordingAdmissionPolicy(self.backend.admission)
        self.backend.admission = self._recorder
        self.log = SubmissionLog(
            spec, wal_path=wal_path, flush_every=wal_flush_every
        )
        self.edge = EdgeGuard(edge if edge is not None else EdgeConfig())
        # The wire-chaos plane exists only when the scenario's fault plan
        # carries a non-empty wire section; otherwise no stream is even
        # constructed — absent and empty sections are the same daemon.
        wire = spec.fault_plan().wire
        self.chaos: Optional[WireChaosPlane] = (
            WireChaosPlane(wire, spec.seed)
            if wire is not None and not wire.empty
            else None
        )
        self.sessions: Dict[int, _Session] = {}
        self._idempotent: Dict[tuple, Dict] = {}
        self._idempotent_hits = 0
        self._sids = itertools.count(1)
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._pump: Optional[threading.Thread] = None
        self._draining = False
        self._finished = False
        self.summary: Optional[Dict] = None
        self._started_wall = time.monotonic()
        # pacing anchor: (wall, sim) of the last idle->busy transition
        self._anchor: Optional[tuple] = None
        self._slices = 0
        self._advance_wall_s = 0.0
        self._timers: Dict[str, _EndpointTimer] = {}

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def _services(self) -> List:
        """The underlying world service(s) — one, or every shard."""
        shard_services = getattr(self.backend, "services", None)
        return list(shard_services) if shard_services is not None else [
            self.backend
        ]

    def _now(self) -> float:
        """The backend's simulated clock (min over shards in lockstep)."""
        return min(service.sim.now for service in self._services())

    def note_latency(self, endpoint: str, ms: float) -> None:
        with self._lock:
            self._timers.setdefault(endpoint, _EndpointTimer()).note(ms)

    def _pump_lag_locked(self) -> float:
        """How far the pump trails its pacing schedule, in wall seconds.

        0 when free-running (``time_scale == 0``) or idle (no anchor):
        with no schedule there is nothing to fall behind.  Caller holds
        the app lock.
        """
        if self.time_scale <= 0 or self._anchor is None:
            return 0.0
        wall = time.monotonic()
        allowed = self._anchor[1] + (wall - self._anchor[0]) * self.time_scale
        return max(0.0, (allowed - self._now()) / self.time_scale)

    def pump_lag_s(self) -> float:
        with self._lock:
            return self._pump_lag_locked()

    # ------------------------------------------------------------------
    # The pump thread: the only thing that advances the clock
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the pump thread (idempotent)."""
        if self._pump is None:
            self._pump = threading.Thread(
                target=self._pump_loop, name="serve-pump", daemon=True
            )
            self._pump.start()

    def _live_sessions(self) -> List[_Session]:
        return [s for s in self.sessions.values() if not s.done]

    def _next_deadline(self) -> Optional[float]:
        """The earliest unharvested period deadline, over live sessions."""
        deadlines = []
        for sess in self._live_sessions():
            spec = sess.handle.spec
            assert spec is not None
            if sess.next_k <= spec.num_periods:
                deadlines.append(spec.deadline(sess.next_k))
        return min(deadlines) if deadlines else None

    def _harvest(self) -> None:
        """Move every due period outcome into its session's ring."""
        now = self._now()
        for sess in self._live_sessions():
            handle = sess.handle
            spec = handle.spec
            assert spec is not None
            while sess.next_k <= spec.num_periods:
                deadline = spec.deadline(sess.next_k)
                if (
                    handle.cancelled_at is not None
                    and deadline > handle.cancelled_at
                ):
                    sess.done = True
                    sess.ring.close()
                    break
                if deadline > now + 1e-9:
                    break
                sess.ring.append(
                    outcome_to_wire(handle.period_outcome(sess.next_k))
                )
                sess.next_k += 1
            if not sess.done and sess.next_k > spec.num_periods:
                sess.done = True
                sess.ring.close()
        self._work.notify_all()

    def _pump_loop(self) -> None:
        while not self._stop.is_set():
            with self._work:
                self._harvest()
                deadline = self._next_deadline()
                if deadline is None:
                    # Idle: drop the pacing anchor so waiting for clients
                    # doesn't bank "allowed" sim time to sprint through.
                    self._anchor = None
                    self._work.wait(0.05)
                    continue
                now = self._now()
                target = min(deadline, now + self.slice_s)
                if self.time_scale > 0 and not self._draining:
                    wall = time.monotonic()
                    if self._anchor is None:
                        self._anchor = (wall, now)
                    allowed = (
                        self._anchor[1]
                        + (wall - self._anchor[0]) * self.time_scale
                    )
                    if target > allowed:
                        self._work.wait(
                            min((target - allowed) / self.time_scale, 0.25)
                        )
                        continue
                t0 = time.perf_counter()
                self.backend.advance(target)
                self._advance_wall_s += time.perf_counter() - t0
                self._slices += 1
                self._harvest()

    # ------------------------------------------------------------------
    # The wire operations (HTTP handler + tests call these)
    # ------------------------------------------------------------------
    def submit(
        self,
        token: str,
        payload: object,
        idempotency_key: Optional[str] = None,
    ) -> Dict:
        """POST /sessions: shed, validate, admit, record; never corrupts replay.

        Order matters for determinism.  The edge guard sheds *first* —
        before validation, the backend, and the log — so a rate-limited
        or overloaded submit consumes zero RNG draws and leaves zero
        state (replay never sees it).  Validation happens *before* the
        backend sees the request — ``backend.submit`` consumes
        mobility-RNG draws while synthesising the user's walk, so a
        submission that would raise inside the backend (horizon passed)
        must be refused up front to keep the submission log replayable.
        Rejections by the admission policy *are* recorded: they consumed
        draws, so replay must repeat them.

        A repeated ``idempotency_key`` (same token) returns the stored
        first response verbatim: a client retrying a submit whose
        response was lost on the wire can never double-admit.
        """
        with self._work:
            if self._finished:
                raise WireError(
                    "service-closed", "the daemon has shut down"
                )
            if self._draining:
                raise WireError(
                    "draining",
                    "the daemon is draining (SIGTERM); no new sessions",
                )
            if idempotency_key is not None:
                cached = self._idempotent.get((token, idempotency_key))
                if cached is not None:
                    self._idempotent_hits += 1
                    return dict(cached)
            self.edge.admit(
                token,
                live_sessions=len(self._live_sessions()),
                pump_lag_s=self._pump_lag_locked(),
            )
            request = request_from_wire(payload)
            now = self._now()
            start = max(request.start_s, now)
            horizon = self.backend.duration_s
            if start > horizon - request.period_s + 1e-9:
                raise WireError(
                    "horizon-passed",
                    f"session would start at {start:.1f}s but the service "
                    f"horizon is {horizon:.1f}s — no serviceable period left",
                )
            handle = self.backend.submit(request)
            decision = self._recorder.decisions[-1]
            sid = next(self._sids)
            ring = ResultRing(self.ring_capacity)
            sess = _Session(sid, token, handle, ring)
            self.sessions[sid] = sess
            self.log.record_submit(now, sid, dict(payload), decision)
            if not handle.accepted:
                sess.done = True
                ring.close()
                resp = {
                    "session": sid,
                    "status": handle.status,
                    "reason": handle.reason,
                    "now": now,
                    "error": {
                        "code": "admission-rejected",
                        "message": handle.reason,
                    },
                }
            else:
                self._work.notify_all()
                spec = handle.spec
                assert spec is not None
                resp = {
                    "session": sid,
                    "status": handle.status,
                    "user_id": spec.user_id,
                    "start_s": spec.start_s,
                    "period_s": spec.period_s,
                    "num_periods": spec.num_periods,
                    "now": now,
                }
            if idempotency_key is not None:
                # Both verdicts are cached: a rejected submit consumed
                # admission/mobility draws too, and retrying it must not
                # consume them again.
                self._idempotent[(token, idempotency_key)] = dict(resp)
            return resp

    @staticmethod
    def _wire_status(sess: _Session) -> str:
        """The client-facing status.

        The backend only flips ``admitted`` sessions to ``completed`` at
        close time; on the wire a session whose every period has been
        harvested is already completed.
        """
        status = sess.handle.status
        if status == STATUS_ADMITTED and sess.done:
            return STATUS_COMPLETED
        return status

    def _owned(self, token: str, sid: int) -> _Session:
        """The caller's session, or a typed unknown/foreign error."""
        sess = self.sessions.get(sid)
        if sess is None:
            raise WireError("unknown-session", f"no session {sid}")
        if sess.token != token:
            raise WireError(
                "foreign-session",
                f"session {sid} belongs to another client",
            )
        return sess

    def results(
        self, token: str, sid: int, after: int = 0, wait_s: float = 0.0
    ) -> Dict:
        """GET /sessions/{id}/results: long-poll outcomes after period K."""
        with self._lock:
            sess = self._owned(token, sid)
        wait = max(0.0, min(wait_s, MAX_WAIT_S))
        # The ring has its own lock: a blocked reader never holds the
        # app lock, so the pump and other clients keep moving.
        items, missed, done = sess.ring.read(after_k=after, wait_s=wait)
        with self._lock:
            status = self._wire_status(sess)
        return {
            "session": sid,
            "outcomes": items,
            "missed": missed,
            "done": done,
            "status": status,
        }

    def cancel(self, token: str, sid: int) -> Dict:
        """DELETE /sessions/{id}: idempotent cancel, recorded for replay."""
        with self._work:
            sess = self._owned(token, sid)
            if not sess.handle.accepted or sess.done:
                return {
                    "session": sid,
                    "cancelled": False,
                    "status": self._wire_status(sess),
                }
            self.backend.cancel(sess.handle)
            self.log.record_cancel(self._now(), sid)
            sess.done = True
            sess.ring.close()
            self._work.notify_all()
            return {
                "session": sid,
                "cancelled": True,
                "status": sess.handle.status,
            }

    def stats_payload(self) -> Dict:
        """GET /stats: backend counters + server-side attribution."""
        with self._lock:
            data = self.backend.stats().to_dict()
            sessions = list(self.sessions.values())
            data["server"] = {
                "scenario": self.spec.name,
                "draining": self._draining,
                "finished": self._finished,
                "uptime_s": time.monotonic() - self._started_wall,
                "time_scale": self.time_scale,
                "sessions": {
                    "total": len(sessions),
                    "live": sum(1 for s in sessions if not s.done),
                    "done": sum(1 for s in sessions if s.done),
                },
                "pump": {
                    "slices": self._slices,
                    "advance_wall_s": self._advance_wall_s,
                    "sim_now": self._now(),
                    "lag_s": self._pump_lag_locked(),
                },
                "edge": self.edge.snapshot(),
                "wire_chaos": (
                    self.chaos.snapshot() if self.chaos is not None else None
                ),
                "idempotency": {
                    "entries": len(self._idempotent),
                    "hits": self._idempotent_hits,
                },
                "latency_ms": {
                    name: timer.snapshot()
                    for name, timer in sorted(self._timers.items())
                },
            }
            return data

    def healthz(self) -> Dict:
        with self._lock:
            return {
                "ok": not self._finished,
                "scenario": self.spec.name,
                "draining": self._draining,
                "now": self._now(),
            }

    # ------------------------------------------------------------------
    # Shutdown: drain, close, prove
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse new submits; existing sessions keep running."""
        with self._work:
            self._draining = True
            self._work.notify_all()

    def wait_drained(self, timeout_s: Optional[float] = None) -> bool:
        """Block until every session is done (True) or timeout (False)."""
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        with self._work:
            while self._live_sessions():
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._work.wait(
                    min(0.1, remaining) if remaining is not None else 0.1
                )
            return True

    def cancel_remaining(self) -> int:
        """Force-cancel every live session (drain-timeout stragglers).

        Recorded like client cancels, so the log stays replayable.
        """
        cancelled = 0
        with self._work:
            for sess in self._live_sessions():
                self.backend.cancel(sess.handle)
                self.log.record_cancel(self._now(), sess.sid)
                sess.done = True
                sess.ring.close()
                cancelled += 1
            self._work.notify_all()
        return cancelled

    def finish(self) -> Dict:
        """Close the backend, score the run, prove teardown left nothing.

        Idempotent; returns (and caches) the final summary: the scored
        :class:`WorkloadResult`, the result fingerprints replay must
        reproduce, and the post-release leak census (all-zero when the
        daemon's session teardown is airtight).
        """
        if self.summary is not None:
            return self.summary
        self._stop.set()
        with self._work:
            self._work.notify_all()
        if self._pump is not None:
            self._pump.join(timeout=10.0)
        with self._work:
            self._finished = True
            workload = self.backend.close()
            stats = self.backend.stats()
            fingerprints = result_fingerprints(workload, stats)
            # Completed sessions hold benign in-network residue until
            # released; zero it so the leak census judges the daemon.
            for sess in self.sessions.values():
                if sess.handle.accepted:
                    sess.handle.service.release_session_state(sess.handle)
            leaks: Dict[str, int] = {}
            for service in self._services():
                for key, value in leak_census(service).items():
                    leaks[key] = leaks.get(key, 0) + value
            ratios = [s.success_ratio for s in workload.sessions]
            self.summary = {
                "scenario": self.spec.name,
                "sessions": {
                    "submitted": len(self.sessions),
                    "admitted": stats.admitted,
                    "rejected": stats.rejected,
                    "cancelled": stats.cancelled,
                },
                "workload": {
                    "sessions": len(workload.sessions),
                    "mean_success": (
                        sum(ratios) / len(ratios) if ratios else None
                    ),
                    "min_success": min(ratios) if ratios else None,
                },
                "stats": stats.to_dict(),
                "fingerprints": fingerprints,
                "leaks": leaks,
                "leak_total": sum(leaks.values()),
            }
            for sess in self.sessions.values():
                if not sess.done:
                    sess.done = True
                    sess.ring.close()
            self.log.close_wal()
            self._work.notify_all()
        return self.summary

    def write_log(self, out_dir: str = ".", name: Optional[str] = None) -> str:
        """Write ``SERVE_<name>.json``: the replayable log + summary."""
        import os

        summary = self.finish()
        data = self.log.to_dict(fingerprints=summary["fingerprints"])
        data["summary"] = summary
        safe = (name or self.spec.name).replace("/", "-").replace(" ", "-")
        path = os.path.join(out_dir, f"SERVE_{safe}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


class ServeHandler(BaseHTTPRequestHandler):
    """Thin JSON shim: routes HTTP onto the owning :class:`ServeApp`."""

    protocol_version = "HTTP/1.1"
    #: set by :func:`make_server` on the server class
    server_version = "repro-serve/1"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the daemon's stdout is for the banner, not access logs

    def _send_json(
        self,
        status: int,
        payload: Dict,
        retry_after_s: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header(
                "Retry-After", str(max(0, int(-(-retry_after_s // 1))))
            )
        self.end_headers()
        if getattr(self, "_chaos_truncate", False) and len(body) > 1:
            # Wire chaos: state is committed but the response is cut
            # short mid-body; the client sees an IncompleteRead and must
            # lean on its idempotency key to retry safely.
            self.wfile.write(body[: len(body) // 2])
            self.close_connection = True
            return
        self.wfile.write(body)

    def _token(self) -> str:
        token = (self.headers.get(TOKEN_HEADER) or "").strip()
        if not token:
            raise WireError(
                "missing-token",
                f"the {TOKEN_HEADER} header identifies the client",
            )
        return token

    def _body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(
                "invalid-request", f"request body is not JSON: {exc}"
            ) from exc

    def _session_route(self, parts: List[str]) -> int:
        try:
            return int(parts[1])
        except ValueError as exc:
            raise WireError(
                "invalid-request", f"session id must be an integer: {parts[1]!r}"
            ) from exc

    def _dispatch(self, method: str) -> None:
        endpoint = "?"
        t0 = time.perf_counter()
        self._chaos_truncate = False
        plane = self.app.chaos
        inject_error = False
        if plane is not None:
            action = plane.plan_request()
            if action.delay_s > 0:
                time.sleep(action.delay_s)
            if action.reset:
                # No response at all: the client sees the connection
                # drop (RemoteDisconnected) before any state changed.
                self.close_connection = True
                return
            self._chaos_truncate = action.truncate
            inject_error = action.inject_error
        try:
            if inject_error:
                raise WireError(
                    "chaos-injected",
                    "wire-chaos plane injected a failure before dispatch",
                    retry_after_s=0.05,
                )
            url = urlsplit(self.path)
            parts = [p for p in url.path.split("/") if p]
            query = parse_qs(url.query)
            if method == "GET" and parts == ["healthz"]:
                endpoint = "GET /healthz"
                self._send_json(200, self.app.healthz())
            elif method == "GET" and parts == ["stats"]:
                endpoint = "GET /stats"
                self._send_json(200, self.app.stats_payload())
            elif method == "POST" and parts == ["sessions"]:
                endpoint = "POST /sessions"
                token = self._token()
                idem = (self.headers.get(IDEMPOTENCY_HEADER) or "").strip()
                resp = self.app.submit(
                    token, self._body(), idempotency_key=idem or None
                )
                status = 201 if "error" not in resp else 409
                self._send_json(status, resp)
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "sessions"
                and parts[2] == "results"
            ):
                endpoint = "GET /sessions/{id}/results"
                token = self._token()
                sid = self._session_route(parts)
                try:
                    after = int(query.get("after", ["0"])[0])
                    wait_s = float(query.get("wait", ["0"])[0])
                except ValueError as exc:
                    raise WireError(
                        "invalid-request", f"bad query parameter: {exc}"
                    ) from exc
                self._send_json(200, self.app.results(token, sid, after, wait_s))
            elif (
                method == "DELETE"
                and len(parts) == 2
                and parts[0] == "sessions"
            ):
                endpoint = "DELETE /sessions/{id}"
                token = self._token()
                sid = self._session_route(parts)
                self._send_json(200, self.app.cancel(token, sid))
            else:
                raise WireError(
                    "unknown-route", f"{method} {url.path} is not an endpoint"
                )
        except Exception as exc:  # noqa: BLE001 - typed contract boundary
            error = map_exception(exc)
            try:
                self._send_json(
                    error.http_status,
                    error.payload(),
                    retry_after_s=error.retry_after_s,
                )
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-error; nothing to tell it
        finally:
            self.app.note_latency(
                endpoint, (time.perf_counter() - t0) * 1000.0
            )

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


def make_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` (0 = ephemeral), serving ``app``."""

    class _Server(ThreadingHTTPServer):
        daemon_threads = True
        allow_reuse_address = True

    server = _Server((host, port), ServeHandler)
    server.app = app  # type: ignore[attr-defined]
    return server


def run_serve(
    spec: ScenarioSpec,
    host: str = "127.0.0.1",
    port: int = 8600,
    drain_timeout_s: float = 30.0,
    time_scale: float = DEFAULT_TIME_SCALE,
    ring_capacity: int = 256,
    out_dir: str = ".",
    name: Optional[str] = None,
    edge: Optional[EdgeConfig] = None,
    wal_flush_every: Optional[int] = None,
) -> int:
    """The blocking ``repro serve`` entrypoint: serve until SIGTERM/SIGINT.

    Always writes the crash-safe WAL (``SERVE_<name>.wal``) as ops
    commit, so even a SIGKILL'd daemon leaves a replayable flushed
    prefix behind for ``repro replay --partial``.

    Daemon posture defaults come from the *scenario*: when ``edge`` /
    ``wal_flush_every`` are not passed (CLI flags override), the spec's
    declarative ``edge_rate`` / ``edge_burst`` / ``max_live_sessions`` /
    ``wal_flush`` keys apply — a workload file fully describes how its
    daemon should hold the door.

    Returns the process exit code: 0 on a clean drain with a leak-free
    census, 3 (EXIT_FAILURE) when residual protocol state survived.
    """
    import os

    from .errors import EXIT_FAILURE

    if edge is None:
        edge = EdgeConfig(
            rate=spec.edge_rate,
            burst=spec.edge_burst,
            max_live_sessions=spec.max_live_sessions,
        )
    if wal_flush_every is None:
        wal_flush_every = spec.wal_flush
    safe = (name or spec.name).replace("/", "-").replace(" ", "-")
    wal_path = os.path.join(out_dir, f"SERVE_{safe}.wal")
    app = ServeApp(
        spec,
        ring_capacity=ring_capacity,
        time_scale=time_scale,
        drain_timeout_s=drain_timeout_s,
        edge=edge,
        wal_path=wal_path,
        wal_flush_every=wal_flush_every,
    )
    server = make_server(app, host=host, port=port)
    stop = threading.Event()
    previous = {}

    def _request_stop(signum, frame) -> None:
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_stop)
    app.start()
    server_thread = threading.Thread(
        target=server.serve_forever, name="serve-http", daemon=True
    )
    server_thread.start()
    bound = server.server_address
    edge_note = (
        f", edge rate={app.edge.config.rate:g}/s"
        if app.edge.config.enabled
        else ""
    )
    chaos_note = ", wire-chaos ON" if app.chaos is not None else ""
    print(
        f"repro serve: scenario={spec.name} listening on "
        f"http://{bound[0]}:{bound[1]} (time_scale={time_scale:g}, "
        f"drain_timeout={drain_timeout_s:g}s{edge_note}{chaos_note}) "
        f"wal={wal_path} — SIGTERM to drain",
        flush=True,
    )
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("repro serve: draining (new submits get 503)...", flush=True)
    app.begin_drain()
    drained = app.wait_drained(drain_timeout_s)
    forced = 0 if drained else app.cancel_remaining()
    summary = app.finish()
    log_path = app.write_log(out_dir=out_dir, name=name)
    server.shutdown()
    server.server_close()
    sessions = summary["sessions"]
    print(
        f"repro serve: drained={'clean' if drained else f'forced {forced}'} "
        f"sessions={sessions['submitted']} admitted={sessions['admitted']} "
        f"rejected={sessions['rejected']} leak_total={summary['leak_total']} "
        f"log={log_path}",
        flush=True,
    )
    if summary["leak_total"] > 0:
        import sys

        print(
            f"repro serve: error: residual protocol state after drain: "
            f"{ {k: v for k, v in summary['leaks'].items() if v} }",
            file=sys.stderr,
        )
        return EXIT_FAILURE
    return 0


__all__ = [
    "DEFAULT_SLICE_S",
    "DEFAULT_TIME_SCALE",
    "IDEMPOTENCY_HEADER",
    "MAX_WAIT_S",
    "TOKEN_HEADER",
    "ServeApp",
    "ServeHandler",
    "make_server",
    "run_serve",
]
