"""The typed wire/CLI error contract.

Every failure the serve daemon can hand a client — and every failure the
CLI can exit on — maps to one stable ``{code, message}`` JSON payload.
The codes are API: tests pin them, clients branch on them, and the CLI
derives its exit status from them, so the same error means the same
thing whether it arrives over HTTP or on stderr.

Two exit classes, matching the CLI's long-standing convention:

* ``2`` — usage/validation: the caller's input was malformed (bad JSON,
  unknown scenario, missing token, unknown route).
* ``3`` — runtime/invariant: the input was well-formed but the service
  said no (admission rejected, horizon passed, draining, foreign
  session) or a determinism check failed (replay mismatch).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

#: CLI exit statuses (the repo-wide convention)
EXIT_USAGE = 2
EXIT_FAILURE = 3

#: code -> (http_status, exit_code); the stable contract tests pin
ERROR_CODES: Dict[str, Tuple[int, int]] = {
    "invalid-request": (400, EXIT_USAGE),
    "unknown-scenario": (404, EXIT_USAGE),
    "missing-token": (401, EXIT_USAGE),
    "unknown-route": (404, EXIT_USAGE),
    "foreign-session": (403, EXIT_FAILURE),
    "unknown-session": (404, EXIT_FAILURE),
    "admission-rejected": (409, EXIT_FAILURE),
    "horizon-passed": (409, EXIT_FAILURE),
    "service-closed": (503, EXIT_FAILURE),
    "draining": (503, EXIT_FAILURE),
    "daemon-unreachable": (502, EXIT_FAILURE),
    "replay-mismatch": (409, EXIT_FAILURE),
    "internal": (500, EXIT_FAILURE),
    "rate-limited": (429, EXIT_FAILURE),
    "overloaded": (503, EXIT_FAILURE),
    "chaos-injected": (503, EXIT_FAILURE),
}

#: codes a well-behaved client may retry (transient by construction:
#: the edge shed them before any backend/log state changed, or the
#: wire-chaos plane injected them before dispatch)
RETRYABLE_CODES = frozenset({"rate-limited", "overloaded", "chaos-injected"})


class WireError(Exception):
    """One typed failure, equally at home in an HTTP body or an exit path.

    ``retry_after_s`` (optional) is the server's backoff hint: it rides
    in the JSON payload and — on the HTTP surface — as a ``Retry-After``
    header, so shed clients know when the edge expects capacity back.
    """

    def __init__(
        self,
        code: str,
        message: str,
        retry_after_s: Optional[float] = None,
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown wire-error code {code!r}")
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s
        self.http_status, self.exit_code = ERROR_CODES[code]

    def payload(self) -> Dict:
        """The JSON body every error response carries."""
        error: Dict = {"code": self.code, "message": self.message}
        if self.retry_after_s is not None:
            error["retry_after_s"] = round(float(self.retry_after_s), 3)
        return {"error": error}

    @classmethod
    def from_payload(cls, data: Mapping) -> "WireError":
        """Rebuild the error a server sent (client-side symmetry)."""
        error = data.get("error") if isinstance(data, Mapping) else None
        if not isinstance(error, Mapping) or "code" not in error:
            return cls("internal", f"malformed error payload: {data!r}")
        code = str(error["code"])
        message = str(error.get("message", ""))
        retry_after = error.get("retry_after_s")
        if code not in ERROR_CODES:
            return cls("internal", f"unknown error code {code!r}: {message}")
        return cls(
            code,
            message,
            retry_after_s=(
                float(retry_after) if retry_after is not None else None
            ),
        )


def map_exception(exc: BaseException) -> WireError:
    """Fold any exception into the typed contract.

    ``ServiceClosedError`` (the backend sealed itself) becomes
    ``service-closed``; ``KeyError`` is the scenario-registry miss;
    spec/request validation errors (``ValueError``/``TypeError``) become
    ``invalid-request``; anything else is ``internal`` — the catch-all
    that keeps a daemon thread from dying silently.
    """
    from ..api.service import ServiceClosedError

    if isinstance(exc, WireError):
        return exc
    if isinstance(exc, ServiceClosedError):
        return WireError("service-closed", str(exc))
    if isinstance(exc, KeyError):
        detail = exc.args[0] if exc.args else exc
        return WireError("unknown-scenario", str(detail))
    if isinstance(exc, (ValueError, TypeError)):
        return WireError("invalid-request", str(exc))
    return WireError("internal", f"{type(exc).__name__}: {exc}")


__all__ = [
    "ERROR_CODES",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "RETRYABLE_CODES",
    "WireError",
    "map_exception",
]
