"""MobiQuery reproduction: a spatiotemporal query service for mobile users
in wireless sensor networks (Lu, Xing, Chipara, Fok, Bhattacharya — ICDCS
2005), rebuilt on a from-scratch Python discrete-event simulator.

Quick tour of the public API (the service façade)::

    from repro import ExperimentConfig, MobiQueryService, QueryRequest, MODE_JIT

    service = MobiQueryService(ExperimentConfig(mode=MODE_JIT, seed=7,
                                                duration_s=120.0))
    handle = service.submit(QueryRequest(radius_m=60.0, period_s=2.0))
    for outcome in handle.results():      # streams per-period results
        print(outcome.k, outcome.on_time, outcome.value)
    print(handle.result().success_ratio)

The legacy experiment surface still works (and now routes through the
service)::

    from repro import run_experiment

    result = run_experiment(ExperimentConfig(mode=MODE_JIT, seed=7,
                                             duration_s=120.0))
    print(result.metrics.success_ratio())

Subpackages:

* ``repro.api`` — **the stable public surface**: ``MobiQueryService``
  (submit/stream/cancel sessions, heterogeneous per-user queries),
  admission control, and the declarative scenario registry.
* ``repro.sim`` — event kernel, processes, RNG streams, tracing.
* ``repro.geometry`` — 2-D vectors, circles, spatial grid.
* ``repro.net`` — channel, CSMA/CA MAC, 802.11-PSM duty cycling, energy,
  sensor nodes, geographic routing, scoped flooding, synthetic fields.
* ``repro.power`` — CCP / SPAN / GAF backbone selection.
* ``repro.mobility`` — user paths, GPS error, motion profiles,
  planner/predictor providers.
* ``repro.core`` — the MobiQuery protocol (JIT + greedy prefetching, query
  trees, data collection, cancellation), the NP baseline, Section 5
  closed-form analysis, Section 6 metrics.
* ``repro.workload`` — multi-user workloads: N concurrent query sessions
  with independent motion/arrival processes on one shared network.
* ``repro.cluster`` — the sharded query plane: regional shard worlds, a
  geometry router and worker-process execution behind the same
  ``QueryBackend`` surface as the single service.
* ``repro.faults`` — the deterministic fault-injection plane: declarative
  ``FaultPlan`` schedules (crashes, blackouts, radio degradation, worker
  kills) executed off a dedicated RNG stream, plus the adversarial
  robustness sweep (``repro.faults.sweep``).
* ``repro.experiments`` — per-figure experiment harness.
"""

from .api import (
    AcceptAllPolicy,
    AdmissionDecision,
    AdmissionError,
    AdmissionPolicy,
    BackendStats,
    MobiQueryService,
    PerAreaCapPolicy,
    PeriodOutcome,
    PhaseAssignPolicy,
    QueryBackend,
    QueryRequest,
    ScenarioResult,
    ScenarioSpec,
    ServiceClosedError,
    SessionHandle,
    build_backend,
    get_scenario,
    list_scenarios,
    load_scenario_file,
    make_admission_policy,
    run_scenario,
    validate_query_params,
)
from .cluster import ClusterService
from .faults import FaultInjector, FaultPlan, load_fault_file
from .core import (
    AggregateState,
    Aggregation,
    AnalysisParams,
    MobiQueryConfig,
    MobiQueryGateway,
    MobiQueryProtocol,
    NoPrefetchGateway,
    NoPrefetchProtocol,
    QuerySpec,
    SessionMetrics,
    build_session_metrics,
    measure_power,
)
from .experiments import (
    MODE_GREEDY,
    MODE_IDLE,
    MODE_JIT,
    MODE_NP,
    ExperimentConfig,
    RunResult,
    paper_section62_config,
    paper_section63_config,
    run_experiment,
    run_replications,
)
from .geometry import (
    Circle,
    DiskTemplate,
    Rect,
    RectTemplate,
    SectorTemplate,
    Vec2,
)
from .mobility import (
    FullKnowledgeProvider,
    GpsModel,
    HistoryPredictorProvider,
    MotionProfile,
    PiecewisePath,
    PlannerProfileProvider,
    RandomDirectionConfig,
    random_direction_path,
)
from .net import NetworkConfig, build_network
from .power import AlwaysOnProtocol, CcpProtocol, GafProtocol, SpanProtocol
from .sim import RandomStreams, Simulator, Tracer
from .workload import (
    ARRIVAL_POISSON,
    ARRIVAL_SIMULTANEOUS,
    ARRIVAL_STAGGERED,
    ARRIVAL_UNIFORM,
    SessionResult,
    UserPlan,
    UserSession,
    Workload,
    WorkloadResult,
    arrival_times,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # api (the stable service surface)
    "QueryBackend",
    "BackendStats",
    "MobiQueryService",
    "ClusterService",
    "SessionHandle",
    "QueryRequest",
    "PeriodOutcome",
    "AdmissionError",
    "ServiceClosedError",
    "AdmissionPolicy",
    "AdmissionDecision",
    "AcceptAllPolicy",
    "PerAreaCapPolicy",
    "PhaseAssignPolicy",
    "make_admission_policy",
    "validate_query_params",
    "ScenarioSpec",
    "ScenarioResult",
    "get_scenario",
    "list_scenarios",
    "load_scenario_file",
    "run_scenario",
    "build_backend",
    # faults (the deterministic fault-injection plane)
    "FaultPlan",
    "FaultInjector",
    "load_fault_file",
    # experiments
    "ExperimentConfig",
    "RunResult",
    "run_experiment",
    "run_replications",
    "paper_section62_config",
    "paper_section63_config",
    "MODE_JIT",
    "MODE_GREEDY",
    "MODE_NP",
    "MODE_IDLE",
    # core
    "QuerySpec",
    "Aggregation",
    "AggregateState",
    "MobiQueryProtocol",
    "MobiQueryConfig",
    "MobiQueryGateway",
    "NoPrefetchProtocol",
    "NoPrefetchGateway",
    "SessionMetrics",
    "build_session_metrics",
    "measure_power",
    "AnalysisParams",
    # substrate
    "NetworkConfig",
    "build_network",
    "CcpProtocol",
    "SpanProtocol",
    "GafProtocol",
    "AlwaysOnProtocol",
    "Simulator",
    "RandomStreams",
    "Tracer",
    "Vec2",
    "Circle",
    "Rect",
    "DiskTemplate",
    "SectorTemplate",
    "RectTemplate",
    # mobility
    "PiecewisePath",
    "MotionProfile",
    "RandomDirectionConfig",
    "random_direction_path",
    "GpsModel",
    "FullKnowledgeProvider",
    "PlannerProfileProvider",
    "HistoryPredictorProvider",
    # workload
    "Workload",
    "WorkloadResult",
    "UserPlan",
    "UserSession",
    "SessionResult",
    "arrival_times",
    "ARRIVAL_SIMULTANEOUS",
    "ARRIVAL_STAGGERED",
    "ARRIVAL_UNIFORM",
    "ARRIVAL_POISSON",
]
