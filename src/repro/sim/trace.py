"""Structured event tracing.

Experiments need post-hoc visibility into protocol behaviour (when was each
tree set up? how many setup floods overlapped? which packets collided?)
without sprinkling metric-specific bookkeeping through the protocol code.
Components emit trace records; metric collectors subscribe to the kinds they
care about.  Recording is cheap when nobody subscribed.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence: a kind, a timestamp, and free-form fields."""

    kind: str
    time: float
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class Tracer:
    """Pub/sub sink for :class:`TraceRecord` instances.

    ``keep`` controls retention: kinds listed there are stored for later
    querying (experiments enable only what they analyse); every emitted kind
    is always counted.
    """

    def __init__(self, keep: Optional[List[str]] = None, keep_all: bool = False) -> None:
        self.keep_all = keep_all
        self._keep = set(keep or [])
        self._records: List[TraceRecord] = []
        self.counts: Counter = Counter()
        self._subscribers: Dict[str, List[Callable[[TraceRecord], None]]] = defaultdict(list)
        #: kinds somebody retains or subscribes to (``wants``'s fast set);
        #: kept in sync by ``keep_kind``/``subscribe``.
        self._active_kinds = set(self._keep)

    def keep_kind(self, kind: str) -> None:
        """Start retaining records of ``kind``."""
        self._keep.add(kind)
        self._active_kinds.add(kind)

    def subscribe(self, kind: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback(record)`` for every emitted record of ``kind``."""
        self._subscribers[kind].append(callback)
        self._active_kinds.add(kind)

    def wants(self, kind: str) -> bool:
        """Whether emitting ``kind`` does more than bump its counter.

        Hot emitters (the channel's per-frame ``tx``/``rx``/``collision``)
        check this before building the record's field set; when it is False
        they call :meth:`tick` instead, which is observably identical to
        ``emit`` for an unwatched kind.
        """
        return self.keep_all or kind in self._active_kinds

    def tick(self, kind: str) -> None:
        """Count an occurrence of ``kind`` without building a record."""
        self.counts[kind] += 1

    def tick_many(self, kind: str, n: int) -> None:
        """Count ``n`` occurrences of ``kind`` at once (batch ``tick``).

        Batch emitters (the channel resolves a whole frame's receiver
        cohort in one event) tally their unwatched outcomes locally and
        bump the counter once per batch; observably identical to ``n``
        ``tick`` calls.
        """
        self.counts[kind] += n

    def emit(self, kind: str, time: float, **fields: Any) -> None:
        """Emit a record.  Cheap when the kind is neither kept nor subscribed."""
        self.counts[kind] += 1
        subscribers = self._subscribers.get(kind)
        retain = self.keep_all or kind in self._keep
        if not subscribers and not retain:
            return
        record = TraceRecord(kind, time, fields)
        if retain:
            self._records.append(record)
        if subscribers:
            for callback in subscribers:
                callback(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """Retained records, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def count(self, kind: str) -> int:
        """How many records of ``kind`` were emitted (kept or not)."""
        return self.counts[kind]

    def clear(self) -> None:
        """Drop retained records and counters."""
        self._records.clear()
        self.counts.clear()


class NullTracer(Tracer):
    """A tracer that never retains anything (still counts kinds)."""

    def __init__(self) -> None:
        super().__init__(keep=None, keep_all=False)
