"""Discrete-event simulation kernel.

This is the substrate everything else runs on — the role ns-2's scheduler
played for the paper.  The kernel is a plain binary-heap event loop with:

* ``schedule(delay, fn, *args)`` / ``schedule_at(time, fn, *args)`` returning
  cancellable handles,
* deterministic FIFO ordering for simultaneous events (tie-broken by a
  monotonically increasing sequence number, so two events scheduled for the
  same instant fire in scheduling order),
* ``run(until=...)`` which executes events with ``time <= until`` and leaves
  the clock at ``until``.

Protocol code that reads better as a coroutine uses :mod:`repro.sim.process`
on top of this; hot paths (MAC timers, receptions) call ``schedule``
directly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, re-running, ...)."""


class EventHandle:
    """A scheduled callback.  ``cancel()`` prevents it from firing."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event.  Cancelling twice or after firing is a no-op."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not self.cancelled and self.fn is not None

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """The event loop.

    A single ``Simulator`` instance owns simulated time for one experiment
    run.  All model components keep a reference to it and schedule their
    callbacks through it.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_executed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time``.

        Raises:
            SimulationError: if ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        handle = EventHandle(time, next(self._seq), fn, args)
        heapq.heappush(self._queue, handle)
        return handle

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current time (after pending peers)."""
        return self.schedule_at(self._now, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is drained."""
        self._drop_cancelled()
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remained."""
        self._drop_cancelled()
        if not self._queue:
            return False
        handle = heapq.heappop(self._queue)
        self._now = handle.time
        fn, args = handle.fn, handle.args
        handle.fn, handle.args = None, ()
        self.events_executed += 1
        assert fn is not None
        fn(*args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        After the call the clock equals ``until`` when one was given (even if
        the queue drained earlier), so follow-up scheduling is relative to
        the requested horizon.

        Args:
            until: absolute stop time; events at exactly ``until`` run.
            max_events: safety valve for runaway models; raises
                ``SimulationError`` when exceeded.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until:.6f}) is before now={self._now:.6f}"
            )
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while not self._stopped:
                self._drop_cancelled()
                if not self._queue:
                    break
                if until is not None and self._queue[0].time > until:
                    break
                self.step()
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway model?)"
                    )
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Stop the current ``run()`` after the executing event returns."""
        self._stopped = True

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(1 for h in self._queue if h.pending)

    def _drop_cancelled(self) -> None:
        queue = self._queue
        while queue and not queue[0].pending:
            heapq.heappop(queue)
