"""Discrete-event simulation kernel.

This is the substrate everything else runs on — the role ns-2's scheduler
played for the paper.  The kernel is a plain binary-heap event loop with:

* ``schedule(delay, fn, *args)`` / ``schedule_at(time, fn, *args)`` returning
  cancellable handles,
* deterministic FIFO ordering for simultaneous events (tie-broken by a
  monotonically increasing sequence number, so two events scheduled for the
  same instant fire in scheduling order),
* ``run(until=...)`` which executes events with ``time <= until`` and leaves
  the clock at ``until``.

Protocol code that reads better as a coroutine uses :mod:`repro.sim.process`
on top of this; hot paths (MAC timers, receptions) call ``schedule``
directly.

Hot-path layout: the heap stores ``(time, seq, handle)`` tuples so ordering
is resolved by C-level tuple comparison instead of a Python ``__lt__`` call
per heap swap (the single largest per-event cost in profiles).  ``seq`` is
unique, so the handle itself is never compared.  Cancelled events stay in
the heap until they surface, but a live counter keeps ``pending_count``
O(1) and triggers an in-place compaction when cancellations dominate the
queue, so cancel-heavy models (MAC ACK timers) never pay for re-sifting
dead entries.
"""

from __future__ import annotations

import gc
import heapq
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, re-running, ...)."""


class EventHandle:
    """A scheduled callback.  ``cancel()`` prevents it from firing."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Cancel the event.  Cancelling twice or after firing is a no-op."""
        was_queued = self.fn is not None and not self.cancelled
        # Flip the flag before notifying the kernel: _note_cancelled may
        # compact the heap and must see this handle as already cancelled.
        self.cancelled = True
        self.fn = None
        self.args = ()
        if was_queued:
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not self.cancelled and self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


#: heap entry: ``(time, seq, handle)`` for cancellable events or
#: ``(time, seq, None, fn, args)`` for fire-and-forget ones — compared as a
#: tuple; ``seq`` is unique so the third element never takes part.
_Entry = Tuple[Any, ...]

#: compact the heap only when at least this many cancelled entries linger
_COMPACT_MIN_CANCELLED = 64


class Simulator:
    """The event loop.

    A single ``Simulator`` instance owns simulated time for one experiment
    run.  All model components keep a reference to it and schedule their
    callbacks through it.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        #: current simulated time in seconds.  A plain attribute — reading
        #: the clock is ubiquitous on hot paths and a property costs a
        #: Python call per read.  Owned by the kernel; never assign to it.
        self.now = float(start_time)
        self._queue: List[_Entry] = []
        self._seq = 0
        self._cancelled = 0
        self._running = False
        self._stopped = False
        self.events_executed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        # Fast path: the relative-delay form is the hot one (MAC timers,
        # receptions); inline the push instead of dispatching through
        # schedule_at so each event costs one call, not two.
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, fn, args, self)
        heappush(self._queue, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time``.

        Raises:
            SimulationError: if ``time`` precedes the current clock.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self.now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, fn, args, self)
        heappush(self._queue, (time, seq, handle))
        return handle

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current time (after pending peers)."""
        return self.schedule_at(self.now, fn, *args)

    def schedule_fast(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget ``schedule``: no :class:`EventHandle` is created.

        For hot internal timers that are never cancelled (MAC attempts, PSM
        boundaries, transmission completions).  Ordering semantics are
        identical to ``schedule``; the only difference is that the event
        cannot be cancelled because nothing refers to it.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self.now + delay, seq, None, fn, args))

    def schedule_at_fast(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget ``schedule_at`` (see :meth:`schedule_fast`).

        Raises:
            SimulationError: if ``time`` precedes the current clock.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self.now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (time, seq, None, fn, args))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is drained."""
        self._drop_cancelled()
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remained."""
        self._drop_cancelled()
        if not self._queue:
            return False
        entry = heapq.heappop(self._queue)
        self.now = entry[0]
        handle = entry[2]
        if handle is None:
            fn, args = entry[3], entry[4]
        else:
            fn, args = handle.fn, handle.args
            handle.fn, handle.args = None, ()
        self.events_executed += 1
        assert fn is not None
        fn(*args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        After the call the clock equals ``until`` when one was given (even if
        the queue drained earlier), so follow-up scheduling is relative to
        the requested horizon.

        Args:
            until: absolute stop time; events at exactly ``until`` run.
            max_events: safety valve for runaway models; at most
                ``max_events`` events execute, and ``SimulationError`` is
                raised when a further event would run.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        if until is not None and until < self.now:
            raise SimulationError(
                f"run(until={until:.6f}) is before now={self.now:.6f}"
            )
        self._running = True
        self._stopped = False
        executed = 0
        # Event execution allocates heavily (frames, receptions, Vec2s) but
        # the model creates no reference cycles; pausing the cyclic GC for
        # the run avoids full-heap scans mid-simulation.  Restored below.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # The queue list is only ever mutated in place (heappush/heappop and
        # the in-place compaction), so holding one reference stays valid.
        queue = self._queue
        try:
            while not self._stopped:
                # Inlined _drop_cancelled/step: one loop iteration per event
                # with no extra method dispatch on the hot path.
                if not queue:
                    break
                entry = queue[0]
                handle = entry[2]
                if handle is not None and handle.cancelled:
                    heappop(queue)
                    self._cancelled -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway model?)"
                    )
                heappop(queue)
                self.now = time
                self.events_executed += 1
                executed += 1
                if handle is None:
                    entry[3](*entry[4])
                else:
                    fn, args = handle.fn, handle.args
                    handle.fn, handle.args = None, ()
                    fn(*args)
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()
        if until is not None and not self._stopped and self.now < until:
            self.now = until

    def stop(self) -> None:
        """Stop the current ``run()`` after the executing event returns."""
        self._stopped = True

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._queue) - self._cancelled

    def _note_cancelled(self) -> None:
        """A queued handle was cancelled; compact if the heap is mostly dead."""
        self._cancelled += 1
        queue = self._queue
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(queue)
        ):
            # In-place so aliases held by a running loop stay valid.
            queue[:] = [
                entry
                for entry in queue
                if entry[2] is None or not entry[2].cancelled
            ]
            heapq.heapify(queue)
            self._cancelled = 0

    def _drop_cancelled(self) -> None:
        queue = self._queue
        while queue:
            handle = queue[0][2]
            if handle is None or not handle.cancelled:
                return
            heapq.heappop(queue)
            self._cancelled -= 1
