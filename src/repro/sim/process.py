"""Generator-based processes on top of the event kernel.

Protocol logic like "flood the setup message, wait for joins until the
sub-deadline, then send the aggregate upstream" reads far better as a
coroutine than as a callback chain.  A :class:`Process` drives a generator
that can yield:

* :class:`Timeout` — resume after a simulated delay,
* :class:`Signal` — resume when another component triggers it (optionally
  receiving the value passed to :meth:`Signal.trigger`),
* another :class:`Process` — resume when that process finishes.

A process is itself a :class:`Signal`, triggered with the generator's return
value, so processes compose.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from .kernel import EventHandle, SimulationError, Simulator


class Signal:
    """A one-shot level-triggered event that processes can wait on."""

    __slots__ = ("sim", "_callbacks", "triggered", "value", "name")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: List[Callable[["Signal"], None]] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, waking all waiters with ``value``.

        Raises:
            SimulationError: when triggered a second time.
        """
        if self.triggered:
            raise SimulationError(f"signal {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.call_soon(cb, self)

    def add_callback(self, cb: Callable[["Signal"], None]) -> None:
        """Register ``cb(signal)``; runs immediately if already triggered."""
        if self.triggered:
            self.sim.call_soon(cb, self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "triggered" if self.triggered else "pending"
        return f"<Signal {self.name!r} {state}>"


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = delay


class Interrupted(Exception):
    """Thrown into a process when it is interrupted.

    Carries the ``reason`` passed to :meth:`Process.interrupt`.
    """

    def __init__(self, reason: Any = None) -> None:
        super().__init__(reason)
        self.reason = reason


class Process(Signal):
    """Drives a generator, suspending at each yield.

    The process finishes when the generator returns (or raises
    ``StopIteration``); its :class:`Signal` then triggers with the return
    value.  Exceptions other than the interrupt escape to the kernel and
    abort the run — silent failure would corrupt experiment results.
    """

    __slots__ = ("_gen", "_pending_timeout", "alive")

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim, name=name)
        self._gen = generator
        self._pending_timeout: Optional[EventHandle] = None
        self.alive = True
        sim.call_soon(self._resume, None, None)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def interrupt(self, reason: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its yield point.

        A finished process ignores interrupts (races between a natural
        completion and an interrupt resolve in favour of the completion).
        """
        if not self.alive:
            return
        if self._pending_timeout is not None:
            self._pending_timeout.cancel()
            self._pending_timeout = None
        self.sim.call_soon(self._resume, None, Interrupted(reason))

    # ------------------------------------------------------------------
    # Engine
    # ------------------------------------------------------------------
    def _resume(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if not self.alive:
            return
        self._pending_timeout = None
        try:
            if throw_exc is not None:
                yielded = self._gen.throw(throw_exc)
            else:
                yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self.trigger(stop.value)
            return
        except Interrupted:
            # Process chose not to catch its interrupt: it just dies quietly,
            # which is the common "cancel this collector" path.
            self.alive = False
            if not self.triggered:
                self.trigger(None)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._pending_timeout = self.sim.schedule(
                yielded.delay, self._resume, None, None
            )
        elif isinstance(yielded, Signal):
            yielded.add_callback(self._on_signal)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {yielded!r}"
            )

    def _on_signal(self, signal: Signal) -> None:
        if self.alive:
            self._resume(signal.value, None)


def start_process(
    sim: Simulator, generator: Generator[Any, Any, Any], name: str = ""
) -> Process:
    """Convenience wrapper: ``Process(sim, generator, name)``."""
    return Process(sim, generator, name=name)
