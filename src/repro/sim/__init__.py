"""Discrete-event simulation substrate: kernel, processes, RNG, tracing."""

from .kernel import EventHandle, SimulationError, Simulator
from .process import Interrupted, Process, Signal, Timeout, start_process
from .rng import RandomStreams
from .trace import NullTracer, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "EventHandle",
    "SimulationError",
    "Process",
    "Signal",
    "Timeout",
    "Interrupted",
    "start_process",
    "RandomStreams",
    "Tracer",
    "NullTracer",
    "TraceRecord",
]
