"""Reproducible random-number streams.

Every stochastic component (topology placement, MAC backoff, mobility, GPS
error, CCP timers) draws from its own named stream derived from one root
seed, so that:

* a run is exactly reproducible from its seed,
* changing how one component consumes randomness does not perturb the
  others (no shared-stream coupling between, say, backoff and mobility),
* experiment replications use ``seed + replication_index``.

Streams are numpy ``Generator`` instances spawned from a ``SeedSequence``
keyed by the stream name, which is the recommended way to build independent
streams.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A family of independent named RNG streams under one root seed."""

    def __init__(self, root_seed: int) -> None:
        if root_seed < 0:
            raise ValueError(f"root seed must be >= 0, got {root_seed}")
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created deterministically on demand.

        The same ``(root_seed, name)`` pair always yields a generator with
        the same state history.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Key the child sequence by the stream name's bytes so stream
            # identity is stable across runs and insertion orders.
            key = [self.root_seed] + list(name.encode("utf-8"))
            gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence(key)))
            self._streams[name] = gen
        return gen

    def spawn(self, salt: int) -> "RandomStreams":
        """A derived family for replication ``salt`` (e.g. per-run seeds)."""
        return RandomStreams(self.root_seed * 1_000_003 + salt)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomStreams(root_seed={self.root_seed})"
