"""Spatial partitioners: how the cluster splits the field into shards.

A :class:`Partitioner` turns one field rectangle into ``k`` disjoint shard
regions whose union is the field.  Two ship:

* :class:`GridStripePartitioner` — ``k`` equal vertical stripes.  The
  simplest possible scheme; stripes get thin for large ``k`` (a 450 m
  field split 8 ways leaves 56 m-wide shards, narrower than one radio
  range), so it is mainly the didactic/baseline choice.
* :class:`BalancedKDPartitioner` — recursive longest-side halving (a kd
  tree over area): every split divides the region perpendicular to its
  longer side, in proportion to how many leaves each half must produce.
  Cells stay near-square at any ``k``, which keeps per-shard worlds
  usable (a shard should comfortably contain a query footprint).

Partitions are pure functions of ``(region, k)`` — no randomness — so a
cluster's shard layout is part of its reproducible identity.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..geometry.shapes import Rect


def overlap_area(a: Rect, b: Rect) -> float:
    """Area of the intersection of two rectangles (0.0 when disjoint)."""
    w = min(a.x_max, b.x_max) - max(a.x_min, b.x_min)
    h = min(a.y_max, b.y_max) - max(a.y_min, b.y_min)
    if w <= 0.0 or h <= 0.0:
        return 0.0
    return w * h


class Partitioner:
    """Base class: split a region into ``k`` disjoint covering rects."""

    #: registry name (scenario specs and the CLI)
    name = "partitioner"

    def partition(self, region: Rect, k: int) -> List[Rect]:
        """The ``k`` shard regions, in stable shard-index order.

        Must return exactly ``k`` disjoint rectangles covering ``region``;
        ``k == 1`` must return ``[region]`` unchanged (the single-shard
        cluster is bit-identical to a single service).
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (CLI output)."""
        return self.name


def _check_k(region: Rect, k: int) -> None:
    if k < 1:
        raise ValueError(f"shard count must be >= 1, got {k}")
    if region.width <= 0 or region.height <= 0:
        raise ValueError("cannot partition a degenerate (zero-area) region")


class GridStripePartitioner(Partitioner):
    """``k`` equal vertical stripes, left to right."""

    name = "grid-stripe"

    def partition(self, region: Rect, k: int) -> List[Rect]:
        _check_k(region, k)
        if k == 1:
            return [region]
        width = region.width / k
        stripes = []
        for i in range(k):
            x_min = region.x_min + i * width
            # The last stripe takes the exact region edge so float
            # accumulation can never leave a sliver uncovered.
            x_max = region.x_max if i == k - 1 else region.x_min + (i + 1) * width
            stripes.append(Rect(x_min, region.y_min, x_max, region.y_max))
        return stripes

    def describe(self) -> str:
        return "grid-stripe(vertical stripes)"


class BalancedKDPartitioner(Partitioner):
    """Recursive longest-side halving: near-square cells for any ``k``.

    Each split is perpendicular to the region's longer side and divides
    the area in proportion ``k_left : k_right`` (``k_left = k // 2``), so
    every leaf ends up with the same area even when ``k`` is not a power
    of two.  Leaf order is left/bottom first, giving a stable shard
    numbering.
    """

    name = "balanced-kd"

    def partition(self, region: Rect, k: int) -> List[Rect]:
        _check_k(region, k)
        return self._split(region, k)

    def _split(self, region: Rect, k: int) -> List[Rect]:
        if k == 1:
            return [region]
        k_lo = k // 2
        frac = k_lo / k
        if region.width >= region.height:
            cut = region.x_min + region.width * frac
            lo = Rect(region.x_min, region.y_min, cut, region.y_max)
            hi = Rect(cut, region.y_min, region.x_max, region.y_max)
        else:
            cut = region.y_min + region.height * frac
            lo = Rect(region.x_min, region.y_min, region.x_max, cut)
            hi = Rect(region.x_min, cut, region.x_max, region.y_max)
        return self._split(lo, k_lo) + self._split(hi, k - k_lo)

    def describe(self) -> str:
        return "balanced-kd(longest-side halving)"


#: partitioner-name registry for scenario specs and the CLI
PARTITIONERS: Dict[str, Type[Partitioner]] = {
    GridStripePartitioner.name: GridStripePartitioner,
    BalancedKDPartitioner.name: BalancedKDPartitioner,
}

#: the default scheme (near-square cells scale to any shard count)
DEFAULT_PARTITIONER = BalancedKDPartitioner.name


def make_partitioner(spec) -> Partitioner:
    """Build a partitioner from its registry name (or pass one through)."""
    if isinstance(spec, Partitioner):
        return spec
    if spec is None:
        spec = DEFAULT_PARTITIONER
    cls = PARTITIONERS.get(spec)
    if cls is None:
        raise ValueError(
            f"unknown partitioner {spec!r}; expected one of {sorted(PARTITIONERS)}"
        )
    return cls()


def shard_node_counts(total_nodes: int, regions: List[Rect]) -> List[int]:
    """Distribute ``total_nodes`` over shard regions proportional to area.

    Largest-remainder rounding: counts sum exactly to ``total_nodes`` and
    every shard keeps at least one node (a world needs a sensor to exist),
    so the cluster preserves the single-world node density and total.
    """
    if total_nodes < len(regions):
        raise ValueError(
            f"{total_nodes} nodes cannot populate {len(regions)} shards "
            f"(every shard world needs at least one node)"
        )
    total_area = sum(r.area() for r in regions)
    shares = [total_nodes * r.area() / total_area for r in regions]
    counts = [max(1, int(s)) for s in shares]
    remainders = sorted(
        range(len(regions)),
        key=lambda i: (shares[i] - int(shares[i]), -i),
        reverse=True,
    )
    idx = 0
    while sum(counts) < total_nodes:
        counts[remainders[idx % len(remainders)]] += 1
        idx += 1
    while sum(counts) > total_nodes:  # min-1 clamps can overshoot
        donor = max(range(len(counts)), key=lambda i: counts[i])
        if counts[donor] <= 1:  # pragma: no cover - guarded by the check above
            break
        counts[donor] -= 1
    return counts


__all__ = [
    "Partitioner",
    "GridStripePartitioner",
    "BalancedKDPartitioner",
    "PARTITIONERS",
    "DEFAULT_PARTITIONER",
    "make_partitioner",
    "overlap_area",
    "shard_node_counts",
]
