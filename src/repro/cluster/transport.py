"""Worker-process transport: running shard worlds in parallel.

Shard worlds are deterministic functions of ``(config, ordered
submissions, ordered admission decisions)``: rebuilding a world from the
same triple replays the exact RNG draws and kernel events the in-process
world would execute.  That is what makes the cluster's ``workers=N`` mode
safe — :class:`ClusterService` records each shard's submission/decision
log, ships one :class:`ShardPlan` per shard to a worker process, and the
worker replays it to the horizon and returns the scored sessions.  The
results are bit-identical to running the same shard in-process.

``parallel_map`` is the process-pool plumbing extracted from
``run_replications_parallel`` (PR 2) and shared with it: fork start
method where available, graceful ``None`` return (caller falls back to
serial) when process pools are unavailable or die — restricted sandboxes
and 1-CPU boxes degrade cleanly.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..api.admission import AdmissionDecision, AdmissionPolicy
from ..api.backend import BackendStats
from ..api.requests import QueryRequest
from ..experiments.config import ExperimentConfig
from ..faults.plan import FaultPlan
from ..workload.session import SessionResult


def parallel_map(
    fn: Callable,
    items: Sequence,
    max_workers: int,
) -> Optional[List]:
    """``[fn(x) for x in items]`` across OS processes; ``None`` on fallback.

    Returns results in item order, or ``None`` when a process pool cannot
    be used (single worker requested, pools unavailable in this sandbox,
    workers killed mid-flight, or unpicklable payloads) — the caller runs
    its serial path instead.  ``fn`` must be a module-level callable.
    """
    if max_workers <= 1 or len(items) <= 1:
        return None
    import concurrent.futures
    import multiprocessing

    # fork keeps startup cheap and inherits the imported model code; fall
    # back to the platform default (spawn) where fork is unavailable.
    mp_context = None
    if "fork" in multiprocessing.get_all_start_methods():
        mp_context = multiprocessing.get_context("fork")
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers, mp_context=mp_context
        ) as pool:
            return list(pool.map(fn, items))
    except (OSError, PermissionError, pickle.PicklingError,
            concurrent.futures.BrokenExecutor):
        # No process support (seccomp'd CI, restricted container), killed
        # workers (BrokenProcessPool), or an unpicklable payload: degrade
        # gracefully to the caller's serial path rather than fail the run.
        return None


class ReplayAdmissionPolicy(AdmissionPolicy):
    """Replay a pre-recorded decision sequence, one per submission.

    The cluster decided admission in-process (with the cluster-wide view);
    a worker rebuilding the shard must reproduce those exact verdicts —
    re-running a policy shard-locally could decide differently (e.g. a
    phase slot counted cluster-wide).  Decisions are consumed in
    submission order; running out is a protocol violation and raises.
    """

    name = "replay"

    def __init__(self, decisions: Sequence[AdmissionDecision]) -> None:
        self._decisions = list(decisions)
        self._next = 0

    def decide(self, spec, path, service) -> AdmissionDecision:
        if self._next >= len(self._decisions):
            raise RuntimeError(
                f"replay exhausted after {len(self._decisions)} decisions — "
                f"the worker submitted more requests than the plan recorded"
            )
        decision = self._decisions[self._next]
        self._next += 1
        return decision

    def describe(self) -> str:
        return f"replay({len(self._decisions)} decisions)"


class RecordingAdmissionPolicy(AdmissionPolicy):
    """Wrap a policy and remember every verdict it hands out, in order.

    The serve daemon's determinism lever: each accepted-or-rejected
    submission's decision is appended to :attr:`decisions`, so the daemon
    can write a submission log whose replay (via
    :class:`ReplayAdmissionPolicy`) reproduces the live run bit-identically
    — including the RNG draws a *rejected* submission consumed.
    """

    name = "recording"

    def __init__(self, inner: AdmissionPolicy) -> None:
        self.inner = inner
        self.decisions: List[AdmissionDecision] = []

    def decide(self, spec, path, service) -> AdmissionDecision:
        decision = self.inner.decide(spec, path, service)
        self.decisions.append(decision)
        return decision

    def describe(self) -> str:
        return f"recording({self.inner.describe()})"


def decision_to_dict(decision: AdmissionDecision) -> dict:
    """JSON-able form of one admission decision (submission-log entry)."""
    return {
        "admitted": decision.admitted,
        "reason": decision.reason,
        "start_offset_s": decision.start_offset_s,
    }


def decision_from_dict(data: dict) -> AdmissionDecision:
    """Rebuild a decision from :func:`decision_to_dict` output (strict)."""
    extra = set(data) - {"admitted", "reason", "start_offset_s"}
    if extra:
        raise ValueError(f"unknown decision keys: {sorted(extra)}")
    return AdmissionDecision(
        admitted=bool(data["admitted"]),
        reason=str(data.get("reason", "")),
        start_offset_s=float(data.get("start_offset_s", 0.0)),
    )


@dataclass(frozen=True)
class ShardPlan:
    """Everything a worker needs to rebuild and run one shard world."""

    #: shard index in the cluster (for error messages / ordering)
    shard: int
    #: the shard world's full config (region/node-count already sliced)
    config: ExperimentConfig
    #: submissions in order, with cluster-assigned user ids baked in
    requests: Tuple[QueryRequest, ...] = ()
    #: the admission verdict recorded for each submission, same order
    decisions: Tuple[AdmissionDecision, ...] = ()
    #: the cluster's fault plan (each shard applies what falls inside its
    #: world: crashes above the shard's node count are skipped, blackouts
    #: outside its region find no victims); None = fault-free
    faults: Optional[FaultPlan] = None


@dataclass(frozen=True)
class ShardOutcome:
    """What a worker reports back for one shard, in submission order."""

    shard: int
    #: final handle status per submission ("completed" / "rejected")
    statuses: Tuple[str, ...] = ()
    #: scored session per submission (None for rejected ones)
    sessions: Tuple[Optional[SessionResult], ...] = ()
    #: the shard's final counter snapshot
    stats: Optional[BackendStats] = None


def run_shard_plan(plan: ShardPlan) -> ShardOutcome:
    """Rebuild one shard world from its plan and run it to the horizon.

    Module-level so process pools can pickle it.  Deterministic: the same
    plan always yields the same outcome, bit-identical to the in-process
    shard it was recorded from.
    """
    from ..api.service import MobiQueryService

    service = MobiQueryService(
        plan.config,
        admission=ReplayAdmissionPolicy(plan.decisions),
        faults=plan.faults,
    )
    for request in plan.requests:
        service.submit(request)
    service.finalize()
    sessions: List[Optional[SessionResult]] = []
    for handle in service.handles:
        sessions.append(handle.result() if handle.accepted else None)
    return ShardOutcome(
        shard=plan.shard,
        statuses=tuple(h.status for h in service.handles),
        sessions=tuple(sessions),
        stats=service.stats(),
    )


def run_shards_parallel(
    plans: Sequence[ShardPlan], max_workers: int
) -> Optional[List[ShardOutcome]]:
    """Run shard plans across worker processes; ``None`` means "go serial".

    The plans are pickled up front so an unpicklable payload (say, a
    caller-supplied profile provider holding an open resource) degrades to
    the serial path instead of exploding inside the pool.
    """
    try:
        pickle.dumps(plans)
    except Exception:
        return None
    return parallel_map(run_shard_plan, list(plans), max_workers=max_workers)


__all__ = [
    "RecordingAdmissionPolicy",
    "ReplayAdmissionPolicy",
    "ShardOutcome",
    "ShardPlan",
    "decision_from_dict",
    "decision_to_dict",
    "parallel_map",
    "run_shard_plan",
    "run_shards_parallel",
]
