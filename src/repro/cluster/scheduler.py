"""Lockstep epoch scheduler: advancing many shard kernels fairly.

Shard worlds are independent event kernels (queries never cross a shard
boundary), so *correctness* never requires synchronisation — but the
cluster still advances them in **lockstep epochs**: time is cut into
fixed slices and every shard finishes epoch ``e`` before any shard starts
``e + 1``.  That bounds shard clock skew to one epoch, which keeps
cluster-level snapshots (``stats()``, admission views over live sessions)
meaningful mid-run, and it is exactly the cadence a future message-passing
tier between shards would need (cross-shard traffic handed off at epoch
boundaries).
"""

from __future__ import annotations

from typing import List, Sequence

#: default epoch length: one paper query period — fine-grained enough that
#: mid-run cluster snapshots are coherent, coarse enough to stay off the
#: kernels' hot path
DEFAULT_EPOCH_S = 2.0


class LockstepScheduler:
    """Advance a fleet of shard kernels in bounded-skew epochs."""

    def __init__(self, sims: Sequence, epoch_s: float = DEFAULT_EPOCH_S) -> None:
        """Args:
        sims: the shard kernels (anything with ``now`` and ``run(until=)``).
        epoch_s: epoch length in simulated seconds.
        """
        if epoch_s <= 0:
            raise ValueError(f"epoch length must be > 0, got {epoch_s:g}")
        self.sims: List = list(sims)
        self.epoch_s = epoch_s
        #: epochs completed by every shard (monotonic, telemetry)
        self.epochs_run = 0

    def skew_s(self) -> float:
        """Current clock skew between the fastest and slowest shard."""
        if not self.sims:
            return 0.0
        nows = [sim.now for sim in self.sims]
        return max(nows) - min(nows)

    def advance(self, until: float) -> None:
        """Run every shard kernel to ``until``, one epoch at a time.

        Within an epoch shards run in shard-index order; an epoch only
        begins once every shard finished the previous one, so shard clocks
        never drift apart by more than ``epoch_s``.  Idempotent: shards
        already at or past ``until`` are left untouched.
        """
        if not self.sims:
            return
        floor = min(sim.now for sim in self.sims)
        while floor < until:
            target = min(until, floor + self.epoch_s)
            for sim in self.sims:
                if sim.now < target:
                    sim.run(until=target)
            self.epochs_run += 1
            floor = target


__all__ = ["DEFAULT_EPOCH_S", "LockstepScheduler"]
