"""``repro.cluster``: the backend-agnostic sharded query plane.

The field is naturally partitionable by region — a mobile user's query
only ever touches sensors inside its radius along the motion path — so
the cluster shards the world spatially: one full simulated world per
partition cell, a geometry router in front, and the stable
:class:`~repro.api.backend.QueryBackend` surface on top.  See
:mod:`repro.cluster.service` for the guarantees (single-shard
bit-identity, cluster-wide admission, lockstep epochs, worker-process
batch mode).
"""

from .partition import (
    DEFAULT_PARTITIONER,
    PARTITIONERS,
    BalancedKDPartitioner,
    GridStripePartitioner,
    Partitioner,
    make_partitioner,
    overlap_area,
    shard_node_counts,
)
from .scheduler import DEFAULT_EPOCH_S, LockstepScheduler
from .service import ClusterService
from .transport import (
    ReplayAdmissionPolicy,
    ShardOutcome,
    ShardPlan,
    parallel_map,
    run_shard_plan,
    run_shards_parallel,
)

__all__ = [
    "ClusterService",
    # partitioning
    "Partitioner",
    "GridStripePartitioner",
    "BalancedKDPartitioner",
    "PARTITIONERS",
    "DEFAULT_PARTITIONER",
    "make_partitioner",
    "overlap_area",
    "shard_node_counts",
    # scheduling
    "LockstepScheduler",
    "DEFAULT_EPOCH_S",
    # worker transport
    "ShardPlan",
    "ShardOutcome",
    "ReplayAdmissionPolicy",
    "run_shard_plan",
    "run_shards_parallel",
    "parallel_map",
]
