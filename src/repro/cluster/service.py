"""``ClusterService``: the sharded query plane behind the stable API.

One Python kernel tops out around 32 users x 200 nodes; the service
façade is the seam to scale past that.  A :class:`ClusterService`
partitions the sensor field into regional shards (pluggable
:class:`~repro.cluster.partition.Partitioner`), instantiates **one full
world per shard** — its own kernel, channel, backbone, protocol engine —
and routes every :class:`~repro.api.requests.QueryRequest` to the shard
its query geometry (motion path x radius) lives in.  Callers get back
the exact same :class:`~repro.api.service.SessionHandle` lifecycle
(``results()`` / ``cancel()`` / ``result()``) a single
:class:`~repro.api.service.MobiQueryService` hands out — the cluster is
just another :class:`~repro.api.backend.QueryBackend`.

Identity guarantees:

* ``ClusterService(config, shards=1)`` is **bit-identical** to
  ``MobiQueryService(config)``: one shard covers the whole region with
  the whole node budget and the base seed, requests route to it
  unchanged, and user ids are assigned by the same lowest-free rule.
* Shard worlds advance in lockstep epochs
  (:class:`~repro.cluster.scheduler.LockstepScheduler`), so cluster-wide
  snapshots (stats, admission views) are coherent mid-run.
* Admission aggregates cluster-wide: the configured policy sees the
  *cluster's* live sessions and admitted counts, so ``per-area-cap`` and
  ``phase-assign`` behave as if there were one big world.
* With ``workers=N`` the batch path (``finalize()``/``close()`` before
  any streaming) replays each shard's recorded submission/decision log in
  a worker process (:mod:`repro.cluster.transport`) — bit-identical
  results, real multi-core speedup, clean serial fallback on 1-CPU boxes
  or restricted sandboxes.

Sharding is an approximation the routing makes explicit: a query whose
footprint straddles a shard boundary is served entirely by the
best-overlapping shard (sensors beyond the boundary belong to another
world).  Keep shards at least a couple of radio ranges wide relative to
query radii — the balanced-kd partitioner's near-square cells are the
safe default.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Union

from ..api.admission import AcceptAllPolicy, AdmissionDecision, AdmissionPolicy
from ..api.backend import BackendStats
from ..api.requests import QueryRequest
from ..api.service import (
    RUN_TAIL_S,
    STATUS_CANCELLED,
    MobiQueryService,
    ServiceClosedError,
    SessionHandle,
    resolve_user_id,
)
from ..experiments.config import ExperimentConfig
from ..faults.plan import FaultPlan
from ..approx.plane import SummaryAnswer, merge_answers
from ..geometry.shapes import Rect
from ..workload.engine import WorkloadResult
from .partition import (
    Partitioner,
    make_partitioner,
    overlap_area,
    shard_node_counts,
)
from .scheduler import DEFAULT_EPOCH_S, LockstepScheduler
from .transport import ShardOutcome, ShardPlan, run_shards_parallel


class _ClusterAdmission(AdmissionPolicy):
    """Per-shard admission adapter: decide with the cluster-wide view.

    Installed as every shard service's policy.  A shard asking "may this
    session in?" is answered by the *cluster's* configured policy looking
    at the *cluster's* aggregate state (admitted counts and live sessions
    across all shards), and the verdict is logged so ``workers=N`` can
    replay the shard deterministically in a worker process.
    """

    def __init__(self, cluster: "ClusterService") -> None:
        self.cluster = cluster

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"cluster({self.cluster.admission.name})"

    def decide(self, spec, path, service) -> AdmissionDecision:
        decision = self.cluster.admission.decide(spec, path, self.cluster)
        self.cluster._record_decision(service, decision)
        return decision

    def describe(self) -> str:
        return f"cluster({self.cluster.admission.describe()})"


class ClusterService:
    """Regional shards behind the :class:`QueryBackend` surface.

    Args:
        config: the world description, exactly as for
            :class:`MobiQueryService`.  ``config.network.region`` is the
            *whole* field; each shard world gets one partition cell of it
            with a proportional share of ``n_nodes`` (density preserved)
            and seed ``config.seed + shard_index`` (shard 0 keeps the base
            seed — the single-shard identity).
        shards: how many regional worlds to run (>= 1).
        admission: the cluster-wide admission policy (default accept-all).
        partitioner: a :class:`Partitioner`, a registry name
            (``"balanced-kd"`` / ``"grid-stripe"``), or None for the
            default (balanced-kd).
        workers: worker processes for the batch ``finalize()`` path
            (0/1 = in-process; capped at the shard count).
        epoch_s: lockstep epoch length for cluster-level advancing.
        faults: optional cluster-wide :class:`FaultPlan`.  World faults
            (crashes/blackouts/degradations) are handed to every shard —
            each world applies what falls inside it, so ``shards=1`` stays
            bit-identical to a faulted single service.  ``worker_kills``
            exercise the batch path: the named shard's worker outcome is
            discarded once and the shard replayed on a fresh (serial)
            worker, bit-identically.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        shards: int = 1,
        admission: Optional[AdmissionPolicy] = None,
        partitioner: Union[Partitioner, str, None] = None,
        workers: int = 0,
        epoch_s: float = DEFAULT_EPOCH_S,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.config = config
        self.admission = admission or AcceptAllPolicy()
        self.partitioner = make_partitioner(partitioner)
        self.workers = workers
        self.faults = faults if faults is not None else FaultPlan()
        self.regions: List[Rect] = self.partitioner.partition(
            config.network.region, shards
        )
        counts = shard_node_counts(config.network.n_nodes, self.regions)
        self.shard_configs: List[ExperimentConfig] = [
            replace(
                config,
                seed=config.seed + index,
                network=replace(config.network, region=region, n_nodes=count),
            )
            for index, (region, count) in enumerate(zip(self.regions, counts))
        ]
        adapter = _ClusterAdmission(self)
        self.services: List[MobiQueryService] = [
            MobiQueryService(shard_config, admission=adapter, faults=self.faults)
            for shard_config in self.shard_configs
        ]
        self.scheduler = LockstepScheduler(
            [service.sim for service in self.services], epoch_s=epoch_s
        )
        #: every handle the cluster handed out, in submission order
        self.handles: List[SessionHandle] = []
        self._handle_shard: Dict[int, int] = {}
        #: per-shard submission/decision logs (the workers=N replay source)
        self._requests_log: List[List[QueryRequest]] = [[] for _ in range(shards)]
        self._decisions_log: List[List[AdmissionDecision]] = [
            [] for _ in range(shards)
        ]
        self._stats_override: Dict[int, BackendStats] = {}
        self._completed = False
        self._closed = False
        self._closed_result: Optional[WorkloadResult] = None
        #: True when the last finalize actually ran in worker processes
        self.parallel_used = False

    # ------------------------------------------------------------------
    # Introspection (the surface admission policies consult)
    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        """The service horizon (shared by every shard)."""
        return self.config.duration_s

    @property
    def num_shards(self) -> int:
        return len(self.services)

    def admitted_count(self) -> int:
        """Sessions ever admitted, cluster-wide (phase-slot counter)."""
        return sum(service.admitted_count() for service in self.services)

    def admitted_handles(self) -> List[SessionHandle]:
        """Admitted handles in cluster submission order."""
        return [h for h in self.handles if h.accepted]

    def live_session_specs(self, at: float) -> List[SessionHandle]:
        """Admitted, uncancelled sessions live at ``at``, across shards."""
        return [
            handle
            for service in self.services
            for handle in service.live_session_specs(at)
        ]

    def shard_of(self, handle: SessionHandle) -> int:
        """Which shard serves ``handle`` (raises for foreign handles)."""
        shard = self._handle_shard.get(id(handle))
        if shard is None:
            raise ValueError("handle was not issued by this cluster")
        return shard

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _footprint(self, request: QueryRequest) -> Rect:
        """Bounding box of the request's motion path, grown by its radius."""
        assert request.path is not None
        xs = [w.position.x for w in request.path.waypoints]
        ys = [w.position.y for w in request.path.waypoints]
        r = request.radius_m
        return Rect(min(xs) - r, min(ys) - r, max(xs) + r, max(ys) + r)

    def route(self, request: QueryRequest) -> int:
        """The shard index a request would be served by.

        A request with an explicit motion path goes to the shard whose
        region overlaps the path-x-radius footprint most (ties to the
        lowest index).  A request without a path has no geometry yet (the
        serving shard synthesises the walk inside its own region), so it
        goes to the least-loaded shard by admitted-session count — a
        deterministic spread.
        """
        if len(self.services) == 1:
            return 0
        if request.path is not None:
            overlaps = [
                overlap_area(self._footprint(request), region)
                for region in self.regions
            ]
            best = max(overlaps)
            if best > 0.0:
                return overlaps.index(best)
        # Least-loaded spread with an EXPLICIT lowest-index tie-break: the
        # routing decision is part of the replayable decision log (the
        # workers=N finalize replays each shard's recorded submissions), so
        # ties must resolve identically on every code path that ever
        # recomputes a route — strictly-less keeps the first (lowest)
        # shard index on equal loads by construction, rather than leaning
        # on the incidental first-occurrence behaviour of ``list.index``.
        best_shard = 0
        best_load = self.services[0].admitted_count()
        for index in range(1, len(self.services)):
            load = self.services[index].admitted_count()
            if load < best_load:
                best_shard = index
                best_load = load
        return best_shard

    # ------------------------------------------------------------------
    # The backend lifecycle: submit / advance / cancel / stats / close
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest) -> SessionHandle:
        """Route one query to its shard; returns the shard's handle.

        User identity is cluster-wide: explicit ``user_id`` collisions
        with a live session are rejected here (a shard only sees its own
        sessions), and ids are assigned by the *same*
        :func:`~repro.api.service.resolve_user_id` rule the single
        service uses — so a one-shard cluster assigns the exact id
        sequence ``MobiQueryService`` would.
        """
        if self._closed:
            raise ServiceClosedError(
                "submit() on a closed cluster (close() already sealed the run)"
            )
        if self._completed:
            raise ServiceClosedError(
                "the service horizon has passed (run finished)"
            )
        user_id = resolve_user_id(self.handles, request.user_id)
        if request.user_id is None:
            # Bake the cluster-assigned id in so the shard's local ids
            # (stream names, proxy ids) are the cluster-wide ones.
            request = replace(request, user_id=user_id)
        shard = self.route(request)
        handle = self.services[shard].submit(request)
        self.handles.append(handle)
        self._handle_shard[id(handle)] = shard
        self._requests_log[shard].append(request)
        return handle

    def _record_decision(
        self, service: MobiQueryService, decision: AdmissionDecision
    ) -> None:
        """Log a shard's admission verdict (the workers=N replay source)."""
        for index, candidate in enumerate(self.services):
            if candidate is service:
                self._decisions_log[index].append(decision)
                return

    def advance(self, until: float) -> None:
        """Advance every shard to ``until`` in lockstep epochs."""
        self.scheduler.advance(until)

    def run_until(self, t: float) -> None:
        """Alias of :meth:`advance` (the single-service spelling)."""
        self.advance(t)

    def run(self) -> None:
        """Run every shard to the service horizon (plus straggler tail)."""
        self.advance(self.duration_s + RUN_TAIL_S)
        for service in self.services:
            service.run()
        self._completed = True

    def cancel(self, handle: SessionHandle) -> None:
        """Tear one session down mid-run (idempotent, like the service)."""
        self.shard_of(handle)  # reject foreign handles loudly
        handle.cancel()

    def summary_answer(
        self,
        center,
        radius_m: float,
        aggregation,
        accuracy: str = "coarse",
        freshness_s: float = float("inf"),
    ) -> Optional[SummaryAnswer]:
        """One cluster-wide approximate answer for a query disk.

        Each shard whose region the disk touches answers from its own
        summary plane (its world only holds its region's sensors); the
        router composes the per-shard partials associatively with
        :func:`~repro.approx.plane.merge_answers`, so the merged answer
        is boundary-free — no shard ever reads across its border.
        """
        partials: List[SummaryAnswer] = []
        for region, service in zip(self.regions, self.services):
            # Disk-rect intersection: clamp the centre into the region.
            dx = center.x - min(max(center.x, region.x_min), region.x_max)
            dy = center.y - min(max(center.y, region.y_min), region.y_max)
            if dx * dx + dy * dy > radius_m * radius_m:
                continue
            answer = service.summary_answer(
                center, radius_m, aggregation, accuracy, freshness_s
            )
            if answer is not None:
                partials.append(answer)
        return merge_answers(partials, aggregation)

    def finalize(self) -> WorkloadResult:
        """Score every admitted session, across all shards.

        Runs the shards to the horizon first — in worker processes when
        ``workers`` allows and no shard has started streaming or
        cancelling (the batch path), in-process lockstep otherwise — and
        returns the sessions in cluster submission order.
        """
        if not self._completed and self._finalize_parallel():
            pass
        else:
            if not self._completed:
                self.run()
            if not self.parallel_used:
                # Per-shard scoring + the admitted -> completed status
                # flip; runs even when run() already reached the horizon
                # (idempotent: scores are cached on the handles).
                for service in self.services:
                    service.finalize()
            self._completed = True
        return WorkloadResult(
            sessions=[h.result() for h in self.handles if h.accepted]
        )

    def stats(self) -> BackendStats:
        """Aggregate counters over every shard world."""
        per_shard = [
            self._stats_override.get(index, service.stats())
            for index, service in enumerate(self.services)
        ]
        return BackendStats(
            now=min(s.now for s in per_shard),
            events_executed=sum(s.events_executed for s in per_shard),
            frames_sent=sum(s.frames_sent for s in per_shard),
            frames_collided=sum(s.frames_collided for s in per_shard),
            frames_delivered=sum(s.frames_delivered for s in per_shard),
            backbone_size=sum(s.backbone_size for s in per_shard),
            shards=len(per_shard),
            submitted=len(self.handles),
            admitted=sum(s.admitted for s in per_shard),
            rejected=sum(s.rejected for s in per_shard),
            cancelled=sum(s.cancelled for s in per_shard),
        )

    def close(self) -> WorkloadResult:
        """Finalize once and seal the cluster (idempotent).

        Sealing propagates to every shard service, so a handle's
        ``result()``/``results()`` after close raises the same
        :class:`~repro.api.service.ServiceClosedError` a single-world
        backend raises — callers keep the returned
        :class:`WorkloadResult` instead.
        """
        if self._closed_result is None:
            self._closed_result = self.finalize()
        self._closed = True
        for service in self.services:
            service._closed = True
        return self._closed_result

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has sealed the cluster."""
        return self._closed

    # ------------------------------------------------------------------
    # The workers=N batch path
    # ------------------------------------------------------------------
    def _parallel_eligible(self) -> bool:
        """Whether the recorded logs still describe the shard worlds.

        Replay assumes pristine kernels: once any shard advanced (a
        streamed result) or a session was cancelled mid-run, the logs no
        longer reproduce the in-process state and the cluster finishes
        in-process instead.
        """
        if self.workers <= 1 or len(self.services) <= 1:
            return False
        if any(service.sim.now > 0.0 for service in self.services):
            return False
        if any(h.status == STATUS_CANCELLED for h in self.handles):
            return False
        return True

    def export_shard_plans(self) -> List[ShardPlan]:
        """The recorded submission/decision logs as replayable plans.

        One :class:`ShardPlan` per shard, built from the same logs the
        ``workers=N`` batch path replays — also the serve daemon's raw
        material for its submission log (the wire layer's determinism
        proof rebuilds shard worlds from exactly these triples).
        """
        plan_faults = None if self.faults.empty else self.faults
        return [
            ShardPlan(
                shard=index,
                config=self.shard_configs[index],
                requests=tuple(self._requests_log[index]),
                decisions=tuple(self._decisions_log[index]),
                faults=plan_faults,
            )
            for index in range(len(self.services))
        ]

    def _finalize_parallel(self) -> bool:
        """Try the worker-process batch path; True when it completed."""
        self.parallel_used = False
        if not self._parallel_eligible():
            return False
        plans = self.export_shard_plans()
        import os

        workers = min(self.workers, len(plans), os.cpu_count() or 1)
        outcomes = run_shards_parallel(plans, max_workers=workers)
        if outcomes is None:
            return False
        outcomes = self._replay_killed_workers(plans, outcomes)
        self._apply_outcomes(outcomes)
        self.parallel_used = True
        return True

    def _replay_killed_workers(
        self, plans: List[ShardPlan], outcomes: List[ShardOutcome]
    ) -> List[ShardOutcome]:
        """Apply the plan's ``worker_kills``: discard each named shard's
        worker outcome once and replay the shard on a fresh worker.

        Shard worlds are deterministic functions of their plan, so the
        restarted worker reproduces the killed one's results bit for bit —
        a kill costs wall-clock, never correctness.
        """
        from .transport import run_shard_plan

        killed = {
            kill.shard
            for kill in self.faults.worker_kills
            if kill.shard < len(plans)
        }
        if not killed:
            return outcomes
        by_shard = {outcome.shard: outcome for outcome in outcomes}
        for shard in sorted(killed):
            tracer = self.services[shard].tracer
            tracer.emit(
                "worker-killed", self.services[shard].sim.now, shard=shard
            )
            by_shard[shard] = run_shard_plan(plans[shard])
            tracer.emit(
                "worker-restarted", self.services[shard].sim.now, shard=shard
            )
        return [by_shard[plan.shard] for plan in plans]

    def _apply_outcomes(self, outcomes: List[ShardOutcome]) -> None:
        """Graft worker results onto the in-process handles."""
        by_shard = {outcome.shard: outcome for outcome in outcomes}
        cursors = {index: 0 for index in by_shard}
        for handle in self.handles:
            shard = self._handle_shard[id(handle)]
            outcome = by_shard[shard]
            position = cursors[shard]
            cursors[shard] += 1
            if not handle.accepted:
                continue
            handle._result = outcome.sessions[position]
            handle.status = outcome.statuses[position]
        for index, service in enumerate(self.services):
            stats = by_shard[index].stats
            if stats is not None:
                self._stats_override[index] = stats
            service._completed = True
        self._completed = True

    # ------------------------------------------------------------------
    # Convenience mirrors (parity with MobiQueryService)
    # ------------------------------------------------------------------
    @property
    def events_executed(self) -> int:
        return self.stats().events_executed

    @property
    def backbone_size(self) -> int:
        return self.stats().backbone_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ClusterService shards={self.num_shards} "
            f"partitioner={self.partitioner.name} "
            f"sessions={len(self.handles)} "
            f"t={min(s.sim.now for s in self.services):.1f}>"
        )


__all__ = ["ClusterService"]
