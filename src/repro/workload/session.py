"""Per-user session wiring: proxy endpoint + gateway + scoring.

A :class:`UserSession` is the mobile-user end of one query session in a
multi-user workload: the user's true motion path, their proxy device on
the shared radio channel, and the gateway that issues the query and
collects results.  The in-network side (protocol engines, backbone) is
shared across all sessions; everything here is strictly per user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.gateway import BaseGateway
from ..core.metrics import SessionMetrics, build_session_metrics
from ..core.query import QuerySpec
from ..mobility.path import PiecewisePath
from ..mobility.profile import ProfileProvider
from ..net.network import Network
from ..net.node import MobileEndpoint
from ..sim.trace import Tracer

#: proxy node ids start here; user ``u`` gets ``PROXY_ID_BASE + u``
PROXY_ID_BASE = 100_000


def proxy_id_for(user_id: int) -> int:
    """The proxy endpoint id reserved for ``user_id``."""
    if user_id < 0:
        raise ValueError(f"user_id must be >= 0, got {user_id}")
    return PROXY_ID_BASE + user_id


@dataclass(frozen=True)
class UserPlan:
    """Everything needed to spawn one user: identity, motion, query.

    ``spec.user_id`` must equal ``user_id`` (validated here, so protocol
    state keyed by ``(user_id, query_id)`` always matches the plan);
    ``spec.start_s`` is the session's start time.
    """

    user_id: int
    spec: QuerySpec
    path: PiecewisePath
    provider: Optional[ProfileProvider] = None

    def __post_init__(self) -> None:
        if self.spec.user_id != self.user_id:
            raise ValueError(
                f"plan for user {self.user_id} carries a spec owned by "
                f"user {self.spec.user_id}"
            )


def build_proxy(
    plan: UserPlan,
    network: Network,
    rng: np.random.Generator,
    tracer: Optional[Tracer] = None,
) -> MobileEndpoint:
    """Create and register the user's proxy device on the shared channel."""
    proxy = MobileEndpoint(
        node_id=proxy_id_for(plan.user_id),
        sim=network.sim,
        channel=network.channel,
        rng=rng,
        position_fn=plan.path.position_at,
        mac_config=network.config.mac,
        tracer=tracer,
        max_speed_mps=plan.path.max_speed(),
    )
    network.channel.register_mobile(proxy)
    return proxy


@dataclass
class UserSession:
    """One user's live session: plan + proxy + gateway."""

    plan: UserPlan
    proxy: MobileEndpoint
    gateway: BaseGateway

    @property
    def user_id(self) -> int:
        return self.plan.user_id

    @property
    def spec(self) -> QuerySpec:
        return self.plan.spec

    def finalize(
        self,
        network: Network,
        duration_s: float,
        fidelity_threshold: float = 0.95,
    ) -> "SessionResult":
        """Score the session after the run completed."""
        metrics = build_session_metrics(
            self.gateway,
            network,
            self.spec,
            self.plan.path,
            duration_s,
            fidelity_threshold=fidelity_threshold,
        )
        return SessionResult(
            user_id=self.user_id,
            query_id=self.spec.query_id,
            start_s=self.spec.start_s,
            metrics=metrics,
            deliveries=len(self.gateway.deliveries),
            degraded_periods=len(self.gateway.degraded_ks),
        )


@dataclass(frozen=True)
class SessionResult:
    """One user's scored session."""

    user_id: int
    query_id: int
    start_s: float
    metrics: SessionMetrics
    deliveries: int
    #: periods the fault-recovery machinery intervened on (collector
    #: re-election, watchdog recovery under an active fault plan); always
    #: 0 in fault-free runs
    degraded_periods: int = 0

    @property
    def success_ratio(self) -> float:
        return self.metrics.success_ratio()

    @property
    def mean_fidelity(self) -> float:
        return self.metrics.mean_fidelity()
