"""Multi-user workload layer: spawn N mobile users on one shared network.

The paper evaluates MobiQuery one mobile user at a time; this package
opens the concurrency axis.  A :class:`Workload` shares one network,
kernel and protocol engine across N :class:`UserSession`\\ s — each with
its own motion path, query spec, profile provider and proxy — started
according to an arrival process (:mod:`repro.workload.arrivals`), and
scores every session independently after the run.
"""

from .arrivals import (
    ARRIVAL_POISSON,
    ARRIVAL_PROCESSES,
    ARRIVAL_SIMULTANEOUS,
    ARRIVAL_STAGGERED,
    ARRIVAL_UNIFORM,
    arrival_times,
)
from .engine import Workload, WorkloadResult
from .session import (
    PROXY_ID_BASE,
    SessionResult,
    UserPlan,
    UserSession,
    build_proxy,
    proxy_id_for,
)

__all__ = [
    "ARRIVAL_SIMULTANEOUS",
    "ARRIVAL_STAGGERED",
    "ARRIVAL_UNIFORM",
    "ARRIVAL_POISSON",
    "ARRIVAL_PROCESSES",
    "arrival_times",
    "Workload",
    "WorkloadResult",
    "UserPlan",
    "UserSession",
    "SessionResult",
    "PROXY_ID_BASE",
    "proxy_id_for",
    "build_proxy",
]
