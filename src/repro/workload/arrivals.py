"""User arrival processes for multi-user workloads.

A workload spawns ``N`` mobile users on one shared network; the arrival
process decides *when* each user's query session begins.  User 0 always
starts at ``t = 0`` so every workload embeds the single-user baseline run
as its first session — the scaling benchmarks compare the other users
against it directly.

Four processes are provided:

* ``simultaneous`` — everyone starts at once (worst-case tree-setup
  contention, the Section 5.4 interference regime).
* ``staggered`` — deterministic spacing of ``spacing_s`` between starts
  (a patrol fleet dispatched one robot at a time).
* ``uniform`` — starts drawn uniformly over a window of
  ``spacing_s * (N - 1)`` seconds (users trickling into the field).
* ``poisson`` — exponential interarrivals with mean ``spacing_s`` (open
  workload; the classic arrival model for independent requesters).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

ARRIVAL_SIMULTANEOUS = "simultaneous"
ARRIVAL_STAGGERED = "staggered"
ARRIVAL_UNIFORM = "uniform"
ARRIVAL_POISSON = "poisson"

ARRIVAL_PROCESSES = (
    ARRIVAL_SIMULTANEOUS,
    ARRIVAL_STAGGERED,
    ARRIVAL_UNIFORM,
    ARRIVAL_POISSON,
)

#: processes that draw from an RNG stream
_STOCHASTIC = (ARRIVAL_UNIFORM, ARRIVAL_POISSON)


def arrival_times(
    num_users: int,
    process: str = ARRIVAL_SIMULTANEOUS,
    spacing_s: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """Session start times for ``num_users`` users (user 0 always at 0).

    Args:
        num_users: how many users the workload spawns (>= 1).
        process: one of :data:`ARRIVAL_PROCESSES`.
        spacing_s: spacing (staggered), per-user window share (uniform) or
            mean interarrival (poisson); ignored for simultaneous.
        rng: random stream, required for the stochastic processes.

    Returns:
        Non-decreasing start times, one per user, ``times[0] == 0.0``.
    """
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    if process not in ARRIVAL_PROCESSES:
        raise ValueError(
            f"unknown arrival process {process!r}; expected one of {ARRIVAL_PROCESSES}"
        )
    if spacing_s < 0:
        raise ValueError(f"arrival spacing must be >= 0, got {spacing_s}")
    if process in _STOCHASTIC and rng is None:
        raise ValueError(f"arrival process {process!r} needs an rng")
    if num_users == 1 or process == ARRIVAL_SIMULTANEOUS:
        return [0.0] * num_users
    if process == ARRIVAL_STAGGERED:
        return [i * spacing_s for i in range(num_users)]
    assert rng is not None
    if process == ARRIVAL_UNIFORM:
        window = spacing_s * (num_users - 1)
        rest = sorted(float(rng.uniform(0.0, window)) for _ in range(num_users - 1))
        return [0.0] + rest
    # poisson: cumulative exponential interarrivals after user 0
    times = [0.0]
    for _ in range(num_users - 1):
        times.append(times[-1] + float(rng.exponential(spacing_s)))
    return times
