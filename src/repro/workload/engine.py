"""The multi-user workload engine.

One :class:`Workload` drives N concurrent user sessions over a single
shared :class:`~repro.net.network.Network` and simulation kernel.  The
in-network protocol engines (:class:`MobiQueryProtocol`, or the NP
baseline) are shared — all users' trees coexist on the same backbone,
keyed by ``(user_id, query_id)`` — while each user gets an independent
proxy endpoint, motion path, profile provider and gateway, started at the
arrival time baked into their spec (``spec.start_s``).

Typical use::

    workload = Workload(network, tracer)
    for plan in plans:  # one UserPlan per user
        workload.add_mobiquery_user(plan, protocol, rng=streams.stream(...))
    workload.run(until=duration + tail)
    result = workload.finalize(duration)
    print(result.mean_success_ratio(), result.min_success_ratio())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..approx.gateway import ApproxGateway
from ..approx.plane import SummaryPlane
from ..core.baseline import NoPrefetchProtocol
from ..core.gateway import MobiQueryGateway, NoPrefetchGateway, SessionScheduler
from ..core.service import MobiQueryProtocol
from ..net.flooding import FloodManager
from ..net.network import Network
from ..sim.trace import Tracer
from .session import SessionResult, UserPlan, UserSession, build_proxy


@dataclass
class WorkloadResult:
    """All users' scored sessions from one run."""

    sessions: List[SessionResult]

    @property
    def num_users(self) -> int:
        return len(self.sessions)

    def session_for(self, user_id: int) -> SessionResult:
        """The result of one user's session."""
        for session in self.sessions:
            if session.user_id == user_id:
                return session
        raise KeyError(f"no session for user {user_id}")

    def success_ratios(self) -> List[float]:
        """Per-user success ratios in user order."""
        return [s.success_ratio for s in self.sessions]

    def mean_success_ratio(self) -> float:
        ratios = self.success_ratios()
        return sum(ratios) / len(ratios) if ratios else 0.0

    def min_success_ratio(self) -> float:
        ratios = self.success_ratios()
        return min(ratios) if ratios else 0.0

    def mean_fidelity(self) -> float:
        if not self.sessions:
            return 0.0
        return sum(s.mean_fidelity for s in self.sessions) / len(self.sessions)


class Workload:
    """Spawn and score N user sessions on one shared network."""

    def __init__(self, network: Network, tracer: Optional[Tracer] = None) -> None:
        self.network = network
        self.sim = network.sim
        self.tracer = tracer if tracer is not None else network.tracer
        self.scheduler = SessionScheduler(network.sim)
        self.sessions: List[UserSession] = []

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def add_mobiquery_user(
        self,
        plan: UserPlan,
        protocol: MobiQueryProtocol,
        rng: np.random.Generator,
    ) -> UserSession:
        """Spawn one MobiQuery user (JIT/greedy per the shared protocol)."""
        if plan.provider is None:
            raise ValueError(
                f"user {plan.user_id}: a MobiQuery session needs a profile provider"
            )
        proxy = build_proxy(plan, self.network, rng, self.tracer)
        gateway = MobiQueryGateway(
            proxy, self.network, plan.spec, protocol, plan.provider, self.tracer
        )
        return self._register(plan, proxy, gateway)

    def add_approx_user(
        self,
        plan: UserPlan,
        plane: SummaryPlane,
        accuracy: str,
        rng: np.random.Generator,
    ) -> UserSession:
        """Spawn one summary-served user (``accuracy`` "coarse"/"medium").

        No profile provider is needed: the session never places trees
        ahead of the user, it composes each period's answer from the
        plane at the user's actual position.
        """
        proxy = build_proxy(plan, self.network, rng, self.tracer)
        gateway = ApproxGateway(
            proxy, self.network, plan.spec, plane, plan.path, accuracy, self.tracer
        )
        return self._register(plan, proxy, gateway)

    def add_noprefetch_user(
        self,
        plan: UserPlan,
        protocol: NoPrefetchProtocol,
        flood: FloodManager,
        rng: np.random.Generator,
    ) -> UserSession:
        """Spawn one NP-baseline user (per-period broadcast)."""
        proxy = build_proxy(plan, self.network, rng, self.tracer)
        gateway = NoPrefetchGateway(
            proxy, self.network, plan.spec, protocol, flood, self.tracer
        )
        return self._register(plan, proxy, gateway)

    def _register(self, plan, proxy, gateway) -> UserSession:
        session = UserSession(plan=plan, proxy=proxy, gateway=gateway)
        self.scheduler.add(gateway)  # starts at spec.start_s
        self.sessions.append(session)
        return session

    # ------------------------------------------------------------------
    # Running and scoring
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Run the shared kernel to ``until`` (all sessions advance)."""
        self.sim.run(until=until)

    def finalize(
        self, duration_s: float, fidelity_threshold: float = 0.95
    ) -> WorkloadResult:
        """Score every session against its own spec and true path."""
        return WorkloadResult(
            sessions=[
                session.finalize(self.network, duration_s, fidelity_threshold)
                for session in self.sessions
            ]
        )
