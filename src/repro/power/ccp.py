"""Coverage Configuration Protocol (CCP).

The power-management protocol the paper runs under MobiQuery (Wang, Xing,
Zhang, Lu, Pless, Gill — SenSys'03).  CCP keeps just enough nodes active to
preserve *sensing coverage* of the monitored region, relying on the theorem
that when ``Rc >= 2 * Rs`` a coverage-preserving set is also connected —
which holds for the paper's parameters (105 m >= 2 x 50 m).

**Eligibility rule** (the heart of CCP): a node may sleep when its sensing
disk is already K-covered by the *other* active nodes.  By the
intersection-point theorem, a convex region is K-covered iff every
intersection point of sensing-circle pairs inside the region — plus the
intersection points of those circles with the region's boundary — is
K-covered.  For a node ``v`` the region is ``v``'s own sensing disk, so the
check points are:

* intersections between the sensing circles of pairs of active coverage
  neighbours, if inside ``v``'s disk, and
* intersections between each such circle and ``v``'s sensing circle.

With no check points at all, the disk is covered only if a single active
neighbour's disk contains it outright.

The distributed protocol reaches this state through randomized backoff
timers (nodes volunteer to withdraw one at a time).  We reproduce that as a
sequential pass in random order, which yields the same family of backbones
the distributed rounds converge to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from ..geometry.shapes import Circle, Rect
from ..geometry.vec import Vec2
from ..net.network import Network
from ..net.node import SensorNode
from ..net.vectorized import numpy_or_none
from .base import PowerManagementProtocol, repair_connectivity


@dataclass(frozen=True)
class CcpConfig:
    """CCP tuning.

    Attributes:
        coverage_degree: required K (paper uses 1-coverage).
        clip_to_region: only require coverage inside the deployment region
            (nodes at the field edge need not cover points outside it).
        repair_connectivity: promote bridge nodes if the coverage backbone
            is disconnected (cannot happen when ``Rc >= 2 Rs``; kept for
            other configurations, mirroring CCP+SPAN in the CCP paper).
    """

    coverage_degree: int = 1
    clip_to_region: bool = True
    repair_connectivity: bool = True


class CcpProtocol(PowerManagementProtocol):
    """Coverage Configuration Protocol backbone selection."""

    name = "ccp"

    def __init__(self, config: Optional[CcpConfig] = None) -> None:
        self.config = config or CcpConfig()

    def select_active(self, network: Network, rng: np.random.Generator) -> Set[int]:
        sensing_range = network.config.sensing_range_m
        region = network.config.region if self.config.clip_to_region else None
        active: Set[int] = {node.node_id for node in network.nodes}
        order = list(network.nodes)
        rng.shuffle(order)  # type: ignore[arg-type]
        for node in order:
            if self._eligible_to_sleep(network, node, active, sensing_range, region):
                active.discard(node.node_id)
        if self.config.repair_connectivity:
            repair_connectivity(network, active)
        return active

    # ------------------------------------------------------------------
    # Eligibility rule
    # ------------------------------------------------------------------
    def _eligible_to_sleep(
        self,
        network: Network,
        node: SensorNode,
        active: Set[int],
        rs: float,
        region: Optional[Rect],
    ) -> bool:
        k = self.config.coverage_degree
        my_disk = Circle(node.position, rs)
        # Coverage neighbours: active nodes whose sensing disks can overlap
        # mine, i.e. within 2 * Rs.
        coverage_neighbors = [
            other
            for other in network.nodes_in_disk(node.position, 2.0 * rs)
            if other.node_id != node.node_id and other.node_id in active
        ]
        if len(coverage_neighbors) < k:
            return False
        neighbor_disks = [Circle(nb.position, rs) for nb in coverage_neighbors]

        check_points = self._check_points(my_disk, neighbor_disks, region)
        if not check_points:
            # No intersection structure: coverage requires containment by a
            # set of disks, which for circles means one disk contains mine.
            return self._contained_by_k(my_disk, neighbor_disks, k)
        # Strict-interior containment: a point on a circle's own boundary
        # is NOT covered by that circle for the purposes of the
        # intersection-point theorem — the area just beyond the boundary
        # would be uncovered.  (Equivalently: open-disk semantics.)
        np_mod = numpy_or_none()
        if np_mod is not None and len(check_points) * len(neighbor_disks) >= 64:
            # Points x disks as one elementwise broadcast — the same
            # subtract/square/compare per pair as the scalar loop below, so
            # the counts (and the eligibility decision) are bit-identical.
            cxs = np_mod.array([d.center.x for d in neighbor_disks])
            cys = np_mod.array([d.center.y for d in neighbor_disks])
            thr = (
                np_mod.array([d.radius for d in neighbor_disks])
                - self._INTERIOR_EPS
            ) ** 2
            pxs = np_mod.array([p.x for p in check_points])
            pys = np_mod.array([p.y for p in check_points])
            dx = pxs[:, None] - cxs[None, :]
            dy = pys[:, None] - cys[None, :]
            covered = (dx * dx + dy * dy < thr[None, :]).sum(axis=1)
            return bool((covered >= k).all())
        for point in check_points:
            covered = sum(
                1
                for disk in neighbor_disks
                if disk.center.distance_sq_to(point)
                < (disk.radius - self._INTERIOR_EPS) ** 2
            )
            if covered < k:
                return False
        return True

    #: margin for strict-interior containment tests
    _INTERIOR_EPS = 1e-6

    def _check_points(
        self,
        my_disk: Circle,
        neighbor_disks: List[Circle],
        region: Optional[Rect],
    ) -> List:
        points = []
        n = len(neighbor_disks)
        for i in range(n):
            # Circle-vs-my-boundary intersections.
            for p in neighbor_disks[i].intersection_points(my_disk):
                if region is None or region.contains(p, tol=1e-9):
                    points.append(p)
            # Circle-pair intersections inside my disk.
            for j in range(i + 1, n):
                for p in neighbor_disks[i].intersection_points(neighbor_disks[j]):
                    if not my_disk.contains(p):
                        continue
                    if region is None or region.contains(p, tol=1e-9):
                        points.append(p)
        if region is not None:
            points.extend(self._region_boundary_points(my_disk, neighbor_disks, region))
        return points

    def _region_boundary_points(
        self, my_disk: Circle, neighbor_disks: List[Circle], region: Rect
    ) -> List:
        """Check points contributed by the clipped region's own boundary.

        When coverage is only required inside the deployment region, the
        region to verify for node ``v`` is ``disk(v) ∩ region``; the
        intersection-point theorem then also needs (a) neighbour circles
        crossing the region edges inside ``disk(v)``, (b) ``v``'s own circle
        crossing the edges, and (c) region corners inside ``disk(v)``.
        """
        points = []
        for disk in neighbor_disks + [my_disk]:
            for p in _circle_rect_edge_intersections(disk, region):
                if my_disk.contains(p):
                    points.append(p)
        for corner in region.corners():
            if my_disk.contains(corner):
                points.append(corner)
        return points

    @staticmethod
    def _contained_by_k(my_disk: Circle, neighbor_disks: List[Circle], k: int) -> bool:
        containing = sum(1 for disk in neighbor_disks if disk.contains_circle(my_disk))
        return containing >= k


def _circle_rect_edge_intersections(disk: Circle, region: Rect) -> List:
    """Points where ``disk``'s boundary crosses the rectangle's edges."""
    cx, cy, r = disk.center.x, disk.center.y, disk.radius
    points = []
    # Vertical edges: x fixed, y in [y_min, y_max].
    for x in (region.x_min, region.x_max):
        dx = x - cx
        if abs(dx) <= r:
            dy = math.sqrt(max(0.0, r * r - dx * dx))
            for y in (cy - dy, cy + dy):
                if region.y_min - 1e-9 <= y <= region.y_max + 1e-9:
                    points.append(Vec2(x, y))
    # Horizontal edges: y fixed, x in [x_min, x_max].
    for y in (region.y_min, region.y_max):
        dy = y - cy
        if abs(dy) <= r:
            dx = math.sqrt(max(0.0, r * r - dy * dy))
            for x in (cx - dx, cx + dx):
                if region.x_min - 1e-9 <= x <= region.x_max + 1e-9:
                    points.append(Vec2(x, y))
    return points
