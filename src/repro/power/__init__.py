"""Power management: backbone selection protocols and coverage checks."""

from .base import PowerManagementProtocol, repair_connectivity
from .ccp import CcpConfig, CcpProtocol
from .coverage import covered_fraction, sample_points
from .gaf import AlwaysOnProtocol, GafProtocol
from .span import SpanProtocol

__all__ = [
    "PowerManagementProtocol",
    "repair_connectivity",
    "CcpProtocol",
    "CcpConfig",
    "SpanProtocol",
    "GafProtocol",
    "AlwaysOnProtocol",
    "covered_fraction",
    "sample_points",
]
