"""GAF: Geographic Adaptive Fidelity backbone selection.

GAF (Xu, Heidemann, Estrin — MobiCom'01) overlays a virtual grid with cell
side ``Rc / sqrt(5)``, chosen so any node in one cell can talk to any node
in the four edge-adjacent cells.  One node per occupied cell stays awake;
everyone else in the cell sleeps.  Cited by the paper as another backbone
maintainer MobiQuery composes with.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Set, Tuple

import numpy as np

from ..net.network import Network
from ..net.node import SensorNode
from .base import PowerManagementProtocol, repair_connectivity


class GafProtocol(PowerManagementProtocol):
    """One active node per virtual grid cell of side ``Rc / sqrt(5)``."""

    name = "gaf"

    def __init__(self, repair: bool = True) -> None:
        self.repair = repair

    def cell_side(self, network: Network) -> float:
        """The GAF virtual-grid cell side for this network's radio range."""
        return network.config.comm_range_m / math.sqrt(5.0)

    def select_active(self, network: Network, rng: np.random.Generator) -> Set[int]:
        side = self.cell_side(network)
        cells: Dict[Tuple[int, int], List[SensorNode]] = defaultdict(list)
        for node in network.nodes:
            cell = (int(node.position.x // side), int(node.position.y // side))
            cells[cell].append(node)
        active: Set[int] = set()
        for members in cells.values():
            # GAF ranks candidates by expected lifetime; with identical
            # batteries the election is effectively random.
            leader = members[int(rng.integers(0, len(members)))]
            active.add(leader.node_id)
        if self.repair:
            repair_connectivity(network, active)
        return active


class AlwaysOnProtocol(PowerManagementProtocol):
    """Degenerate baseline: every node stays active (no duty cycling)."""

    name = "always-on"

    def select_active(self, network: Network, rng: np.random.Generator) -> Set[int]:
        return {node.node_id for node in network.nodes}
