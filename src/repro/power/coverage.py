"""Coverage measurement utilities.

Used by tests and the backbone-ablation example to verify that a protocol's
backbone actually preserves sensing coverage — the property CCP promises and
SPAN/GAF do not.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ..geometry.vec import Vec2
from ..net.network import Network


def sample_points(network: Network, step_m: float) -> List[Vec2]:
    """A regular grid of probe points over the deployment region."""
    region = network.config.region
    points: List[Vec2] = []
    y = region.y_min + step_m / 2.0
    while y < region.y_max:
        x = region.x_min + step_m / 2.0
        while x < region.x_max:
            points.append(Vec2(x, y))
            x += step_m
        y += step_m
    return points


def covered_fraction(
    network: Network,
    node_ids: Iterable[int],
    step_m: float = 15.0,
) -> float:
    """Fraction of region probe points within sensing range of ``node_ids``.

    Probe points that no node at all could sense (deployment holes) are
    excluded from the denominator, so a perfect coverage-preserving backbone
    scores exactly 1.0 regardless of holes in the original deployment.
    """
    ids: Set[int] = set(node_ids)
    rs = network.config.sensing_range_m
    total = 0
    covered = 0
    for point in sample_points(network, step_m):
        reachable = network.nodes_in_disk(point, rs)
        if not reachable:
            continue  # nobody could ever sense here
        total += 1
        if any(node.node_id in ids for node in reachable):
            covered += 1
    if total == 0:
        return 1.0
    return covered / total
