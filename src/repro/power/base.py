"""Power-management protocol interface.

A power-management protocol decides which nodes form the always-on
*backbone* and which may duty-cycle (paper assumption 3: "the network runs a
power management protocol that selects a small subset of nodes to keep
active").  Protocols here run as a configuration round before the query
session starts, which is how the paper uses CCP for a 400 s experiment.
"""

from __future__ import annotations

import abc
from typing import List, Set

import numpy as np

from ..net.network import Network
from ..sim.rng import RandomStreams


class PowerManagementProtocol(abc.ABC):
    """Chooses the set of backbone (always-active) node ids."""

    #: human-readable protocol name for reports
    name: str = "abstract"

    @abc.abstractmethod
    def select_active(self, network: Network, rng: np.random.Generator) -> Set[int]:
        """Return the ids of nodes that must stay active."""

    def apply(self, network: Network, streams: RandomStreams) -> Set[int]:
        """Run selection and commit the partition to the network."""
        rng = streams.stream(f"power-{self.name}")
        active = self.select_active(network, rng)
        network.apply_backbone(active)
        return active


def repair_connectivity(network: Network, active: Set[int]) -> Set[int]:
    """Promote sleepers until the active subgraph is connected.

    With the paper's parameters (``Rc >= 2 * Rs``) CCP's coverage-preserving
    backbone is provably connected, but other range ratios or protocols can
    leave islands.  This greedy repair promotes, at each step, the sleeper
    adjacent to the largest active component that also touches another
    component (or, failing that, the sleeper touching the most components).

    Returns the augmented active set (mutates and returns ``active``).
    """
    while True:
        components = _active_components(network, active)
        if len(components) <= 1:
            return active
        bridge = _best_bridge(network, active, components)
        if bridge is None:
            # Disconnected even in the full graph; nothing more to do.
            return active
        active.add(bridge)


def _active_components(network: Network, active: Set[int]) -> List[Set[int]]:
    unvisited = set(active)
    components: List[Set[int]] = []
    while unvisited:
        root = next(iter(unvisited))
        component = {root}
        frontier = [network.node_by_id(root)]
        unvisited.discard(root)
        while frontier:
            node = frontier.pop()
            for nb in node.neighbors:
                if nb.node_id in unvisited:
                    unvisited.discard(nb.node_id)
                    component.add(nb.node_id)
                    frontier.append(nb)
        components.append(component)
    return components


def _best_bridge(
    network: Network, active: Set[int], components: List[Set[int]]
) -> int:
    """The sleeper id touching the most distinct active components, or None."""
    comp_index = {}
    for idx, component in enumerate(components):
        for node_id in component:
            comp_index[node_id] = idx
    best_id = None
    best_touch = 1
    for node in network.nodes:
        if node.node_id in active:
            continue
        touched = {comp_index[nb.node_id] for nb in node.neighbors if nb.node_id in comp_index}
        if len(touched) > best_touch:
            best_touch = len(touched)
            best_id = node.node_id
    return best_id
