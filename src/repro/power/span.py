"""SPAN-style coordinator election.

SPAN (Chen, Jamieson, Balakrishnan, Morris — MobiCom'01) maintains a
*connectivity* backbone: a node volunteers as coordinator when two of its
neighbours cannot reach each other directly or through one or two existing
coordinators.  The paper's simulations use CCP, but cite SPAN as an equally
valid backbone provider — we include it for the backbone-ablation example
and for configurations where ``Rc < 2 Rs`` makes CCP's coverage rule
insufficient for connectivity.

As with CCP we compress the distributed randomized-slotting into a
sequential pass in random order (SPAN's announcement backoff randomizes the
same decision order).
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from ..net.network import Network
from ..net.node import SensorNode
from .base import PowerManagementProtocol, repair_connectivity


class SpanProtocol(PowerManagementProtocol):
    """Connectivity-backbone election after SPAN's coordinator rule."""

    name = "span"

    def __init__(self, repair: bool = True) -> None:
        self.repair = repair

    def select_active(self, network: Network, rng: np.random.Generator) -> Set[int]:
        coordinators: Set[int] = set()
        order = list(network.nodes)
        rng.shuffle(order)  # type: ignore[arg-type]
        for node in order:
            if self._should_coordinate(node, coordinators):
                coordinators.add(node.node_id)
        if self.repair:
            repair_connectivity(network, coordinators)
        return coordinators

    @staticmethod
    def _should_coordinate(node: SensorNode, coordinators: Set[int]) -> bool:
        """SPAN rule: some neighbour pair lacks a 1- or 2-coordinator path."""
        neighbors = node.neighbors
        if len(neighbors) < 2:
            return False
        neighbor_ids = {nb.node_id for nb in neighbors}
        coord_neighbors = [nb for nb in neighbors if nb.node_id in coordinators]
        # Pre-compute which of my neighbours each coordinator neighbour reaches.
        coord_reach: List[Set[int]] = []
        for coord in coord_neighbors:
            coord_reach.append(
                {nb.node_id for nb in coord.neighbors if nb.node_id in neighbor_ids}
            )
        for i, a in enumerate(neighbors):
            a_adjacent = {nb.node_id for nb in a.neighbors}
            for b in neighbors[i + 1 :]:
                if b.node_id in a_adjacent:
                    continue  # direct link exists
                if SpanProtocol._coordinator_path(a, b, coord_neighbors, coord_reach):
                    continue
                return True
        return False

    @staticmethod
    def _coordinator_path(
        a: SensorNode,
        b: SensorNode,
        coord_neighbors: List[SensorNode],
        coord_reach: List[Set[int]],
    ) -> bool:
        """Is there a path a -> coord [-> coord] -> b using my coordinator nbrs?"""
        # One-coordinator path.
        via_one = [
            idx
            for idx, reach in enumerate(coord_reach)
            if a.node_id in reach and b.node_id in reach
        ]
        if via_one:
            return True
        # Two-coordinator path: coord_i adjacent to a, coord_j adjacent to b,
        # and coord_i adjacent to coord_j.
        reaches_a = [idx for idx, reach in enumerate(coord_reach) if a.node_id in reach]
        reaches_b = [idx for idx, reach in enumerate(coord_reach) if b.node_id in reach]
        for i in reaches_a:
            ci = coord_neighbors[i]
            ci_adjacent = {nb.node_id for nb in ci.neighbors}
            for j in reaches_b:
                if i == j:
                    continue
                if coord_neighbors[j].node_id in ci_adjacent:
                    return True
        return False
