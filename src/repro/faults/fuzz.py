"""``repro fuzz`` — seeded randomized scenarios through the sweep harness.

The adversarial sweep (:mod:`repro.faults.sweep`) checks metamorphic
invariants — fault-monotonicity, shards=1 identity, churn-no-leak,
admission-no-harm — over a *hand-picked* grid.  The fuzzer closes the
remaining gap: it draws whole scenario configurations (fleet size,
request geometry, arrival process, admission policy, shard count, fault
intensity) from **strictly bounded** ranges using one seeded RNG stream
(``"fuzz"``), and feeds each drawn case through the same invariant
machinery.  Every case therefore asks the exact question the sweep
asks — "do the invariants hold *here* too?" — at a point no one thought
to pin.

Determinism: same seed ⇒ same cases ⇒ same verdicts.  A violation
report names its case's drawn parameters, so any finding replays with
``repro fuzz --seed N --runs K``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api.scenarios import ScenarioSpec
from ..sim.rng import RandomStreams
from .sweep import (
    ADMISSION_ACCEPT_ALL,
    ARRIVAL_BURST,
    ARRIVAL_STAGGERED,
    SweepAxes,
    run_sweep,
)

#: the axis values the fuzzer may draw from
FUZZ_ARRIVALS = (ARRIVAL_STAGGERED, ARRIVAL_BURST)
FUZZ_ADMISSIONS = (ADMISSION_ACCEPT_ALL, "per-area-cap", "phase-assign")


def _check_range(name: str, lo: float, hi: float, minimum: float) -> None:
    if lo > hi:
        raise ValueError(f"fuzz bounds {name}: lo {lo} > hi {hi}")
    if lo < minimum:
        raise ValueError(f"fuzz bounds {name}: lo {lo} < minimum {minimum}")


@dataclass(frozen=True)
class FuzzBounds:
    """The strictly bounded parameter ranges every draw stays inside."""

    users: Tuple[int, int] = (2, 6)
    shards: Tuple[int, int] = (1, 2)
    duration_s: Tuple[float, float] = (18.0, 30.0)
    period_s: Tuple[float, float] = (1.5, 3.0)
    radius_m: Tuple[float, float] = (40.0, 90.0)
    spacing_s: Tuple[float, float] = (0.5, 2.5)
    intensity: Tuple[float, float] = (0.25, 1.0)
    # Degenerate by default: lo == hi means "keep the base scenario's
    # network" and draws nothing, so existing seeds replay bit-identically.
    n_nodes: Tuple[int, int] = (200, 200)
    comm_range_m: Tuple[float, float] = (105.0, 105.0)

    def __post_init__(self) -> None:
        _check_range("users", *self.users, minimum=1)
        _check_range("shards", *self.shards, minimum=1)
        _check_range("duration_s", *self.duration_s, minimum=6.0)
        _check_range("period_s", *self.period_s, minimum=0.5)
        _check_range("radius_m", *self.radius_m, minimum=10.0)
        _check_range("spacing_s", *self.spacing_s, minimum=0.0)
        _check_range("intensity", *self.intensity, minimum=0.0)
        _check_range("n_nodes", *self.n_nodes, minimum=8)
        _check_range("comm_range_m", *self.comm_range_m, minimum=20.0)
        if self.intensity[1] > 1.0:
            raise ValueError(
                f"fuzz intensity hi must be <= 1, got {self.intensity[1]}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "users": list(self.users),
            "shards": list(self.shards),
            "duration_s": list(self.duration_s),
            "period_s": list(self.period_s),
            "radius_m": list(self.radius_m),
            "spacing_s": list(self.spacing_s),
            "intensity": list(self.intensity),
            "n_nodes": list(self.n_nodes),
            "comm_range_m": list(self.comm_range_m),
        }


@dataclass(frozen=True)
class FuzzCase:
    """One drawn scenario: a derived spec plus the axes to sweep it on."""

    index: int
    spec: ScenarioSpec
    axes: SweepAxes
    drawn: Dict[str, Any] = field(default_factory=dict)


def draw_case(
    base: ScenarioSpec, rng, index: int, bounds: FuzzBounds
) -> FuzzCase:
    """Draw one bounded case from the ``"fuzz"`` stream.

    The derived spec keeps the base network/mode but replaces the
    request fleet with a drawn prototype and zeroes any scenario-level
    faults — the sweep's intensity axis derives the fault plan, so the
    fault-monotonicity comparison stays clean.
    """
    users = int(rng.integers(bounds.users[0], bounds.users[1] + 1))
    shards = int(rng.integers(bounds.shards[0], bounds.shards[1] + 1))
    duration = round(float(rng.uniform(*bounds.duration_s)), 1)
    period = round(float(rng.uniform(*bounds.period_s)), 2)
    radius = round(float(rng.uniform(*bounds.radius_m)), 1)
    spacing = round(float(rng.uniform(*bounds.spacing_s)), 2)
    freshness = round(period * float(rng.uniform(0.4, 0.9)), 3)
    intensity = round(float(rng.uniform(*bounds.intensity)), 3)
    arrival = str(rng.choice(list(FUZZ_ARRIVALS)))
    admission = str(rng.choice(list(FUZZ_ADMISSIONS)))
    seed_offset = int(rng.integers(0, 10_000))
    # Density / radio-range draws come last and only when the bounds are
    # non-degenerate, so default-bounds replays keep their historical
    # draw sequence.
    n_nodes = (
        int(rng.integers(bounds.n_nodes[0], bounds.n_nodes[1] + 1))
        if bounds.n_nodes[0] != bounds.n_nodes[1]
        else None
    )
    comm_range = (
        round(float(rng.uniform(*bounds.comm_range_m)), 1)
        if bounds.comm_range_m[0] != bounds.comm_range_m[1]
        else None
    )

    payload = base.to_dict()
    payload["name"] = f"{base.name}-fuzz{index}"
    payload["description"] = (
        f"fuzz case {index}: {users} users, {shards} shards, "
        f"intensity {intensity:g}, {arrival}/{admission}"
    )
    payload["seed"] = base.seed + seed_offset
    payload["duration_s"] = duration
    payload["requests"] = [
        {
            "radius_m": radius,
            "period_s": period,
            "freshness_s": freshness,
            "count": users,
            "spacing_s": spacing,
        }
    ]
    payload["faults"] = {}
    payload["shards"] = 1
    payload["workers"] = 0
    if n_nodes is not None or comm_range is not None:
        network = dict(payload.get("network", {}))
        if n_nodes is not None:
            network["n_nodes"] = n_nodes
        if comm_range is not None:
            network["comm_range_m"] = comm_range
        payload["network"] = network
    spec = ScenarioSpec.from_dict(payload)

    # Always include the fault-free point (monotonicity baseline) and —
    # when the draw picked a non-trivial admission — the accept-all
    # baseline the no-harm invariant compares against.  shards=1 rides
    # along when the draw picked 2, so the identity gate runs too.
    intensities = (0.0, intensity) if intensity > 0 else (0.0,)
    shard_axis = (1,) if shards == 1 else (1, shards)
    admissions = (
        (ADMISSION_ACCEPT_ALL,)
        if admission == ADMISSION_ACCEPT_ALL
        else (ADMISSION_ACCEPT_ALL, admission)
    )
    axes = SweepAxes(
        users=(users,),
        shards=shard_axis,
        intensities=intensities,
        arrivals=(arrival,),
        admissions=admissions,
    )
    drawn = {
        "users": users,
        "shards": shards,
        "duration_s": duration,
        "period_s": period,
        "radius_m": radius,
        "spacing_s": spacing,
        "freshness_s": freshness,
        "intensity": intensity,
        "arrival": arrival,
        "admission": admission,
        "seed": spec.seed,
    }
    if n_nodes is not None:
        drawn["n_nodes"] = n_nodes
    if comm_range is not None:
        drawn["comm_range_m"] = comm_range
    return FuzzCase(index=index, spec=spec, axes=axes, drawn=drawn)


@dataclass(frozen=True)
class FuzzResult:
    """Everything one fuzz run learned (plain-data serializable)."""

    name: str
    base: str
    seed: int
    runs: int
    bounds: FuzzBounds
    cases: Tuple[Dict[str, Any], ...]
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base,
            "seed": self.seed,
            "runs": self.runs,
            "bounds": self.bounds.to_dict(),
            "cases": [dict(case) for case in self.cases],
            "violations": list(self.violations),
            "ok": self.ok,
        }


def run_fuzz(
    base: ScenarioSpec,
    runs: int = 3,
    seed: int = 0,
    bounds: Optional[FuzzBounds] = None,
    workers: int = 0,
    name: Optional[str] = None,
) -> FuzzResult:
    """Draw ``runs`` cases and sweep each through the invariant harness."""
    if runs < 1:
        raise ValueError(f"fuzz runs must be >= 1, got {runs}")
    if seed < 0:
        raise ValueError(f"fuzz seed must be >= 0, got {seed}")
    bounds = bounds if bounds is not None else FuzzBounds()
    rng = RandomStreams(seed).stream("fuzz")
    cases: List[Dict[str, Any]] = []
    violations: List[str] = []
    for index in range(runs):
        case = draw_case(base, rng, index, bounds)
        result = run_sweep(
            case.spec, case.axes, workers=workers, name=case.spec.name
        )
        case_violations = [
            f"case {index} ({json.dumps(case.drawn, sort_keys=True)}): {v}"
            for v in result.violations
        ]
        violations.extend(case_violations)
        cases.append(
            {
                "index": index,
                "drawn": case.drawn,
                "cells": len(result.rows),
                "rows": result.rows,
                "violations": case_violations,
            }
        )
    return FuzzResult(
        name=name or f"{base.name}-fuzz",
        base=base.name,
        seed=seed,
        runs=runs,
        bounds=bounds,
        cases=tuple(cases),
        violations=tuple(violations),
    )


def markdown_summary(result: FuzzResult) -> str:
    """The fuzz verdict as a compact markdown table."""
    lines = [
        "| case | users | shards | intensity | arrival | admission | "
        "cells | verdict |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for case in result.cases:
        drawn = case["drawn"]
        verdict = "ok" if not case["violations"] else "VIOLATION"
        lines.append(
            f"| {case['index']} | {drawn['users']} | {drawn['shards']} | "
            f"{drawn['intensity']:g} | {drawn['arrival']} | "
            f"{drawn['admission']} | {case['cells']} | {verdict} |"
        )
    return "\n".join(lines)


def write_fuzz_outputs(result: FuzzResult, out_dir: str = ".") -> str:
    """Write ``FUZZ_<name>.json`` (and return its path)."""
    safe = result.name.replace("/", "-").replace(" ", "-")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"FUZZ_{safe}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


__all__ = [
    "FUZZ_ADMISSIONS",
    "FUZZ_ARRIVALS",
    "FuzzBounds",
    "FuzzCase",
    "FuzzResult",
    "draw_case",
    "markdown_summary",
    "run_fuzz",
    "write_fuzz_outputs",
]
