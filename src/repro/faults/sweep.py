"""The adversarial robustness sweep (``repro sweep``).

Fans one base :class:`~repro.api.scenarios.ScenarioSpec` across axis
ranges — fleet size x shard count x fault intensity x arrival process x
answer accuracy x node density x radio range — through the cluster
transport's process pool, and checks the *metamorphic invariants* on
the grid:

* **fault-monotonicity** — mean success never *improves* as fault
  intensity rises (within a 1 pp tolerance for tie-break noise), holding
  the other axes fixed.  Faults draw from their own RNG stream, so the
  underlying world is identical across intensities; a success ratio that
  goes *up* under heavier faults means the recovery machinery perturbed
  the fault-free path.
* **density-monotonicity** — at a fixed radio range, mean success never
  improves as node density rises: more radios in the same field can
  only add channel contention.
* **shards1-identity** — a ``shards=1`` cluster is bit-identical to the
  single-world service *with the same fault plan injected*.
* **churn-no-leak** — interleaved cancel + fault churn leaves zero
  residual protocol state: no tree states, collector chains, live flood
  dedup entries, scheduler slots, pending session starts, or future PSM
  wake overrides, and the kernel's pending-event census stops shrinking
  only at the steady PSM floor (no session callback keeps rescheduling).

A violated invariant is a loud failure: the CLI exits non-zero naming
the invariant.  Results are written as ``SWEEP_<name>.json`` plus a
markdown table.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..api.requests import ACCURACY_LEVELS
from ..api.scenarios import ScenarioSpec, build_requests
from ..api.service import RUN_TAIL_S
from .plan import FaultPlan, _reject_unknown_keys

#: tolerance for the monotonicity invariant (success is a ratio in [0,1])
MONOTONICITY_TOLERANCE = 0.01

#: the arrival-process axis values
ARRIVAL_STAGGERED = "staggered"
ARRIVAL_BURST = "burst"
_ARRIVALS = (ARRIVAL_STAGGERED, ARRIVAL_BURST)

#: the admission-policy axis values (names -> scenario admission configs)
ADMISSION_ACCEPT_ALL = "accept-all"
_ADMISSION_CONFIGS: Dict[str, Dict] = {
    ADMISSION_ACCEPT_ALL: {},
    "per-area-cap": {"policy": "per-area-cap", "max_overlapping": 3},
    "phase-assign": {"policy": "phase-assign", "slots": 4},
}

_AXES_KEYS = frozenset(
    {"users", "shards", "intensities", "arrivals", "admissions",
     "accuracies", "densities", "radio_ranges"}
)

#: sentinel axis values meaning "keep the base scenario's network config"
DENSITY_BASE = 0
RADIO_RANGE_BASE = 0.0


@dataclass(frozen=True)
class SweepAxes:
    """The sweep grid: every combination of these values runs as one cell."""

    users: Tuple[int, ...] = (4, 8)
    shards: Tuple[int, ...] = (1, 2)
    intensities: Tuple[float, ...] = (0.0, 0.5, 1.0)
    arrivals: Tuple[str, ...] = (ARRIVAL_STAGGERED, ARRIVAL_BURST)
    admissions: Tuple[str, ...] = (ADMISSION_ACCEPT_ALL,)
    accuracies: Tuple[str, ...] = ("exact",)
    densities: Tuple[int, ...] = (DENSITY_BASE,)
    radio_ranges: Tuple[float, ...] = (RADIO_RANGE_BASE,)

    def __post_init__(self) -> None:
        for axis in ("users", "shards", "intensities", "arrivals",
                     "admissions", "accuracies", "densities",
                     "radio_ranges"):
            if not getattr(self, axis):
                raise ValueError(f"sweep axis {axis!r} must not be empty")
        for n in self.users:
            if n < 1:
                raise ValueError(f"sweep users must be >= 1, got {n}")
        for n in self.shards:
            if n < 1:
                raise ValueError(f"sweep shards must be >= 1, got {n}")
        for accuracy in self.accuracies:
            if accuracy not in ACCURACY_LEVELS:
                raise ValueError(
                    f"unknown sweep accuracy {accuracy!r}; expected one of "
                    f"{list(ACCURACY_LEVELS)}"
                )
        for density in self.densities:
            # DENSITY_BASE (0) keeps the base scenario's node count.
            if density < 0:
                raise ValueError(
                    f"sweep density must be >= 0, got {density}"
                )
        for radio_range in self.radio_ranges:
            # RADIO_RANGE_BASE (0) keeps the base comm range.
            if radio_range < 0:
                raise ValueError(
                    f"sweep radio range must be >= 0, got {radio_range}"
                )
        for intensity in self.intensities:
            if not 0.0 <= intensity <= 1.0:
                raise ValueError(
                    f"sweep intensity must be in [0, 1], got {intensity}"
                )
        for arrival in self.arrivals:
            if arrival not in _ARRIVALS:
                raise ValueError(
                    f"unknown sweep arrival {arrival!r}; expected one of "
                    f"{list(_ARRIVALS)}"
                )
        for admission in self.admissions:
            if admission not in _ADMISSION_CONFIGS:
                raise ValueError(
                    f"unknown sweep admission {admission!r}; expected one of "
                    f"{sorted(_ADMISSION_CONFIGS)}"
                )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepAxes":
        """Build axes from plain data, rejecting unknown keys loudly."""
        _reject_unknown_keys(data, _AXES_KEYS, "sweep-axis")
        payload: Dict[str, tuple] = {}
        for axis in ("users", "shards"):
            if axis in data:
                payload[axis] = tuple(int(v) for v in data[axis])
        if "intensities" in data:
            payload["intensities"] = tuple(float(v) for v in data["intensities"])
        if "arrivals" in data:
            payload["arrivals"] = tuple(str(v) for v in data["arrivals"])
        if "admissions" in data:
            payload["admissions"] = tuple(str(v) for v in data["admissions"])
        if "accuracies" in data:
            payload["accuracies"] = tuple(str(v) for v in data["accuracies"])
        if "densities" in data:
            payload["densities"] = tuple(int(v) for v in data["densities"])
        if "radio_ranges" in data:
            payload["radio_ranges"] = tuple(
                float(v) for v in data["radio_ranges"]
            )
        return cls(**payload)

    def cell_count(self) -> int:
        return (
            len(self.users)
            * len(self.shards)
            * len(self.intensities)
            * len(self.arrivals)
            * len(self.admissions)
            * len(self.accuracies)
            * len(self.densities)
            * len(self.radio_ranges)
        )


def plan_for_intensity(spec: ScenarioSpec, intensity: float) -> Dict:
    """The derived fault plan for one intensity step, as plain data.

    Intensity 0 is the empty plan (bit-identical to a fault-free run);
    above 0 a region blackout at the field centre grows with intensity
    and a radio-degradation window raises the corruption probability —
    a deterministic pure function of ``(region, duration, intensity)``.
    """
    if intensity <= 0.0:
        return {}
    from ..net.network import NetworkConfig

    region = NetworkConfig(**spec.network).region
    cx = (region.x_min + region.x_max) / 2.0
    cy = (region.y_min + region.y_max) / 2.0
    span = min(region.x_max - region.x_min, region.y_max - region.y_min)
    duration = spec.duration_s
    return {
        "blackouts": [
            {
                "x": cx,
                "y": cy,
                "radius_m": span * (0.1 + 0.15 * intensity),
                "at_s": round(duration * 0.3, 3),
                "duration_s": round(duration * (0.1 + 0.15 * intensity), 3),
            }
        ],
        "degradations": [
            {
                "at_s": round(duration * 0.55, 3),
                "duration_s": round(duration * 0.1, 3),
                "corruption_prob": round(0.5 * intensity, 3),
            }
        ],
    }


def _merge_fault_dicts(base: Dict, derived: Dict) -> Dict:
    """Concatenate two plain fault plans kind by kind."""
    merged: Dict = {}
    for kind in ("crashes", "blackouts", "degradations", "worker_kills"):
        entries = list(base.get(kind, ())) + list(derived.get(kind, ()))
        if entries:
            merged[kind] = entries
    return merged


@dataclass(frozen=True)
class SweepCell:
    """One grid point: its coordinates plus the fully-derived spec dict.

    The payload travels as plain data so process pools can pickle cells
    without dragging live worlds along.
    """

    users: int
    shards: int
    intensity: float
    arrival: str
    payload: Dict
    admission: str = ADMISSION_ACCEPT_ALL
    accuracy: str = "exact"
    density: int = DENSITY_BASE
    radio_range: float = RADIO_RANGE_BASE


def build_cells(base: ScenarioSpec, axes: SweepAxes) -> List[SweepCell]:
    """Expand the grid: one cell per axis combination.

    The base scenario's *first* request template is the fleet prototype —
    ``count`` becomes the cell's user count and ``spacing_s`` follows the
    arrival axis (kept for ``staggered``, zeroed for ``burst``).  The
    cell's fault plan is the base plan plus the intensity-derived one.
    """
    if not base.requests:
        raise ValueError(
            f"scenario {base.name!r} has no request templates to sweep"
        )
    prototype = dict(base.requests[0])
    base_spacing = float(prototype.get("spacing_s", 2.0)) or 2.0
    cells: List[SweepCell] = []
    combos = [
        (users, shards, intensity, arrival, admission, accuracy, density,
         radio_range)
        for users in axes.users
        for shards in axes.shards
        for intensity in axes.intensities
        for arrival in axes.arrivals
        for admission in axes.admissions
        for accuracy in axes.accuracies
        for density in axes.densities
        for radio_range in axes.radio_ranges
    ]
    for (users, shards, intensity, arrival, admission, accuracy, density,
         radio_range) in combos:
        template = dict(prototype)
        template["count"] = users
        template["spacing_s"] = (
            0.0 if arrival == ARRIVAL_BURST else base_spacing
        )
        template["accuracy"] = accuracy
        payload = base.to_dict()
        # Default axis values keep the legacy cell names (and therefore
        # stable report diffs); only non-default coordinates grow suffixes.
        payload["name"] = (
            f"{base.name}.u{users}.s{shards}"
            f".f{intensity:g}.{arrival}.{admission}"
            + (f".a-{accuracy}" if accuracy != "exact" else "")
            + (f".n{density}" if density != DENSITY_BASE else "")
            + (f".r{radio_range:g}" if radio_range != RADIO_RANGE_BASE else "")
        )
        payload["requests"] = [template]
        payload["shards"] = shards
        # Cells parallelise across the pool, not within it.
        payload["workers"] = 0
        payload["admission"] = dict(_ADMISSION_CONFIGS[admission])
        network = dict(payload.get("network", {}))
        if density != DENSITY_BASE:
            network["n_nodes"] = density
        if radio_range != RADIO_RANGE_BASE:
            network["comm_range_m"] = radio_range
        if network:
            payload["network"] = network
        payload["faults"] = _merge_fault_dicts(
            dict(base.faults),
            plan_for_intensity(base, intensity),
        )
        ScenarioSpec.from_dict(payload)  # fail at build time
        cells.append(
            SweepCell(
                users=users,
                shards=shards,
                intensity=intensity,
                arrival=arrival,
                payload=payload,
                admission=admission,
                accuracy=accuracy,
                density=density,
                radio_range=radio_range,
            )
        )
    return cells


# ----------------------------------------------------------------------
# The churn-leak probe (shared with tests/test_integration_robustness.py)
# ----------------------------------------------------------------------
def leak_census(service) -> Dict[str, int]:
    """Count every kind of residual per-session state in one world.

    The service must already be past its horizon (or have every session
    torn down); the census advances another two beacon periods to measure
    ``pending_growth`` — the kernel-leak proxy: with every session gone,
    the pending-event count may only hold the steady PSM floor, so more
    running must not grow it.  All-zero means teardown is airtight.
    Shared by :func:`churn_leak_probe` and the serve daemon's drain check.
    """
    beacon = service.config.network.sleep_period_s
    pending_before = service.sim.pending_count
    service.advance(service.sim.now + 2.0 * beacon)
    pending_after = service.sim.pending_count
    protocol = service.protocol
    scheduler = service.workload.scheduler
    future_overrides = 0
    now = service.sim.now
    for node in service.network.sleeper_nodes:
        sched = node.sleep_scheduler
        if sched is None:
            continue
        future_overrides += sum(1 for _s, end in sched._overrides if end > now)
    return {
        "tree_states": protocol.tree_state_count() if protocol else 0,
        "collectors": len(protocol._collectors) if protocol else 0,
        "pending_batches": len(protocol._pending_batches) if protocol else 0,
        "live_floods": service.flood.live_flood_count(),
        "scheduler_slots": len(scheduler._gateways),
        "pending_starts": len(scheduler._start_events),
        "future_psm_overrides": future_overrides,
        "summary_sessions": (
            service.summary_plane.live_session_count()
            if getattr(service, "summary_plane", None) is not None
            else 0
        ),
        "pending_growth": max(0, pending_after - pending_before),
    }


def churn_leak_probe(spec: ScenarioSpec) -> Dict[str, int]:
    """Cancel every session mid-run under the spec's faults; count residue.

    Builds the single-world service, submits the whole fleet, cancels
    half at 40% of the horizon and the rest at 70%, runs past the horizon
    plus two beacon periods, and returns the residual-state census —
    all-zero when teardown is airtight.  ``pending_growth`` is the
    kernel-leak proxy: once every session is gone, the pending-event
    census may only hold the steady PSM floor, so another two beacon
    periods of running must not grow it.
    """
    from ..api.scenarios import build_service

    spec = spec.with_overrides(shards=1)
    service = build_service(spec)
    handles = [service.submit(r) for r in build_requests(spec)]
    admitted = [h for h in handles if h.accepted]
    horizon = spec.duration_s
    service.advance(horizon * 0.4)
    for handle in admitted[::2]:
        handle.cancel()
    service.advance(horizon * 0.7)
    for handle in admitted:
        if handle.status != "cancelled":
            handle.cancel()
    beacon = service.config.network.sleep_period_s
    settle = horizon + RUN_TAIL_S + 2.0 * beacon
    service.advance(settle)
    return leak_census(service)


# ----------------------------------------------------------------------
# Cell execution (module-level: process pools must pickle it)
# ----------------------------------------------------------------------
def _result_signature(result) -> Tuple:
    """What the shards=1 identity compares, bit for bit."""
    return (
        tuple(
            (s.user_id, s.success_ratio, s.deliveries, s.degraded_periods)
            for s in result.workload.sessions
        ),
        result.frames_sent,
        result.frames_collided,
        result.frames_delivered,
    )


def run_sweep_cell(cell: SweepCell) -> Dict[str, Any]:
    """Run one grid point and report its row (plain data, pool-safe)."""
    from ..api.scenarios import run_scenario

    spec = ScenarioSpec.from_dict(cell.payload)
    result = run_scenario(spec)
    sessions = result.workload.sessions
    row: Dict[str, Any] = {
        "users": cell.users,
        "shards": cell.shards,
        "intensity": cell.intensity,
        "arrival": cell.arrival,
        "admission": cell.admission,
        "accuracy": cell.accuracy,
        "density": cell.density,
        "radio_range": cell.radio_range,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "mean_success": result.mean_success,
        "min_success": result.min_success,
        "degraded_periods": sum(s.degraded_periods for s in sessions),
        "frames_sent": result.frames_sent,
        "frames_collided": result.frames_collided,
        "events_executed": result.events_executed,
    }
    if cell.shards == 1:
        # The identity leg: an explicit one-shard cluster must reproduce
        # the single world bit for bit, faults included.
        from ..api.admission import make_admission_policy
        from ..api.scenarios import _scenario_config, run_scenario as rerun
        from ..cluster.service import ClusterService

        twin = ClusterService(
            _scenario_config(spec),
            shards=1,
            admission=make_admission_policy(spec.admission),
            partitioner=spec.partitioner,
            workers=0,
            faults=spec.fault_plan(),
        )
        twin_result = rerun(spec, backend=twin)
        row["identity_ok"] = _result_signature(result) == _result_signature(
            twin_result
        )
        leaks = churn_leak_probe(spec)
        row["leaks"] = leaks
        row["leak_total"] = sum(leaks.values())
    return row


# ----------------------------------------------------------------------
# The sweep proper
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """The full grid plus every invariant verdict."""

    name: str
    base: ScenarioSpec
    axes: SweepAxes
    rows: List[Dict[str, Any]]
    violations: List[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base_scenario": self.base.to_dict(),
            "axes": {
                "users": list(self.axes.users),
                "shards": list(self.axes.shards),
                "intensities": list(self.axes.intensities),
                "arrivals": list(self.axes.arrivals),
                "admissions": list(self.axes.admissions),
                "accuracies": list(self.axes.accuracies),
                "densities": list(self.axes.densities),
                "radio_ranges": list(self.axes.radio_ranges),
            },
            "rows": self.rows,
            "violations": self.violations,
            "ok": self.ok,
        }

    def markdown_table(self) -> str:
        """The grid as a GitHub-flavored markdown table."""
        header = (
            "| users | shards | arrival | admission | intensity | rejected | "
            "mean success | min success | degraded | identity | leaks |\n"
            "|---|---|---|---|---|---|---|---|---|---|---|"
        )
        lines = [header]
        for row in self.rows:
            identity = (
                "ok" if row.get("identity_ok") else "FAIL"
            ) if "identity_ok" in row else "-"
            leaks = (
                str(row["leak_total"]) if "leak_total" in row else "-"
            )
            admission = row.get("admission", ADMISSION_ACCEPT_ALL)
            lines.append(
                f"| {row['users']} | {row['shards']} | {row['arrival']} "
                f"| {admission} "
                f"| {row['intensity']:g} | {row.get('rejected', 0)} "
                f"| {row['mean_success']:.3f} "
                f"| {row['min_success']:.3f} | {row['degraded_periods']} "
                f"| {identity} | {leaks} |"
            )
        return "\n".join(lines)


def check_invariants(rows: List[Dict[str, Any]]) -> List[str]:
    """Evaluate the metamorphic invariants over a finished grid."""
    violations: List[str] = []
    groups: Dict[Tuple, List[Dict]] = {}
    for row in rows:
        key = (
            row["users"],
            row["shards"],
            row["arrival"],
            row.get("admission", ADMISSION_ACCEPT_ALL),
            row.get("accuracy", "exact"),
            row.get("density", DENSITY_BASE),
            row.get("radio_range", RADIO_RANGE_BASE),
        )
        groups.setdefault(key, []).append(row)
    for key, group in sorted(groups.items()):
        group.sort(key=lambda r: r["intensity"])
        best_so_far = None
        for row in group:
            success = row["mean_success"]
            if (
                best_so_far is not None
                and success > best_so_far + MONOTONICITY_TOLERANCE
            ):
                violations.append(
                    "fault-monotonicity: users=%d shards=%d arrival=%s "
                    "admission=%s — mean success %.4f at intensity %g "
                    "exceeds %.4f at a lower intensity"
                    % (key[0], key[1], key[2], key[3], success,
                       row["intensity"], best_so_far)
                )
            best_so_far = (
                success if best_so_far is None else min(best_so_far, success)
            )
    # density-monotonicity: at a fixed radio range, packing more nodes
    # into the same field can only raise channel contention — mean
    # success must not *improve* as density rises (same tolerance).  The
    # DENSITY_BASE sentinel is excluded: "keep the base count" has no
    # defined ordering against explicit node counts.
    density_groups: Dict[Tuple, List[Dict]] = {}
    for row in rows:
        if row.get("density", DENSITY_BASE) == DENSITY_BASE:
            continue
        key = (
            row["users"],
            row["shards"],
            row["intensity"],
            row["arrival"],
            row.get("admission", ADMISSION_ACCEPT_ALL),
            row.get("accuracy", "exact"),
            row.get("radio_range", RADIO_RANGE_BASE),
        )
        density_groups.setdefault(key, []).append(row)
    for key, group in sorted(density_groups.items()):
        group.sort(key=lambda r: r["density"])
        best_so_far = None
        for row in group:
            success = row["mean_success"]
            if (
                best_so_far is not None
                and success > best_so_far + MONOTONICITY_TOLERANCE
            ):
                violations.append(
                    "density-monotonicity: users=%d shards=%d intensity=%g "
                    "arrival=%s admission=%s accuracy=%s radio_range=%g — "
                    "mean success %.4f at density %d exceeds %.4f at a "
                    "lower density"
                    % (key[0], key[1], key[2], key[3], key[4], key[5],
                       key[6], success, row["density"], best_so_far)
                )
            best_so_far = (
                success if best_so_far is None else min(best_so_far, success)
            )
    for row in rows:
        if row.get("identity_ok") is False:
            violations.append(
                "shards1-identity: users=%d intensity=%g arrival=%s — "
                "ClusterService(shards=1) diverged from MobiQueryService"
                % (row["users"], row["intensity"], row["arrival"])
            )
        if row.get("leak_total", 0) > 0:
            leaked = {
                k: v for k, v in row.get("leaks", {}).items() if v
            }
            violations.append(
                "churn-no-leak: users=%d intensity=%g arrival=%s — "
                "residual state after cancel/crash churn: %s"
                % (row["users"], row["intensity"], row["arrival"], leaked)
            )
    # admission-no-harm: turning sessions away must never *reduce* the
    # admitted users' mean success vs the accept-all baseline at the same
    # grid point — rejection is allowed to cost coverage, not quality.
    baselines: Dict[Tuple, float] = {}
    for row in rows:
        if row.get("admission", ADMISSION_ACCEPT_ALL) == ADMISSION_ACCEPT_ALL:
            point = (row["users"], row["shards"], row["intensity"],
                     row["arrival"], row.get("accuracy", "exact"),
                     row.get("density", DENSITY_BASE),
                     row.get("radio_range", RADIO_RANGE_BASE))
            baselines[point] = row["mean_success"]
    for row in rows:
        admission = row.get("admission", ADMISSION_ACCEPT_ALL)
        if admission == ADMISSION_ACCEPT_ALL or not row.get("rejected"):
            continue
        point = (row["users"], row["shards"], row["intensity"],
                 row["arrival"], row.get("accuracy", "exact"),
                 row.get("density", DENSITY_BASE),
                 row.get("radio_range", RADIO_RANGE_BASE))
        baseline = baselines.get(point)
        if baseline is None:
            continue
        if row["mean_success"] < baseline - MONOTONICITY_TOLERANCE:
            violations.append(
                "admission-no-harm: users=%d shards=%d intensity=%g "
                "arrival=%s — admission=%s rejected %d sessions yet mean "
                "success %.4f fell below the accept-all baseline %.4f"
                % (row["users"], row["shards"], row["intensity"],
                   row["arrival"], admission, row["rejected"],
                   row["mean_success"], baseline)
            )
    return violations


def run_sweep(
    base: ScenarioSpec,
    axes: Optional[SweepAxes] = None,
    workers: int = 0,
    name: Optional[str] = None,
) -> SweepResult:
    """Run the whole grid (process pool when ``workers`` allows) and
    evaluate the invariants.  Never raises on a violation — the verdicts
    ride in :attr:`SweepResult.violations` for the caller to act on."""
    from ..cluster.transport import parallel_map

    axes = axes if axes is not None else SweepAxes()
    cells = build_cells(base, axes)
    rows = None
    if workers > 1:
        rows = parallel_map(run_sweep_cell, cells, max_workers=workers)
    if rows is None:
        rows = [run_sweep_cell(cell) for cell in cells]
    violations = check_invariants(rows)
    return SweepResult(
        name=name or base.name,
        base=base,
        axes=axes,
        rows=rows,
        violations=violations,
    )


def write_sweep_outputs(result: SweepResult, out_dir: str = ".") -> str:
    """Write ``SWEEP_<name>.json`` (and return its path)."""
    safe = result.name.replace("/", "-").replace(" ", "-")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"SWEEP_{safe}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


__all__ = [
    "ADMISSION_ACCEPT_ALL",
    "ARRIVAL_BURST",
    "ARRIVAL_STAGGERED",
    "MONOTONICITY_TOLERANCE",
    "SweepAxes",
    "SweepCell",
    "SweepResult",
    "build_cells",
    "check_invariants",
    "churn_leak_probe",
    "leak_census",
    "plan_for_intensity",
    "run_sweep",
    "run_sweep_cell",
    "write_sweep_outputs",
]
