"""Deterministic fault injection for the MobiQuery reproduction.

The paper's evaluation assumes every sensor node survives the whole run;
real deployments lose nodes to energy depletion, crashes, and regional
outages.  This package makes that failure surface a first-class,
*deterministic* part of a run:

* :class:`FaultPlan` — a declarative, strictly-validated schedule of node
  crashes/recoveries, region blackouts, transient radio-degradation
  windows, and cluster shard-worker kills (the ``faults`` key of a
  scenario, or ``repro run --faults plan.json``).
* :class:`FaultInjector` — executes a plan against a built network.  All
  stochastic draws come from the dedicated ``"faults"`` RNG stream, so an
  empty plan is bit-identical to a run without the fault plane at all —
  every golden fingerprint stays green.

Recovery lives in the protocol layer (collector re-election, report
re-routing around dead parents, watchdog re-injection); this package only
breaks things, deterministically.

The adversarial sweep (``repro sweep``) lives in
:mod:`repro.faults.sweep` — import it explicitly
(``from repro.faults.sweep import run_sweep``): it sits *above* the API
layer, so re-exporting it here would cycle the import graph.
"""

from .injector import FaultInjector
from .plan import (
    FaultPlan,
    NodeCrash,
    RadioDegradation,
    RegionBlackout,
    WireChaos,
    WorkerKill,
    load_fault_file,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "NodeCrash",
    "RadioDegradation",
    "RegionBlackout",
    "WireChaos",
    "WorkerKill",
    "load_fault_file",
]
