"""Execute a :class:`FaultPlan` against a built network.

Crashes are modelled as *forced sleep with wake blocked*: the node's radio
drops to SLEEP (corrupting whatever it was receiving, exactly as a real
power loss would), and ``wake`` is shadowed so neither the PSM wheel nor
the protocol can bring the radio back until recovery.  This flows through
the same :meth:`Radio.set_state` path on both physics legs — a crashed
node behaves bit-identically whether its radio is a plain object or bound
to the numpy :class:`~repro.net.vectorized.VectorStore`.

Degradation windows install a jam hook on the channel; while a window is
open every transmitted frame is corrupted at all receivers with the
window's probability (one draw per frame, in kernel-event order, from the
dedicated ``"faults"`` stream — both physics legs see identical draws).

The injector only *breaks* things.  Recovery — collector re-election,
report re-routing, watchdog re-injection, degraded-period accounting —
lives in :mod:`repro.core.service` and :mod:`repro.core.gateway`.
"""

from __future__ import annotations

from typing import List, Optional

from ..geometry.vec import Vec2
from ..net.network import Network
from ..net.node import SensorNode
from ..sim.rng import RandomStreams
from ..sim.trace import Tracer
from .plan import FaultPlan, RadioDegradation, RegionBlackout


def _blocked_wake() -> None:
    """Shadow for ``Radio.wake`` while a node is crashed."""


class FaultInjector:
    """Schedules a plan's fault events on a network's kernel."""

    def __init__(
        self,
        plan: FaultPlan,
        network: Network,
        streams: RandomStreams,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.plan = plan
        self.network = network
        self.sim = network.sim
        self.tracer = tracer if tracer is not None else network.tracer
        # The dedicated stream: fault draws cannot perturb any other
        # component, and an empty plan draws nothing at all.
        self.rng = streams.stream("faults")
        #: corruption probabilities of currently-open degradation windows
        self._jam_probs: List[float] = []

    def start(self) -> None:
        """Schedule every event in the plan (no-op for an empty plan)."""
        if self.plan.empty:
            return
        n_nodes = len(self.network.nodes)
        for crash in self.plan.crashes:
            if crash.node_id >= n_nodes:
                # A cluster shard world smaller than the plan's id space:
                # the crash targets a node outside this shard.
                continue
            self.sim.schedule_at(crash.at_s, self._crash_by_id, crash.node_id)
            if crash.recover_s is not None:
                self.sim.schedule_at(crash.recover_s, self._recover_by_id, crash.node_id)
        for blackout in self.plan.blackouts:
            self.sim.schedule_at(blackout.at_s, self._blackout_start, blackout)
        for window in self.plan.degradations:
            self.sim.schedule_at(window.at_s, self._degrade_start, window)
            self.sim.schedule_at(
                window.at_s + window.duration_s, self._degrade_end, window
            )

    # ------------------------------------------------------------------
    # Crash / recover
    # ------------------------------------------------------------------
    def crash_node(self, node: SensorNode) -> bool:
        """Kill ``node`` now; returns False if it was already down."""
        if node.crashed:
            return False
        node.crashed = True
        radio = node.radio
        radio.sleep()
        # Shadow the bound method: PSM windows and protocol wake-ups hit
        # this no-op until recovery deletes the instance attribute.
        radio.wake = _blocked_wake
        self.tracer.emit("node-crashed", self.sim.now, node=node.node_id)
        return True

    def recover_node(self, node: SensorNode) -> None:
        """Bring ``node`` back; sleepers rejoin at their next PSM window."""
        if not node.crashed:
            return
        node.crashed = False
        radio = node.radio
        try:
            del radio.wake  # un-shadow the class method
        except AttributeError:
            pass
        if node.sleep_scheduler is None:
            # Backbone node: always-on, wake immediately.
            radio.wake()
        self.tracer.emit("node-recovered", self.sim.now, node=node.node_id)

    def _crash_by_id(self, node_id: int) -> None:
        self.crash_node(self.network.node_by_id(node_id))

    def _recover_by_id(self, node_id: int) -> None:
        self.recover_node(self.network.node_by_id(node_id))

    # ------------------------------------------------------------------
    # Region blackout
    # ------------------------------------------------------------------
    def _blackout_start(self, blackout: RegionBlackout) -> None:
        center = Vec2(blackout.x, blackout.y)
        victims = [
            node.node_id
            for node in self.network.nodes_in_disk(center, blackout.radius_m)
            if self.crash_node(node)
        ]
        self.tracer.emit(
            "blackout-start",
            self.sim.now,
            x=blackout.x,
            y=blackout.y,
            radius=blackout.radius_m,
            victims=len(victims),
        )
        self.sim.schedule(blackout.duration_s, self._blackout_end, victims)

    def _blackout_end(self, victims: List[int]) -> None:
        for node_id in victims:
            self.recover_node(self.network.node_by_id(node_id))
        self.tracer.emit("blackout-end", self.sim.now, victims=len(victims))

    # ------------------------------------------------------------------
    # Radio degradation windows
    # ------------------------------------------------------------------
    def _degrade_start(self, window: RadioDegradation) -> None:
        self._jam_probs.append(window.corruption_prob)
        self.network.channel.fault_jam = self._jam
        self.tracer.emit(
            "degradation-start", self.sim.now, prob=window.corruption_prob
        )

    def _degrade_end(self, window: RadioDegradation) -> None:
        self._jam_probs.remove(window.corruption_prob)
        if not self._jam_probs:
            # Last window closed: detach the hook so the channel stops
            # consulting (and the stream stops drawing) entirely.
            self.network.channel.fault_jam = None
        self.tracer.emit("degradation-end", self.sim.now, prob=window.corruption_prob)

    def _jam(self, frame: object) -> bool:
        """One draw per transmitted frame while any window is open."""
        return float(self.rng.random()) < max(self._jam_probs)
