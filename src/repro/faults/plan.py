"""Declarative fault plans.

A :class:`FaultPlan` is plain data — the ``faults`` key of a scenario
JSON, or a standalone file passed to ``repro run --faults`` — validated
with the same strictness as :class:`~repro.api.scenarios.ScenarioSpec`:
unknown keys anywhere in the plan are rejected at load time with a
one-line error naming the bad key.

Five fault kinds:

* ``crashes`` — one node dies at ``at_s`` and (optionally) recovers at
  ``recover_s``.
* ``blackouts`` — every node inside a disk dies at ``at_s`` and recovers
  ``duration_s`` later (nodes already down stay down; the blackout only
  revives its own victims).
* ``degradations`` — a time window during which every transmitted frame
  is corrupted at all receivers with probability ``corruption_prob``
  (elevated channel noise; one RNG draw per frame from the dedicated
  ``"faults"`` stream).
* ``worker_kills`` — in the cluster path, the worker process computing a
  shard is killed once and the shard replayed on a restarted worker.
* ``wire`` — chaos on the serve daemon's HTTP surface only (connection
  resets, response delays, truncated bodies, injected 5xx), executed by
  daemon middleware off a dedicated RNG stream.  Like ``worker_kills``
  it never touches the simulated world: a wire-only plan leaves every
  golden pin bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, FrozenSet, Mapping, Optional, Tuple


def _reject_unknown_keys(
    data: Mapping[str, Any], known: FrozenSet[str], what: str
) -> None:
    unknown = sorted(k for k in data if k not in known)
    if unknown:
        raise ValueError(
            f"unknown {what} key {unknown[0]!r}; expected one of {sorted(known)}"
        )


@dataclass(frozen=True)
class NodeCrash:
    """One node dies at ``at_s``; ``recover_s`` (if set) brings it back."""

    node_id: int
    at_s: float
    recover_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"crash node_id must be >= 0, got {self.node_id}")
        if self.at_s < 0:
            raise ValueError(f"crash at_s must be >= 0, got {self.at_s}")
        if self.recover_s is not None and self.recover_s <= self.at_s:
            raise ValueError(
                f"crash recover_s ({self.recover_s}) must be > at_s ({self.at_s})"
            )


@dataclass(frozen=True)
class RegionBlackout:
    """Every node within ``radius_m`` of ``(x, y)`` dies for ``duration_s``."""

    x: float
    y: float
    radius_m: float
    at_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError(f"blackout radius_m must be > 0, got {self.radius_m}")
        if self.at_s < 0:
            raise ValueError(f"blackout at_s must be >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise ValueError(
                f"blackout duration_s must be > 0, got {self.duration_s}"
            )


@dataclass(frozen=True)
class RadioDegradation:
    """Elevated corruption window: frames sent in ``[at_s, at_s+duration_s)``
    are jammed at every receiver with probability ``corruption_prob``."""

    at_s: float
    duration_s: float
    corruption_prob: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"degradation at_s must be >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise ValueError(
                f"degradation duration_s must be > 0, got {self.duration_s}"
            )
        if not 0.0 <= self.corruption_prob <= 1.0:
            raise ValueError(
                "degradation corruption_prob must be in [0, 1], "
                f"got {self.corruption_prob}"
            )


@dataclass(frozen=True)
class WorkerKill:
    """Kill the worker process computing ``shard`` once (cluster path)."""

    shard: int

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError(f"worker_kill shard must be >= 0, got {self.shard}")


@dataclass(frozen=True)
class WireChaos:
    """Per-request chaos probabilities on the daemon's HTTP surface.

    Each incoming request draws its fate from the daemon's dedicated
    wire-chaos RNG stream: reset the connection before dispatch
    (``reset_prob``), sleep ``uniform(0, delay_s)`` first
    (``delay_prob``), answer with a typed ``chaos-injected`` 5xx instead
    of dispatching (``error_prob``), or dispatch normally but cut the
    response body short (``truncate_prob`` — the state-committed,
    response-lost case idempotency keys exist for).
    """

    reset_prob: float = 0.0
    delay_prob: float = 0.0
    delay_s: float = 0.0
    error_prob: float = 0.0
    truncate_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("reset_prob", "delay_prob", "error_prob", "truncate_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"wire {name} must be in [0, 1], got {value}"
                )
        if self.delay_s < 0:
            raise ValueError(f"wire delay_s must be >= 0, got {self.delay_s}")
        if self.delay_prob > 0 and self.delay_s <= 0:
            raise ValueError(
                f"wire delay_prob {self.delay_prob} needs delay_s > 0"
            )

    @property
    def empty(self) -> bool:
        """Whether this wire section can never perturb a request."""
        return not (
            self.reset_prob
            or self.delay_prob
            or self.error_prob
            or self.truncate_prob
        )


_CRASH_KEYS = frozenset({"node_id", "at_s", "recover_s"})
_BLACKOUT_KEYS = frozenset({"x", "y", "radius_m", "at_s", "duration_s"})
_DEGRADATION_KEYS = frozenset({"at_s", "duration_s", "corruption_prob"})
_WORKER_KILL_KEYS = frozenset({"shard"})
_WIRE_KEYS = frozenset(
    {"reset_prob", "delay_prob", "delay_s", "error_prob", "truncate_prob"}
)
_PLAN_KEYS = frozenset(
    {"crashes", "blackouts", "degradations", "worker_kills", "wire"}
)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, validated fault schedule for one run."""

    crashes: Tuple[NodeCrash, ...] = ()
    blackouts: Tuple[RegionBlackout, ...] = ()
    degradations: Tuple[RadioDegradation, ...] = ()
    worker_kills: Tuple[WorkerKill, ...] = field(default=())
    wire: Optional[WireChaos] = None

    @property
    def empty(self) -> bool:
        """Whether the plan schedules nothing at all."""
        return not (
            self.crashes
            or self.blackouts
            or self.degradations
            or self.worker_kills
            or (self.wire is not None and not self.wire.empty)
        )

    @property
    def world_empty(self) -> bool:
        """Whether the plan touches the simulated world itself.

        ``worker_kills`` only exercise the cluster's process pool and
        ``wire`` only the serve daemon's HTTP surface — a plan with just
        those leaves every world bit-identical (the killed shard is
        replayed, the wire chaos draws from its own stream), so no
        injector is built and no period is ever marked degraded for it.
        """
        return not (self.crashes or self.blackouts or self.degradations)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from plain data, rejecting unknown keys loudly."""
        _reject_unknown_keys(data, _PLAN_KEYS, "fault plan")
        crashes = []
        for entry in data.get("crashes", ()):
            _reject_unknown_keys(entry, _CRASH_KEYS, "fault crash")
            crashes.append(NodeCrash(**entry))
        blackouts = []
        for entry in data.get("blackouts", ()):
            _reject_unknown_keys(entry, _BLACKOUT_KEYS, "fault blackout")
            blackouts.append(RegionBlackout(**entry))
        degradations = []
        for entry in data.get("degradations", ()):
            _reject_unknown_keys(entry, _DEGRADATION_KEYS, "fault degradation")
            degradations.append(RadioDegradation(**entry))
        kills = []
        for entry in data.get("worker_kills", ()):
            _reject_unknown_keys(entry, _WORKER_KILL_KEYS, "fault worker_kill")
            kills.append(WorkerKill(**entry))
        wire: Optional[WireChaos] = None
        if "wire" in data:
            entry = data["wire"]
            if not isinstance(entry, Mapping):
                raise ValueError(
                    f"fault plan 'wire' must be an object, got {type(entry).__name__}"
                )
            _reject_unknown_keys(entry, _WIRE_KEYS, "fault wire")
            candidate = WireChaos(**entry)
            # All-zero wire sections normalise to no section at all, so
            # "empty wire plan" and "no wire plan" are the same object —
            # the bit-identity guarantee needs no special cases.
            wire = None if candidate.empty else candidate
        return cls(
            crashes=tuple(crashes),
            blackouts=tuple(blackouts),
            degradations=tuple(degradations),
            worker_kills=tuple(kills),
            wire=wire,
        )

    def to_dict(self) -> dict:
        """The plain-data form ``from_dict`` accepts (round-trippable)."""
        out: dict = {}
        if self.crashes:
            out["crashes"] = [
                {
                    "node_id": c.node_id,
                    "at_s": c.at_s,
                    **({"recover_s": c.recover_s} if c.recover_s is not None else {}),
                }
                for c in self.crashes
            ]
        if self.blackouts:
            out["blackouts"] = [
                {
                    "x": b.x,
                    "y": b.y,
                    "radius_m": b.radius_m,
                    "at_s": b.at_s,
                    "duration_s": b.duration_s,
                }
                for b in self.blackouts
            ]
        if self.degradations:
            out["degradations"] = [
                {
                    "at_s": d.at_s,
                    "duration_s": d.duration_s,
                    "corruption_prob": d.corruption_prob,
                }
                for d in self.degradations
            ]
        if self.worker_kills:
            out["worker_kills"] = [{"shard": w.shard} for w in self.worker_kills]
        if self.wire is not None and not self.wire.empty:
            out["wire"] = {
                "reset_prob": self.wire.reset_prob,
                "delay_prob": self.wire.delay_prob,
                "delay_s": self.wire.delay_s,
                "error_prob": self.wire.error_prob,
                "truncate_prob": self.wire.truncate_prob,
            }
        return out


def load_fault_file(path: str) -> FaultPlan:
    """Load a standalone fault-plan JSON file (``repro run --faults``)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"fault plan file {path} must hold a JSON object")
    return FaultPlan.from_dict(data)
