"""Experiment harness: configs, runner, per-figure reproductions."""

from .config import (
    MODE_GREEDY,
    MODE_IDLE,
    MODE_JIT,
    MODE_NP,
    PROFILE_FULL,
    PROFILE_PLANNER,
    PROFILE_PREDICTOR,
    ExperimentConfig,
    QueryParams,
    paper_section62_config,
    paper_section63_config,
)
from .figures import (
    bench_scale,
    contention_analysis_table,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_warmup_comparison,
    storage_analysis_table,
)
from .reporting import format_series, format_table
from .runner import (
    PROXY_NODE_ID,
    RunResult,
    mean_success_ratio,
    run_experiment,
    run_replications,
)
from .viz import render_fidelity_strip, render_field

__all__ = [
    "ExperimentConfig",
    "QueryParams",
    "paper_section62_config",
    "paper_section63_config",
    "MODE_JIT",
    "MODE_GREEDY",
    "MODE_NP",
    "MODE_IDLE",
    "PROFILE_FULL",
    "PROFILE_PLANNER",
    "PROFILE_PREDICTOR",
    "RunResult",
    "run_experiment",
    "run_replications",
    "mean_success_ratio",
    "PROXY_NODE_ID",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "storage_analysis_table",
    "contention_analysis_table",
    "run_warmup_comparison",
    "bench_scale",
    "format_table",
    "format_series",
    "render_field",
    "render_fidelity_strip",
]
