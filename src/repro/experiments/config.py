"""Experiment configuration presets (paper Section 6.1 settings).

Every figure's experiment is expressed as an :class:`ExperimentConfig`:
which service variant runs (MQ-JIT, MQ-GP, NP, or an idle CCP-only
baseline), how the user moves, how motion profiles reach the proxy, and the
network parameters.  Defaults reproduce Section 6.1: 200 nodes in
450 m x 450 m, 100 ms active window, ``Rq = 150`` m, ``Rc = 105`` m,
``Rs = 50`` m, ``Tperiod = 2`` s, ``Tfresh = 1`` s, 2 Mb/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..core.query import Aggregation
from ..mobility.models import RandomDirectionConfig
from ..net.network import NetworkConfig
from ..workload.arrivals import ARRIVAL_PROCESSES, ARRIVAL_STAGGERED

#: service variants
MODE_JIT = "jit"
MODE_GREEDY = "greedy"
MODE_NP = "np"
MODE_IDLE = "idle"

#: motion-profile delivery modes
PROFILE_FULL = "full"
PROFILE_PLANNER = "planner"
PROFILE_PREDICTOR = "predictor"

_MODES = (MODE_JIT, MODE_GREEDY, MODE_NP, MODE_IDLE)
_PROFILE_MODES = (PROFILE_FULL, PROFILE_PLANNER, PROFILE_PREDICTOR)


@dataclass(frozen=True)
class QueryParams:
    """Query parameters shared by every user of a legacy experiment run.

    The experiment era had one frozen parameter set per run; the service
    API (:class:`repro.api.QueryRequest`) carries the same six-tuple *per
    request* instead, and this class survives as the homogeneous default
    the figure harness feeds through the adapter.
    """

    attribute: str = "temperature"
    aggregation: Aggregation = Aggregation.AVG
    radius_m: float = 150.0
    period_s: float = 2.0
    freshness_s: float = 1.0
    accuracy: str = "exact"

    def __post_init__(self) -> None:
        # Same one-line rejections as the service boundary (imported
        # lazily: repro.api depends on this module).
        from ..api.requests import ACCURACY_LEVELS, validate_query_params

        validate_query_params(self.radius_m, self.period_s, self.freshness_s)
        if self.accuracy not in ACCURACY_LEVELS:
            raise ValueError(
                f"accuracy must be one of {ACCURACY_LEVELS}, got {self.accuracy!r}"
            )


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulation run, fully specified."""

    mode: str = MODE_JIT
    seed: int = 1
    duration_s: float = 400.0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    query: QueryParams = field(default_factory=QueryParams)
    mobility: RandomDirectionConfig = field(default_factory=RandomDirectionConfig)
    profile_mode: str = PROFILE_FULL
    #: planner advance time Ta (profile arrives Ta before each motion change)
    advance_time_s: float = 0.0
    #: GPS error bound Δ for the history predictor
    gps_error_m: float = 0.0
    #: history-predictor sampling period δ
    sampling_period_s: float = 8.0
    #: anycast delivery radius Rp
    pickup_radius_m: float = 30.0
    fidelity_threshold: float = 0.95
    #: ablation flag — parent upgrades in the setup flood (DESIGN.md §4)
    parent_upgrade: bool = True
    #: ablation flag — PSM-style setup redelivery across beacon windows
    redeliver_setups: bool = True
    #: concurrent mobile users sharing the network (1 = the paper's setting)
    num_users: int = 1
    #: how session starts are spread (see :mod:`repro.workload.arrivals`).
    #: Staggered by default, matching the CLI: simultaneous arrivals
    #: phase-lock every session's deadlines and cost 10-20 pp of success
    #: ratio at N=4 (report storms collide) — opt into ``simultaneous``
    #: only to study that contention regime.
    arrival_process: str = ARRIVAL_STAGGERED
    #: arrival spacing / window share / mean interarrival, per the process
    arrival_spacing_s: float = 2.5

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {_MODES}")
        if self.profile_mode not in _PROFILE_MODES:
            raise ValueError(
                f"unknown profile mode {self.profile_mode!r}; "
                f"expected one of {_PROFILE_MODES}"
            )
        if self.duration_s < self.query.period_s:
            raise ValueError("duration must cover at least one query period")
        if self.num_users < 1:
            raise ValueError(f"num_users must be >= 1, got {self.num_users}")
        if self.arrival_process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival_process!r}; "
                f"expected one of {ARRIVAL_PROCESSES}"
            )
        if self.arrival_spacing_s < 0:
            raise ValueError("arrival spacing must be >= 0")
        if self.num_users > 1 and self.mode == MODE_IDLE:
            raise ValueError("idle runs have no users to multiply")

    # ------------------------------------------------------------------
    # Sweep helpers (each figure varies one axis)
    # ------------------------------------------------------------------
    def with_mode(self, mode: str) -> "ExperimentConfig":
        return replace(self, mode=mode)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)

    def with_sleep_period(self, sleep_period_s: float) -> "ExperimentConfig":
        return replace(self, network=self.network.with_sleep_period(sleep_period_s))

    def with_speed_range(self, speed_range: Tuple[float, float]) -> "ExperimentConfig":
        return replace(self, mobility=replace(self.mobility, speed_range=speed_range))

    def with_change_interval(self, interval_s: float) -> "ExperimentConfig":
        return replace(
            self, mobility=replace(self.mobility, change_interval_s=interval_s)
        )

    def with_advance_time(self, advance_time_s: float) -> "ExperimentConfig":
        return replace(
            self, profile_mode=PROFILE_PLANNER, advance_time_s=advance_time_s
        )

    def with_gps_error(self, gps_error_m: float) -> "ExperimentConfig":
        return replace(
            self, profile_mode=PROFILE_PREDICTOR, gps_error_m=gps_error_m
        )

    def with_num_users(
        self,
        num_users: int,
        arrival_process: Optional[str] = None,
        arrival_spacing_s: Optional[float] = None,
    ) -> "ExperimentConfig":
        """The multi-user scaling axis: same run, N concurrent users."""
        return replace(
            self,
            num_users=num_users,
            arrival_process=(
                arrival_process
                if arrival_process is not None
                else self.arrival_process
            ),
            arrival_spacing_s=(
                arrival_spacing_s
                if arrival_spacing_s is not None
                else self.arrival_spacing_s
            ),
        )


def paper_section62_config(
    mode: str = MODE_JIT,
    sleep_period_s: float = 9.0,
    speed_range: Tuple[float, float] = (3.0, 5.0),
    seed: int = 1,
    duration_s: float = 400.0,
) -> ExperimentConfig:
    """The Section 6.2 setting: accurate full-path profile, 50 s changes."""
    return ExperimentConfig(
        mode=mode,
        seed=seed,
        duration_s=duration_s,
        network=NetworkConfig(sleep_period_s=sleep_period_s),
        mobility=RandomDirectionConfig(
            speed_range=speed_range, change_interval_s=50.0
        ),
        profile_mode=PROFILE_FULL,
    )


def paper_section63_config(
    sleep_period_s: float = 9.0,
    change_interval_s: float = 70.0,
    advance_time_s: float = 0.0,
    gps_error_m: Optional[float] = None,
    seed: int = 1,
    duration_s: float = 500.0,
) -> ExperimentConfig:
    """The Section 6.3 setting: 70 s changes, profiles with advance time
    ``Ta`` (planner) or GPS-error prediction (predictor)."""
    base = ExperimentConfig(
        mode=MODE_JIT,
        seed=seed,
        duration_s=duration_s,
        network=NetworkConfig(sleep_period_s=sleep_period_s),
        mobility=RandomDirectionConfig(
            speed_range=(3.0, 5.0), change_interval_s=change_interval_s
        ),
    )
    if gps_error_m is not None:
        return base.with_gps_error(gps_error_m)
    return base.with_advance_time(advance_time_s)
