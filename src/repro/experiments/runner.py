"""Experiment runner: build a world from a config, run it, score it.

``run_experiment`` is the one entry point every figure module and example
uses: it assembles the kernel, network, CCP backbone, routing/flooding,
the requested service variant and the user's mobility + profile pipeline,
runs the session, and returns a :class:`RunResult` bundling all metrics.

Since the multi-user workload engine landed, a config with ``num_users``
> 1 spawns that many concurrent user sessions on the *same* network: one
shared protocol instance, one kernel, N proxies/paths/gateways started
per the configured arrival process.  ``num_users=1`` reproduces the
paper's single-user runs exactly (same RNG streams, same results).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..core.baseline import NoPrefetchProtocol
from ..core.metrics import (
    ContentionTracker,
    PowerReport,
    SessionMetrics,
    StorageTracker,
    measure_power,
)
from ..core.query import QuerySpec
from ..core.service import MobiQueryConfig, MobiQueryProtocol
from ..geometry.vec import Vec2
from ..mobility.gps import GpsModel
from ..mobility.models import random_direction_path
from ..mobility.path import PiecewisePath
from ..mobility.planner import FullKnowledgeProvider, PlannerProfileProvider
from ..mobility.predictor import HistoryPredictorProvider
from ..mobility.profile import ProfileProvider
from ..net.flooding import FloodManager
from ..net.network import build_network
from ..net.routing import GeoRouter
from ..power.ccp import CcpProtocol
from ..sim.kernel import Simulator
from ..sim.rng import RandomStreams
from ..sim.trace import Tracer
from ..workload.arrivals import arrival_times
from ..workload.engine import Workload, WorkloadResult
from ..workload.session import PROXY_ID_BASE, SessionResult, UserPlan
from .config import (
    MODE_GREEDY,
    MODE_IDLE,
    MODE_JIT,
    MODE_NP,
    PROFILE_FULL,
    PROFILE_PLANNER,
    PROFILE_PREDICTOR,
    ExperimentConfig,
)

#: node id assigned to user 0's proxy endpoint (user ``u`` gets base + u)
PROXY_NODE_ID = PROXY_ID_BASE

#: extra simulated time after the last deadline (late stragglers, GC)
RUN_TAIL_S = 0.5


@dataclass
class RunResult:
    """Everything measured in one run."""

    config: ExperimentConfig
    metrics: Optional[SessionMetrics]
    power: PowerReport
    backbone_size: int
    max_prefetch_length: int
    max_tree_states: int
    interference_length: int
    frames_sent: int
    frames_collided: int
    events_executed: int
    #: frames handed to a receiver MAC (channel-level delivery counter)
    frames_delivered: int = 0
    #: per-user scored sessions (one entry for single-user runs, empty for idle)
    sessions: List[SessionResult] = field(default_factory=list)

    @property
    def success_ratio(self) -> float:
        """Headline number (0.0 for idle runs).

        For multi-user runs this is user 0's ratio — the baseline-aligned
        session; use the ``user_*`` accessors for fleet-wide numbers.
        """
        return self.metrics.success_ratio() if self.metrics else 0.0

    @property
    def workload(self) -> WorkloadResult:
        """The sessions viewed as a workload result (fleet aggregates)."""
        return WorkloadResult(sessions=self.sessions)

    @property
    def user_success_ratios(self) -> List[float]:
        """Per-user success ratios in user order."""
        return self.workload.success_ratios()

    @property
    def mean_user_success_ratio(self) -> float:
        return self.workload.mean_success_ratio()

    @property
    def min_user_success_ratio(self) -> float:
        return self.workload.min_success_ratio()


def run_experiment(config: ExperimentConfig) -> RunResult:
    """Run one full session (or N concurrent ones) described by ``config``."""
    sim = Simulator()
    streams = RandomStreams(config.seed)
    tracer = Tracer()
    # De-align the shared beacon schedule from the query start: real users
    # issue queries at arbitrary phases of the PSM cycle.
    psm_offset = float(
        streams.stream("psm").uniform(0.0, config.network.sleep_period_s)
    )
    network_config = replace(config.network, psm_offset_s=psm_offset)
    network = build_network(sim, network_config, streams, tracer)
    CcpProtocol().apply(network, streams)
    geo = GeoRouter(network)
    flood = FloodManager(network)

    workload = Workload(network, tracer)
    storage: Optional[StorageTracker] = None
    contention: Optional[ContentionTracker] = None
    if config.mode != MODE_IDLE:
        starts = _arrival_schedule(config, streams)
        paths = [
            _make_user_path(config, streams, user_id)
            for user_id in range(config.num_users)
        ]
        specs = [
            _make_spec(config, user_id, starts[user_id])
            for user_id in range(config.num_users)
        ]
        if config.mode in (MODE_JIT, MODE_GREEDY):
            protocol = MobiQueryProtocol(
                network,
                geo,
                MobiQueryConfig(
                    prefetch_policy=config.mode,
                    pickup_radius_m=config.pickup_radius_m,
                    parent_upgrade=config.parent_upgrade,
                    redeliver_setups=config.redeliver_setups,
                ),
                tracer,
            )
            storage = StorageTracker(tracer, specs[0], specs=specs)
            contention = ContentionTracker(
                tracer,
                sleep_period_s=config.network.sleep_period_s,
                active_window_s=config.network.active_window_s,
                query_radius_m=config.query.radius_m,
                comm_range_m=config.network.comm_range_m,
                psm_offset_s=psm_offset,
            )
            for user_id in range(config.num_users):
                plan = UserPlan(
                    user_id=user_id,
                    spec=specs[user_id],
                    path=paths[user_id],
                    provider=_make_profile_provider(
                        config, paths[user_id], streams, user_id
                    ),
                )
                workload.add_mobiquery_user(
                    plan, protocol, rng=streams.stream(_user_stream("proxy", user_id))
                )
        elif config.mode == MODE_NP:
            np_protocol = NoPrefetchProtocol(network, geo, flood, tracer=tracer)
            for user_id in range(config.num_users):
                plan = UserPlan(
                    user_id=user_id, spec=specs[user_id], path=paths[user_id]
                )
                workload.add_noprefetch_user(
                    plan,
                    np_protocol,
                    flood,
                    rng=streams.stream(_user_stream("proxy", user_id)),
                )
        else:  # pragma: no cover - config validation guarantees the set
            raise ValueError(f"unhandled mode {config.mode!r}")

    sim.run(until=config.duration_s + RUN_TAIL_S)

    sessions: List[SessionResult] = []
    metrics = None
    if workload.sessions:
        result = workload.finalize(
            config.duration_s, fidelity_threshold=config.fidelity_threshold
        )
        sessions = result.sessions
        metrics = sessions[0].metrics
    return RunResult(
        config=config,
        metrics=metrics,
        power=measure_power(network),
        backbone_size=len(network.active_nodes),
        max_prefetch_length=storage.max_prefetch_length if storage else 0,
        max_tree_states=storage.max_tree_states if storage else 0,
        interference_length=contention.interference_length() if contention else 0,
        frames_sent=network.channel.frames_sent,
        frames_collided=network.channel.frames_collided,
        events_executed=sim.events_executed,
        frames_delivered=network.channel.frames_delivered,
        sessions=sessions,
    )


def run_replications(config: ExperimentConfig, seeds: List[int]) -> List[RunResult]:
    """Run the same config across several topologies/motions (paper: 3–5)."""
    return [run_experiment(config.with_seed(seed)) for seed in seeds]


def run_replications_parallel(
    config: ExperimentConfig,
    seeds: List[int],
    max_workers: Optional[int] = None,
) -> List[RunResult]:
    """``run_replications`` across OS processes, one seed per task.

    Results are returned in seed order and are identical (per seed) to the
    serial path: each worker runs ``run_experiment`` on its own kernel and
    RNG streams, so parallelism cannot perturb a replication.  Falls back
    to the serial path for a single seed, for ``max_workers=1``, and when
    process pools are unavailable (restricted sandboxes).
    """
    if len(seeds) <= 1:
        return run_replications(config, seeds)
    import concurrent.futures
    import multiprocessing
    import os

    workers = max_workers or min(len(seeds), os.cpu_count() or 1)
    if workers <= 1:
        # One CPU (or caller-limited): a process pool only adds overhead.
        return run_replications(config, seeds)
    # fork keeps startup cheap and inherits the imported model code; fall
    # back to the platform default (spawn) where fork is unavailable.
    mp_context = None
    if "fork" in multiprocessing.get_all_start_methods():
        mp_context = multiprocessing.get_context("fork")
    configs = [config.with_seed(seed) for seed in seeds]
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=mp_context
        ) as pool:
            return list(pool.map(run_experiment, configs))
    except (OSError, PermissionError, concurrent.futures.BrokenExecutor):
        # No process support (seccomp'd CI, restricted container) or the
        # workers were killed (BrokenProcessPool): degrade gracefully to
        # the serial path rather than fail the experiment.
        return run_replications(config, seeds)


def mean_success_ratio(results: List[RunResult]) -> float:
    """Average success ratio over replications."""
    if not results:
        return 0.0
    return sum(r.success_ratio for r in results) / len(results)


# ----------------------------------------------------------------------
# Pieces
# ----------------------------------------------------------------------
def _user_stream(base: str, user_id: int) -> str:
    """Stream name for a per-user random source.

    User 0 keeps the historical un-suffixed names so ``num_users=1`` runs
    consume exactly the same random sequences as before the multi-user
    engine existed (bit-for-bit reproducibility of the paper figures).
    """
    return base if user_id == 0 else f"{base}.u{user_id}"


def _arrival_schedule(config: ExperimentConfig, streams: RandomStreams) -> List[float]:
    """Session start times; every user must keep >= 1 serviceable period."""
    starts = arrival_times(
        config.num_users,
        process=config.arrival_process,
        spacing_s=config.arrival_spacing_s,
        rng=streams.stream("arrivals"),
    )
    latest = config.duration_s - config.query.period_s
    for user_id, start in enumerate(starts):
        if start > latest:
            raise ValueError(
                f"user {user_id} arrives at {start:.1f}s but the run ends at "
                f"{config.duration_s:.1f}s — no serviceable period left; "
                f"shorten the arrival spacing or lengthen the run"
            )
    return starts


def _make_spec(config: ExperimentConfig, user_id: int, start_s: float) -> QuerySpec:
    """One user's query spec: session runs from arrival to the run end."""
    return QuerySpec(
        attribute=config.query.attribute,
        aggregation=config.query.aggregation,
        radius_m=config.query.radius_m,
        period_s=config.query.period_s,
        freshness_s=config.query.freshness_s,
        lifetime_s=config.duration_s - start_s,
        user_id=user_id,
        start_s=start_s,
    )


def _make_user_path(
    config: ExperimentConfig, streams: RandomStreams, user_id: int = 0
) -> PiecewisePath:
    """The paper's user motion: random-direction from the region corner.

    User 0 starts at the corner exactly as in the paper; later users start
    at an independent uniform position inside the margin-inset region (a
    fleet piling onto one corner would measure MAC contention at a single
    cell, not the service).
    """
    region = config.network.region
    rng = streams.stream(_user_stream("mobility", user_id))
    if user_id == 0:
        start = Vec2(
            region.x_min + config.mobility.margin_m,
            region.y_min + config.mobility.margin_m,
        )
    else:
        margin = config.mobility.margin_m
        start = Vec2(
            float(rng.uniform(region.x_min + margin, region.x_max - margin)),
            float(rng.uniform(region.y_min + margin, region.y_max - margin)),
        )
    return random_direction_path(
        region=region,
        duration_s=config.duration_s,
        config=config.mobility,
        rng=rng,
        start=start,
    )


def _make_profile_provider(
    config: ExperimentConfig,
    true_path: PiecewisePath,
    streams: RandomStreams,
    user_id: int = 0,
) -> ProfileProvider:
    if config.profile_mode == PROFILE_FULL:
        return FullKnowledgeProvider(true_path, config.duration_s)
    if config.profile_mode == PROFILE_PLANNER:
        return PlannerProfileProvider(
            true_path, config.duration_s, advance_time_s=config.advance_time_s
        )
    if config.profile_mode == PROFILE_PREDICTOR:
        return HistoryPredictorProvider(
            true_path,
            config.duration_s,
            gps=GpsModel(max_error_m=config.gps_error_m),
            rng=streams.stream(_user_stream("gps", user_id)),
            sampling_period_s=config.sampling_period_s,
        )
    raise ValueError(f"unhandled profile mode {config.profile_mode!r}")
