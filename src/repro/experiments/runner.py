"""Experiment runner: build a world from a config, run it, score it.

``run_experiment`` is the one entry point every figure module and example
uses: it assembles the kernel, network, CCP backbone, routing/flooding,
the requested service variant and the user's mobility + profile pipeline,
runs the session, and returns a :class:`RunResult` bundling all metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..core.baseline import NoPrefetchProtocol
from ..core.gateway import BaseGateway, MobiQueryGateway, NoPrefetchGateway
from ..core.metrics import (
    ContentionTracker,
    PowerReport,
    SessionMetrics,
    StorageTracker,
    build_session_metrics,
    measure_power,
)
from ..core.query import QuerySpec
from ..core.service import MobiQueryConfig, MobiQueryProtocol
from ..geometry.vec import Vec2
from ..mobility.gps import GpsModel
from ..mobility.models import random_direction_path
from ..mobility.path import PiecewisePath
from ..mobility.planner import FullKnowledgeProvider, PlannerProfileProvider
from ..mobility.predictor import HistoryPredictorProvider
from ..mobility.profile import ProfileProvider
from ..net.flooding import FloodManager
from ..net.network import build_network
from ..net.node import MobileEndpoint
from ..net.routing import GeoRouter
from ..power.ccp import CcpProtocol
from ..sim.kernel import Simulator
from ..sim.rng import RandomStreams
from ..sim.trace import Tracer
from .config import (
    MODE_GREEDY,
    MODE_IDLE,
    MODE_JIT,
    MODE_NP,
    PROFILE_FULL,
    PROFILE_PLANNER,
    PROFILE_PREDICTOR,
    ExperimentConfig,
)

#: node id assigned to the user's proxy endpoint
PROXY_NODE_ID = 100_000

#: extra simulated time after the last deadline (late stragglers, GC)
RUN_TAIL_S = 0.5


@dataclass
class RunResult:
    """Everything measured in one run."""

    config: ExperimentConfig
    metrics: Optional[SessionMetrics]
    power: PowerReport
    backbone_size: int
    max_prefetch_length: int
    max_tree_states: int
    interference_length: int
    frames_sent: int
    frames_collided: int
    events_executed: int

    @property
    def success_ratio(self) -> float:
        """Headline number (0.0 for idle runs)."""
        return self.metrics.success_ratio() if self.metrics else 0.0


def run_experiment(config: ExperimentConfig) -> RunResult:
    """Run one full session described by ``config``."""
    sim = Simulator()
    streams = RandomStreams(config.seed)
    tracer = Tracer()
    # De-align the shared beacon schedule from the query start: real users
    # issue queries at arbitrary phases of the PSM cycle.
    psm_offset = float(
        streams.stream("psm").uniform(0.0, config.network.sleep_period_s)
    )
    network_config = replace(config.network, psm_offset_s=psm_offset)
    network = build_network(sim, network_config, streams, tracer)
    CcpProtocol().apply(network, streams)
    geo = GeoRouter(network)
    flood = FloodManager(network)
    true_path = _make_user_path(config, streams)
    proxy = MobileEndpoint(
        node_id=PROXY_NODE_ID,
        sim=sim,
        channel=network.channel,
        rng=streams.stream("proxy"),
        position_fn=true_path.position_at,
        mac_config=config.network.mac,
        tracer=tracer,
    )
    network.channel.register_mobile(proxy)
    spec = QuerySpec(
        attribute=config.query.attribute,
        aggregation=config.query.aggregation,
        radius_m=config.query.radius_m,
        period_s=config.query.period_s,
        freshness_s=config.query.freshness_s,
        lifetime_s=config.duration_s,
    )
    gateway: Optional[BaseGateway] = None
    storage: Optional[StorageTracker] = None
    contention: Optional[ContentionTracker] = None
    if config.mode in (MODE_JIT, MODE_GREEDY):
        protocol = MobiQueryProtocol(
            network,
            geo,
            MobiQueryConfig(
                prefetch_policy=config.mode,
                pickup_radius_m=config.pickup_radius_m,
                parent_upgrade=config.parent_upgrade,
                redeliver_setups=config.redeliver_setups,
            ),
            tracer,
        )
        provider = _make_profile_provider(config, true_path, streams)
        storage = StorageTracker(tracer, spec)
        contention = ContentionTracker(
            tracer,
            sleep_period_s=config.network.sleep_period_s,
            active_window_s=config.network.active_window_s,
            query_radius_m=config.query.radius_m,
            comm_range_m=config.network.comm_range_m,
            psm_offset_s=psm_offset,
        )
        mq_gateway = MobiQueryGateway(proxy, network, spec, protocol, provider, tracer)
        mq_gateway.start()
        gateway = mq_gateway
    elif config.mode == MODE_NP:
        np_protocol = NoPrefetchProtocol(network, geo, flood, tracer=tracer)
        np_gateway = NoPrefetchGateway(proxy, network, spec, np_protocol, flood, tracer)
        np_gateway.start()
        gateway = np_gateway
    elif config.mode != MODE_IDLE:  # pragma: no cover - config validates
        raise ValueError(f"unhandled mode {config.mode!r}")

    sim.run(until=config.duration_s + RUN_TAIL_S)

    metrics = None
    if gateway is not None:
        metrics = build_session_metrics(
            gateway,
            network,
            spec,
            true_path,
            config.duration_s,
            fidelity_threshold=config.fidelity_threshold,
        )
    return RunResult(
        config=config,
        metrics=metrics,
        power=measure_power(network),
        backbone_size=len(network.active_nodes),
        max_prefetch_length=storage.max_prefetch_length if storage else 0,
        max_tree_states=storage.max_tree_states if storage else 0,
        interference_length=contention.interference_length() if contention else 0,
        frames_sent=network.channel.frames_sent,
        frames_collided=network.channel.frames_collided,
        events_executed=sim.events_executed,
    )


def run_replications(config: ExperimentConfig, seeds: List[int]) -> List[RunResult]:
    """Run the same config across several topologies/motions (paper: 3–5)."""
    return [run_experiment(config.with_seed(seed)) for seed in seeds]


def mean_success_ratio(results: List[RunResult]) -> float:
    """Average success ratio over replications."""
    if not results:
        return 0.0
    return sum(r.success_ratio for r in results) / len(results)


# ----------------------------------------------------------------------
# Pieces
# ----------------------------------------------------------------------
def _make_user_path(
    config: ExperimentConfig, streams: RandomStreams
) -> PiecewisePath:
    """The paper's user motion: random-direction from the region corner."""
    region = config.network.region
    start = Vec2(
        region.x_min + config.mobility.margin_m,
        region.y_min + config.mobility.margin_m,
    )
    return random_direction_path(
        region=region,
        duration_s=config.duration_s,
        config=config.mobility,
        rng=streams.stream("mobility"),
        start=start,
    )


def _make_profile_provider(
    config: ExperimentConfig,
    true_path: PiecewisePath,
    streams: RandomStreams,
) -> ProfileProvider:
    if config.profile_mode == PROFILE_FULL:
        return FullKnowledgeProvider(true_path, config.duration_s)
    if config.profile_mode == PROFILE_PLANNER:
        return PlannerProfileProvider(
            true_path, config.duration_s, advance_time_s=config.advance_time_s
        )
    if config.profile_mode == PROFILE_PREDICTOR:
        return HistoryPredictorProvider(
            true_path,
            config.duration_s,
            gps=GpsModel(max_error_m=config.gps_error_m),
            rng=streams.stream("gps"),
            sampling_period_s=config.sampling_period_s,
        )
    raise ValueError(f"unhandled profile mode {config.profile_mode!r}")
