"""Experiment runner: the legacy harness as a thin adapter over the API.

``run_experiment`` is the entry point every figure module uses.  Since the
service façade (:mod:`repro.api`) landed it no longer assembles the world
itself: it builds a :class:`~repro.api.service.MobiQueryService` from the
:class:`ExperimentConfig`, submits one :class:`~repro.api.requests.
QueryRequest` per configured user (all sharing the config's ``query``
parameters — the historical homogeneous workload), runs to the horizon and
repackages the scores as a :class:`RunResult`.

The adapter is deliberately bit-identical to the pre-API runner: the same
RNG streams are consumed in the same per-user order and the same kernel
events are scheduled in the same sequence, so the golden determinism
tests (`tests/test_golden_determinism.py`) and the pinned perf
fingerprints hold across the redesign.  New code that wants
heterogeneous per-user queries, admission control, streaming results or
cancellation should use :class:`~repro.api.service.MobiQueryService`
directly — this module remains for the paper-figure reproduction paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..api.requests import QueryRequest
from ..api.service import (
    RUN_TAIL_S,
    MobiQueryService,
    make_profile_provider,
    make_user_path,
    user_stream,
)
from ..core.metrics import PowerReport, SessionMetrics, measure_power
from ..workload.arrivals import arrival_times
from ..workload.engine import WorkloadResult
from ..workload.session import PROXY_ID_BASE, SessionResult
from ..sim.rng import RandomStreams
from .config import MODE_IDLE, ExperimentConfig

#: node id assigned to user 0's proxy endpoint (user ``u`` gets base + u)
PROXY_NODE_ID = PROXY_ID_BASE

# Backwards-compatible aliases: these helpers lived here before the API
# package became the primary surface.
_user_stream = user_stream
_make_user_path = make_user_path
_make_profile_provider = make_profile_provider

__all__ = [
    "PROXY_NODE_ID",
    "RUN_TAIL_S",
    "RunResult",
    "run_experiment",
    "run_replications",
    "run_replications_parallel",
    "mean_success_ratio",
]


@dataclass
class RunResult:
    """Everything measured in one run."""

    config: ExperimentConfig
    metrics: Optional[SessionMetrics]
    power: PowerReport
    backbone_size: int
    max_prefetch_length: int
    max_tree_states: int
    interference_length: int
    frames_sent: int
    frames_collided: int
    events_executed: int
    #: frames handed to a receiver MAC (channel-level delivery counter)
    frames_delivered: int = 0
    #: per-user scored sessions (one entry for single-user runs, empty for idle)
    sessions: List[SessionResult] = field(default_factory=list)

    @property
    def success_ratio(self) -> float:
        """Headline number (0.0 for idle runs).

        For multi-user runs this is user 0's ratio — the baseline-aligned
        session; use the ``user_*`` accessors for fleet-wide numbers.
        """
        return self.metrics.success_ratio() if self.metrics else 0.0

    @property
    def workload(self) -> WorkloadResult:
        """The sessions viewed as a workload result (fleet aggregates)."""
        return WorkloadResult(sessions=self.sessions)

    @property
    def user_success_ratios(self) -> List[float]:
        """Per-user success ratios in user order."""
        return self.workload.success_ratios()

    @property
    def mean_user_success_ratio(self) -> float:
        return self.workload.mean_success_ratio()

    @property
    def min_user_success_ratio(self) -> float:
        return self.workload.min_success_ratio()


def _legacy_requests(config: ExperimentConfig, streams: RandomStreams) -> List[QueryRequest]:
    """One request per configured user: the homogeneous experiment workload.

    Every user shares ``config.query``; start times come from the
    configured arrival process, validated so each session keeps at least
    one serviceable period (the historical error message).
    """
    starts = arrival_times(
        config.num_users,
        process=config.arrival_process,
        spacing_s=config.arrival_spacing_s,
        rng=streams.stream("arrivals"),
    )
    latest = config.duration_s - config.query.period_s
    for user_id, start in enumerate(starts):
        if start > latest:
            raise ValueError(
                f"user {user_id} arrives at {start:.1f}s but the run ends at "
                f"{config.duration_s:.1f}s — no serviceable period left; "
                f"shorten the arrival spacing or lengthen the run"
            )
    return [
        QueryRequest(
            attribute=config.query.attribute,
            aggregation=config.query.aggregation,
            radius_m=config.query.radius_m,
            period_s=config.query.period_s,
            freshness_s=config.query.freshness_s,
            start_s=starts[user_id],
            user_id=user_id,
            accuracy=config.query.accuracy,
        )
        for user_id in range(config.num_users)
    ]


def run_experiment(config: ExperimentConfig, faults=None) -> RunResult:
    """Run one full session (or N concurrent ones) described by ``config``.

    ``faults`` optionally injects a :class:`~repro.faults.plan.FaultPlan`;
    ``None`` (or an empty plan) is bit-identical to the pre-fault runner.
    """
    service = MobiQueryService(config, faults=faults)
    sessions: List[SessionResult] = []
    metrics = None
    if config.mode != MODE_IDLE:
        for request in _legacy_requests(config, service.streams):
            service.submit(request).require_admitted()
        result = service.finalize()
        sessions = result.sessions
        if sessions:
            metrics = sessions[0].metrics
    else:
        service.run()
    network = service.network
    storage = service.storage
    contention = service.contention
    return RunResult(
        config=config,
        metrics=metrics,
        power=measure_power(network),
        backbone_size=len(network.active_nodes),
        max_prefetch_length=storage.max_prefetch_length if storage else 0,
        max_tree_states=storage.max_tree_states if storage else 0,
        interference_length=contention.interference_length() if contention else 0,
        frames_sent=network.channel.frames_sent,
        frames_collided=network.channel.frames_collided,
        events_executed=service.sim.events_executed,
        frames_delivered=network.channel.frames_delivered,
        sessions=sessions,
    )


def run_replications(config: ExperimentConfig, seeds: List[int]) -> List[RunResult]:
    """Run the same config across several topologies/motions (paper: 3–5)."""
    return [run_experiment(config.with_seed(seed)) for seed in seeds]


def run_replications_parallel(
    config: ExperimentConfig,
    seeds: List[int],
    max_workers: Optional[int] = None,
) -> List[RunResult]:
    """``run_replications`` across OS processes, one seed per task.

    Results are returned in seed order and are identical (per seed) to the
    serial path: each worker runs ``run_experiment`` on its own kernel and
    RNG streams, so parallelism cannot perturb a replication.  The pool
    plumbing is shared with the cluster's worker transport
    (:func:`repro.cluster.transport.parallel_map`); it falls back to the
    serial path for a single seed, for ``max_workers=1``, and when process
    pools are unavailable (restricted sandboxes).
    """
    if len(seeds) <= 1:
        return run_replications(config, seeds)
    import os

    from ..cluster.transport import parallel_map

    workers = max_workers or min(len(seeds), os.cpu_count() or 1)
    configs = [config.with_seed(seed) for seed in seeds]
    results = parallel_map(run_experiment, configs, max_workers=workers)
    if results is None:
        # One CPU, caller-limited, or no process support (seccomp'd CI,
        # restricted container, killed workers): degrade gracefully.
        return run_replications(config, seeds)
    return results


def mean_success_ratio(results: List[RunResult]) -> float:
    """Average success ratio over replications."""
    if not results:
        return 0.0
    return sum(r.success_ratio for r in results) / len(results)
