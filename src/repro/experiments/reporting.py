"""Plain-text table rendering for experiment results.

Benchmarks print the same rows/series the paper's figures report, so a
terminal run of ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction artifact.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render an aligned ASCII table with a title line."""
    materialized: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, pairs: Iterable[tuple], width: int = 60) -> str:
    """Render a (k, value-in-[0,1]) series as an ASCII sparkline block."""
    lines = [title, ""]
    for k, value in pairs:
        bar = "#" * int(round(max(0.0, min(1.0, value)) * width))
        lines.append(f"{k:>4}  {value:5.2f} |{bar}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
