"""ASCII visualization of the sensor field and query sessions.

Terminal-friendly rendering used by the CLI and handy in notebooks/debug
sessions: the deployment region becomes a character grid showing sleeping
nodes, backbone nodes, the user's path and the current query area.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..geometry.areas import QueryArea
from ..geometry.vec import Vec2
from ..mobility.path import PiecewisePath
from ..net.network import Network


def render_field(
    network: Network,
    width: int = 72,
    path: Optional[PiecewisePath] = None,
    path_samples: int = 120,
    area: Optional[QueryArea] = None,
    user: Optional[Vec2] = None,
) -> str:
    """Render the deployment as an ASCII map.

    Legend: ``O`` backbone node, ``.`` sleeping node, ``*`` user path,
    ``U`` current user position, ``:`` query-area interior.
    """
    region = network.config.region
    # Terminal cells are ~2x taller than wide; halve the row count.
    height = max(8, int(width * region.height / region.width / 2.0))
    cell_w = region.width / width
    cell_h = region.height / height
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def to_cell(p: Vec2) -> Tuple[int, int]:
        col = min(width - 1, max(0, int((p.x - region.x_min) / cell_w)))
        row = min(height - 1, max(0, int((p.y - region.y_min) / cell_h)))
        return height - 1 - row, col  # rows grow downward on screen

    if area is not None:
        for row in range(height):
            for col in range(width):
                center = Vec2(
                    region.x_min + (col + 0.5) * cell_w,
                    region.y_min + (height - 1 - row + 0.5) * cell_h,
                )
                if area.contains(center):
                    grid[row][col] = ":"

    if path is not None and path.end_time > path.start_time:
        span = path.end_time - path.start_time
        for i in range(path_samples + 1):
            t = path.start_time + span * i / path_samples
            r, c = to_cell(path.position_at(t))
            grid[r][c] = "*"

    for node in network.nodes:
        r, c = to_cell(node.position)
        grid[r][c] = "O" if node.is_active else "."

    if user is not None:
        r, c = to_cell(user)
        grid[r][c] = "U"

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = (
        "legend: O backbone   . sleeper   * user path   U user   : query area"
    )
    return f"{border}\n{body}\n{border}\n{legend}"


def render_fidelity_strip(
    series: Sequence[Tuple[int, float]], width: int = 60
) -> str:
    """One-character-per-period fidelity strip (#=1.0 .. ' '=0).

    Compresses a whole session into a couple of lines — the Figure 5 story
    at a glance.
    """
    ramp = " .:-=+*#"
    chars = []
    for _, fidelity in series:
        index = int(round(max(0.0, min(1.0, fidelity)) * (len(ramp) - 1)))
        chars.append(ramp[index])
    lines = []
    for start in range(0, len(chars), width):
        chunk = "".join(chars[start : start + width])
        lines.append(f"k={start + 1:>4} {chunk}")
    return "\n".join(lines)
