"""Per-figure experiment sweeps (paper Section 6 + Section 5 tables).

Each ``run_figN`` function executes the sweep behind one figure of the
paper and returns structured rows; ``scale`` selects between:

* ``"paper"`` — the full parameter grid and durations of the paper
  (Section 6.1/6.2/6.3); slow, meant for regenerating EXPERIMENTS.md.
* ``"quick"`` — a reduced grid with shorter sessions that preserves every
  trend; the default for CI / ``pytest benchmarks/``.

Set the environment variable ``REPRO_BENCH_SCALE=paper`` to run benchmarks
at paper scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.analysis import (
    AnalysisParams,
    interference_length_greedy,
    interference_length_jit,
    mps_to_paper_mph,
    prefetch_length_greedy,
    prefetch_length_jit,
    prefetch_speed_mps,
    contention_crossover_speed,
    warmup_interval_s,
)
from .config import (
    MODE_GREEDY,
    MODE_IDLE,
    MODE_JIT,
    MODE_NP,
    ExperimentConfig,
    paper_section62_config,
    paper_section63_config,
)
from .runner import mean_success_ratio, run_experiment, run_replications_parallel

SCALE_PAPER = "paper"
SCALE_QUICK = "quick"


def bench_scale() -> str:
    """Scale selected via ``REPRO_BENCH_SCALE`` (defaults to quick)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", SCALE_QUICK).lower()
    if scale not in (SCALE_PAPER, SCALE_QUICK):
        raise ValueError(f"REPRO_BENCH_SCALE must be paper|quick, got {scale!r}")
    return scale


# ----------------------------------------------------------------------
# Figure 4 — success ratio: MQ-JIT vs MQ-GP vs NP
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4Row:
    """One bar of Figure 4."""

    mode: str
    sleep_period_s: float
    speed_range: Tuple[float, float]
    success_ratio: float
    mean_fidelity: float


def fig4_grid(scale: str) -> Tuple[List[float], List[Tuple[float, float]], List[int], float]:
    if scale == SCALE_PAPER:
        return (
            [3.0, 6.0, 9.0, 12.0, 15.0],
            [(3.0, 5.0), (6.0, 10.0), (16.0, 20.0)],
            [1, 2, 3],
            400.0,
        )
    return [3.0, 9.0, 15.0], [(3.0, 5.0)], [1], 150.0


def run_fig4(scale: Optional[str] = None) -> List[Fig4Row]:
    """Success ratio of MQ-JIT / MQ-GP / NP across sleep periods x speeds."""
    scale = scale or bench_scale()
    sleep_periods, speeds, seeds, duration = fig4_grid(scale)
    rows: List[Fig4Row] = []
    for mode in (MODE_JIT, MODE_GREEDY, MODE_NP):
        for sleep_period in sleep_periods:
            for speed_range in speeds:
                results = run_replications_parallel(
                    paper_section62_config(
                        mode=mode,
                        sleep_period_s=sleep_period,
                        speed_range=speed_range,
                        seed=seeds[0],
                        duration_s=duration,
                    ),
                    seeds,
                )
                rows.append(
                    Fig4Row(
                        mode=mode,
                        sleep_period_s=sleep_period,
                        speed_range=speed_range,
                        success_ratio=mean_success_ratio(results),
                        mean_fidelity=sum(
                            r.metrics.mean_fidelity() for r in results
                        )
                        / len(results),
                    )
                )
    return rows


# ----------------------------------------------------------------------
# Figure 5 — per-period fidelity trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Trace:
    mode: str
    series: List[Tuple[int, float]]
    warmup_periods: int


def run_fig5(scale: Optional[str] = None) -> List[Fig5Trace]:
    """Dynamic behaviour: fidelity per pickup point, Tsleep=15 s, 3-5 m/s."""
    scale = scale or bench_scale()
    duration = 400.0 if scale == SCALE_PAPER else 200.0
    traces = []
    for mode in (MODE_JIT, MODE_GREEDY):
        result = run_experiment(
            paper_section62_config(
                mode=mode, sleep_period_s=15.0, speed_range=(3.0, 5.0),
                seed=2, duration_s=duration,
            )
        )
        assert result.metrics is not None
        traces.append(
            Fig5Trace(
                mode=mode,
                series=result.metrics.fidelity_series(),
                warmup_periods=result.metrics.warmup_periods_observed(),
            )
        )
    return traces


# ----------------------------------------------------------------------
# Figure 6 — success ratio vs advance time
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Row:
    sleep_period_s: float
    advance_time_s: float
    success_ratio: float


def run_fig6(scale: Optional[str] = None) -> List[Fig6Row]:
    """Success ratio of MQ-JIT vs motion-profile advance time Ta."""
    scale = scale or bench_scale()
    if scale == SCALE_PAPER:
        sleep_periods = [3.0, 9.0, 15.0]
        advance_times = [-6.0, 0.0, 6.0, 12.0, 18.0]
        seeds = [1, 2, 3, 4, 5]
        duration = 500.0
    else:
        sleep_periods = [9.0]
        advance_times = [-6.0, 0.0, 12.0]
        seeds = [2]
        duration = 210.0
    rows = []
    for sleep_period in sleep_periods:
        for ta in advance_times:
            results = run_replications_parallel(
                paper_section63_config(
                    sleep_period_s=sleep_period,
                    change_interval_s=70.0,
                    advance_time_s=ta,
                    seed=seeds[0],
                    duration_s=duration,
                ),
                seeds,
            )
            rows.append(
                Fig6Row(
                    sleep_period_s=sleep_period,
                    advance_time_s=ta,
                    success_ratio=mean_success_ratio(results),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Figure 7 — success ratio vs motion-change interval (+ location error)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig7Row:
    curve: str
    change_interval_s: float
    success_ratio: float


def run_fig7(scale: Optional[str] = None) -> List[Fig7Row]:
    """Motion changes and GPS errors (sleep period 9 s)."""
    scale = scale or bench_scale()
    if scale == SCALE_PAPER:
        intervals = [42.0, 52.0, 70.0, 105.0, 210.0]
        curves = [
            ("Ta=+6s", dict(advance_time_s=6.0)),
            ("Ta=0s", dict(advance_time_s=0.0)),
            ("Ta=-8s", dict(advance_time_s=-8.0)),
            ("Ta=-8s,err=5m", dict(gps_error_m=5.0)),
            ("Ta=-8s,err=10m", dict(gps_error_m=10.0)),
        ]
        seeds = [1, 2, 3, 4, 5]
        duration = 500.0
    else:
        intervals = [42.0, 70.0]
        curves = [
            ("Ta=0s", dict(advance_time_s=0.0)),
            ("Ta=-8s,err=10m", dict(gps_error_m=10.0)),
        ]
        seeds = [2]
        duration = 210.0
    rows = []
    for curve_name, kwargs in curves:
        for interval in intervals:
            results = run_replications_parallel(
                paper_section63_config(
                    sleep_period_s=9.0,
                    change_interval_s=interval,
                    seed=seeds[0],
                    duration_s=duration,
                    **kwargs,
                ),
                seeds,
            )
            rows.append(
                Fig7Row(
                    curve=curve_name,
                    change_interval_s=interval,
                    success_ratio=mean_success_ratio(results),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Figure 8 — power consumption per sleeping node
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig8Row:
    variant: str
    sleep_period_s: float
    sleeper_power_w: float


def run_fig8(scale: Optional[str] = None) -> List[Fig8Row]:
    """Average sleeping-node power: CCP-only vs MQ-JIT (Ta=-3 / Ta=+9)."""
    scale = scale or bench_scale()
    if scale == SCALE_PAPER:
        sleep_periods = [3.0, 9.0, 15.0]
        seeds = [1, 2, 3]
        duration = 400.0
    else:
        sleep_periods = [3.0, 15.0]
        seeds = [1]
        duration = 150.0
    variants = [
        ("CCP (no query)", None),
        ("MQ-JIT Ta=-3s", -3.0),
        ("MQ-JIT Ta=+9s", 9.0),
    ]
    rows = []
    for variant_name, ta in variants:
        for sleep_period in sleep_periods:
            powers = []
            for seed in seeds:
                if ta is None:
                    config = ExperimentConfig(
                        mode=MODE_IDLE,
                        seed=seed,
                        duration_s=duration,
                        network=ExperimentConfig().network.with_sleep_period(sleep_period),
                    )
                else:
                    config = paper_section63_config(
                        sleep_period_s=sleep_period,
                        change_interval_s=70.0,
                        advance_time_s=ta,
                        seed=seed,
                        duration_s=duration,
                    )
                powers.append(run_experiment(config).power.mean_sleeper_power_w)
            rows.append(
                Fig8Row(
                    variant=variant_name,
                    sleep_period_s=sleep_period,
                    sleeper_power_w=sum(powers) / len(powers),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Section 5.2 / 5.4 worked examples (analysis tables A and B)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StorageTableRow:
    quantity: str
    paper_value: float
    our_value: float


def storage_analysis_table() -> List[StorageTableRow]:
    """Tab A: the Section 5.2 storage-cost example, paper vs computed."""
    v_prefetch = prefetch_speed_mps(100.0, 5, 60, 5000.0)
    params = AnalysisParams(
        t_period_s=10.0, t_fresh_s=5.0, t_sleep_s=15.0,
        v_user_mps=4.0, v_prefetch_mps=v_prefetch,
    )
    return [
        StorageTableRow("vprfh (mph)", 469.0, round(mps_to_paper_mph(v_prefetch), 1)),
        StorageTableRow("PL_jit (trees)", 4, prefetch_length_jit(params)),
        StorageTableRow("PL_gp (trees, Td=600s)", 58, prefetch_length_greedy(600.0, params)),
        StorageTableRow(
            "storage ratio gp/jit", 14.5,
            round(prefetch_length_greedy(600.0, params) / prefetch_length_jit(params), 2),
        ),
    ]


def measured_storage(scale: Optional[str] = None) -> Dict[str, int]:
    """Simulated prefetch lengths under the Section 6.1 settings."""
    scale = scale or bench_scale()
    duration = 400.0 if scale == SCALE_PAPER else 120.0
    out = {}
    for mode in (MODE_JIT, MODE_GREEDY):
        result = run_experiment(
            paper_section62_config(mode=mode, sleep_period_s=9.0, seed=1, duration_s=duration)
        )
        out[mode] = result.max_prefetch_length
    return out


def contention_analysis_table() -> List[StorageTableRow]:
    """Tab B: the Section 5.4 contention example, paper vs computed."""
    v_prefetch = prefetch_speed_mps(100.0, 5, 60, 5000.0)
    params = AnalysisParams(
        t_period_s=5.0, t_fresh_s=3.0, t_sleep_s=9.0,
        v_user_mps=4.0, v_prefetch_mps=v_prefetch,
    )
    v_star = contention_crossover_speed(150.0, 50.0, 9.0, 3.0)
    return [
        StorageTableRow("v* (mph)", 131.0, round(mps_to_paper_mph(v_star), 1)),
        StorageTableRow(
            "interfering trees (JIT)", 4,
            interference_length_jit(150.0, 50.0, params),
        ),
        StorageTableRow(
            "interfering trees (GP)", 35,
            interference_length_greedy(150.0, 50.0, params),
        ),
    ]


def measured_contention(scale: Optional[str] = None) -> Dict[str, int]:
    """Simulated interference lengths under the Section 6.1 settings."""
    scale = scale or bench_scale()
    duration = 400.0 if scale == SCALE_PAPER else 120.0
    out = {}
    for mode in (MODE_JIT, MODE_GREEDY):
        result = run_experiment(
            paper_section62_config(mode=mode, sleep_period_s=9.0, seed=1, duration_s=duration)
        )
        out[mode] = result.interference_length
    return out


# ----------------------------------------------------------------------
# Section 5.3 warmup bound (analysis table C)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WarmupRow:
    advance_time_s: float
    bound_s: float
    measured_s: float


def run_warmup_comparison(scale: Optional[str] = None) -> List[WarmupRow]:
    """Eq. (16) bound vs simulated warmup after the first motion change."""
    scale = scale or bench_scale()
    duration = 300.0 if scale == SCALE_PAPER else 160.0
    rows = []
    for ta in (-8.0, 0.0, 12.0):
        config = paper_section63_config(
            sleep_period_s=9.0,
            change_interval_s=70.0,
            advance_time_s=ta,
            seed=2,
            duration_s=duration,
        )
        result = run_experiment(config)
        assert result.metrics is not None
        # measured: below-bar periods in the window after the first change
        change_period = int(70.0 / config.query.period_s)
        post = [
            r
            for r in result.metrics.records
            if change_period < r.k <= change_period + 20
        ]
        failures = sum(1 for r in post if r.fidelity < 0.95)
        params = AnalysisParams(
            t_period_s=config.query.period_s,
            t_fresh_s=config.query.freshness_s,
            t_sleep_s=9.0,
            v_user_mps=4.0,
            v_prefetch_mps=200.0,
        )
        rows.append(
            WarmupRow(
                advance_time_s=ta,
                bound_s=warmup_interval_s(ta, params),
                measured_s=failures * config.query.period_s,
            )
        )
    return rows
