"""Performance harness: canonical hot-path scenarios, timed and gated.

The repo's north star says the simulator should run "as fast as the
hardware allows"; this module makes that a tracked artifact instead of a
hope.  Two canonical scenarios are timed end to end:

* ``fig4_jit`` — the paper's Section 6.2 single-user setting (MQ-JIT,
  Tsleep=9 s, 3-5 m/s) at quick-scale duration: the figure-benchmark hot
  path.
* ``scale_16users`` — the 16-user point of the multi-user scaling
  benchmark (staggered arrivals, fleet-sized query areas): the multi-user
  hot path that bounds how far the concurrency axis can be pushed.
* ``hetero_mix_8users`` — the ``heterogeneous-mix`` scenario through the
  service façade (8 users, mixed periods/radii/aggregations): the
  per-request API code path, so a service-layer regression cannot hide
  behind the legacy adapter.

``run_perf_suite`` measures wall-clock and events/second (min over
``repeats`` runs — the minimum is the most noise-robust statistic on a
shared machine) and pins each scenario's *result fingerprint* (event and
frame counts), so a perf run doubles as a whole-system determinism check:
an optimization that changes what the simulation computes fails here
before any statistics drift quietly.

``repro bench`` writes the report to ``BENCH_perf.json`` (both the current
numbers and the recorded pre-PR baseline, so the speedup trajectory is in
the artifact itself) and, given a reference report from the same machine,
fails loudly on regressions beyond a threshold.
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..workload.arrivals import ARRIVAL_STAGGERED
from .config import MODE_JIT, ExperimentConfig, QueryParams, paper_section62_config
from .figures import SCALE_PAPER, SCALE_QUICK, bench_scale
from .runner import run_experiment

#: schema version of BENCH_perf.json (bump on incompatible changes)
PERF_SCHEMA_VERSION = 1

#: events/sec may regress by at most this fraction before ``repro bench
#: --baseline`` (and the perf-smoke pytest with ``REPRO_PERF_BASELINE``)
#: fails loudly.
REGRESSION_THRESHOLD = 0.20

#: Pre-PR hot-path baseline (quick scale): each scenario's wall-clock and
#: events/sec as committed in ``BENCH_perf.json`` immediately before the
#: PR that last restructured its hot path, measured on the dev container
#: (1 vCPU, CPython 3.11).  ``fig4_jit``/``scale_16users`` date from the
#: PR 2 inlining overhaul (min over 6 alternated runs of the previous
#: commit); ``hetero_mix_8users`` had no recorded baseline until the PR 4
#: batching overhaul pinned its then-committed numbers, so all three are
#: now gated identically.  Kept in the report so the speedup trajectory
#: travels with the artifact.  Wall-clock only compares within one
#: machine; note the PR 4 event coalescing makes pre-PR-4 *events/sec*
#: incomparable with current reports (far fewer, heavier events) —
#: ``speedup_vs_pre_pr`` is wall-clock based for exactly that reason.
PRE_PR_BASELINE: Dict[str, Dict[str, float]] = {
    "fig4_jit": {"wall_s": 2.869, "events_per_sec": 83699.0},
    "scale_16users": {"wall_s": 6.529, "events_per_sec": 71288.0},
    "hetero_mix_8users": {"wall_s": 1.3683, "events_per_sec": 174473.1},
}

#: Quick-scale **result fingerprints**: what the simulation computes,
#: independent of machine speed and of how work is packed into kernel
#: events.  These are the correctness gate — they have been bit-identical
#: through the PR 2 inlining pass and the PR 4 batching overhaul (the
#: golden determinism tests assert the same property at finer grain) and
#: only a deliberate *model* change may re-pin them.
RESULT_FINGERPRINTS: Dict[str, Dict[str, object]] = {
    "fig4_jit": {
        "frames_sent": 11165,
        "frames_collided": 21433,
        "mean_success": 0.973333,
    },
    "scale_16users": {
        "frames_sent": 20106,
        "frames_collided": 18356,
        "mean_success": 0.912362,
    },
    # captured when the service façade landed (the scenario runs through
    # MobiQueryService.submit, not the legacy adapter)
    "hetero_mix_8users": {
        "frames_sent": 13482,
        "frames_collided": 11614,
        "mean_success": 0.929925,
    },
}

#: Quick-scale **event-count fingerprints**: how many kernel events a run
#: executes.  Unlike the result fingerprints these are an implementation
#: property — an optimization that batches work into fewer events
#: legitimately changes them and must re-pin in the same commit.  Comment
#: trail: pinned at 240132/465442/238732 through PR 2-3 (per-listener
#: receptions, per-node PSM boundary events); re-pinned in PR 4 when the
#: batched reception pipeline (whole receiver cohort resolved by one
#: end-of-airtime event, MAC broadcast completion folded into it) and the
#: PSM wake-wheel (one event per distinct window boundary, overrides no
#: longer chain duplicate per-node boundary events) removed ~83% of
#: kernel events with bit-identical results.
EVENT_FINGERPRINTS: Dict[str, int] = {
    "fig4_jit": 41408,
    "scale_16users": 74773,
    "hetero_mix_8users": 50203,
}

#: The cluster scale-out scenario (``make bench-cluster``): 64 users on the
#: ``cluster_scale_64users`` registry spec, timed twice — once on one world
#: (``shards=1``, explicitly through ``ClusterService`` so the bench also
#: proves the single-shard identity) and once sharded (``shards=4,
#: workers=4``; workers engage on multi-core machines, fall back to the
#: in-process lockstep path on 1-CPU boxes).
CLUSTER_SCENARIO = "cluster_scale_64users"

#: Quick-scale result fingerprints for the cluster bench.  ``shards1`` was
#: captured from **MobiQueryService** (the golden identity target): the
#: ``ClusterService(shards=1)`` measurement must reproduce it bit for bit.
#: ``shards4`` pins the sharded run's own determinism (4 independent
#: worlds, seeds 1..4) — the two rows are different physics (different
#: topologies and fleet densities), never compared to each other.
CLUSTER_RESULT_FINGERPRINTS: Dict[str, Dict[str, object]] = {
    # Captured from a MobiQueryService run of the same spec (verified equal
    # to the ClusterService(shards=1) measurement in the same session).
    "shards1": {
        "frames_sent": 24801,
        "frames_delivered": 782952,
        "mean_success": 0.766858,
    },
    "shards4": {
        "frames_sent": 24308,
        "frames_delivered": 639339,
        "mean_success": 0.788292,
    },
}



@dataclass(frozen=True)
class PerfSample:
    """One timed scenario: speed plus its result fingerprint."""

    scenario: str
    wall_s: float
    events_executed: int
    events_per_sec: float
    frames_sent: int
    frames_collided: int
    mean_success: float


def perf_scenarios(scale: Optional[str] = None) -> Dict[str, object]:
    """The canonical hot-path scenarios for ``scale`` (quick|paper).

    Values are either an :class:`ExperimentConfig` (run through the legacy
    adapter) or a :class:`~repro.api.scenarios.ScenarioSpec` (run through
    the service façade); :func:`measure_scenario` dispatches on type.
    """
    from ..api.scenarios import get_scenario

    scale = scale or bench_scale()
    if scale == SCALE_PAPER:
        fig4_duration, fleet_duration, hetero_duration = 400.0, 300.0, 300.0
    else:
        fig4_duration, fleet_duration, hetero_duration = 150.0, 120.0, 120.0
    fleet = ExperimentConfig(
        mode=MODE_JIT,
        seed=1,
        duration_s=fleet_duration,
        query=QueryParams(radius_m=60.0),
    ).with_num_users(16, arrival_process=ARRIVAL_STAGGERED, arrival_spacing_s=2.5)
    return {
        "fig4_jit": paper_section62_config(
            mode=MODE_JIT,
            sleep_period_s=9.0,
            speed_range=(3.0, 5.0),
            seed=1,
            duration_s=fig4_duration,
        ),
        "scale_16users": fleet,
        "hetero_mix_8users": get_scenario("heterogeneous-mix").with_overrides(
            duration_s=hetero_duration
        ),
    }


def _run_once(config) -> tuple:
    """Run one scenario object; returns (events, sent, collided, mean)."""
    if isinstance(config, ExperimentConfig):
        result = run_experiment(config)
        return (
            result.events_executed,
            result.frames_sent,
            result.frames_collided,
            result.mean_user_success_ratio,
        )
    from ..api.scenarios import run_scenario

    scenario = run_scenario(config)
    return (
        scenario.events_executed,
        scenario.frames_sent,
        scenario.frames_collided,
        scenario.mean_success,
    )


def measure_scenario(name: str, config, repeats: int = 1) -> PerfSample:
    """Run ``config`` ``repeats`` times; keep the fastest wall-clock."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best_wall = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = _run_once(config)
        wall = time.perf_counter() - started
        if wall < best_wall:
            best_wall = wall
    assert result is not None
    events, sent, collided, mean_success = result
    return PerfSample(
        scenario=name,
        wall_s=round(best_wall, 4),
        events_executed=events,
        events_per_sec=round(events / best_wall, 1),
        frames_sent=sent,
        frames_collided=collided,
        mean_success=round(mean_success, 6),
    )


#: where ``repro profile`` writes the raw cProfile dump by default
DEFAULT_PROFILE_PATH = "/tmp/repro_prof.out"


def profile_scenario(
    name: str,
    scale: Optional[str] = None,
    duration_s: Optional[float] = None,
    out_path: str = DEFAULT_PROFILE_PATH,
):
    """Run one canonical scenario under ``cProfile`` (the ROADMAP recipe).

    Replaces the two copy-pasted shell lines (``python -m cProfile -o ...``
    then a ``pstats`` one-liner) with a single call: the scenario runs
    once, the raw profile is dumped to ``out_path`` for later digging, and
    the returned :class:`pstats.Stats` is ready for ``sort_stats(...)``
    ``.print_stats(top)``.

    Args:
        name: a :func:`perf_scenarios` key (e.g. ``fig4_jit``).
        scale: quick|paper (defaults to the bench scale).
        duration_s: optional duration override — handy for short looks at
            a hot path without paying the full scenario.
        out_path: where to dump the raw profile.

    Raises:
        KeyError: for an unknown scenario name (message lists valid ones).
    """
    import cProfile
    import pstats
    from dataclasses import replace

    scenarios = perf_scenarios(scale)
    config = scenarios.get(name)
    if config is None:
        raise KeyError(
            f"unknown scenario {name!r}; expected one of: "
            + ", ".join(sorted(scenarios))
        )
    if duration_s is not None:
        if isinstance(config, ExperimentConfig):
            config = replace(config, duration_s=duration_s)
        else:
            config = config.with_overrides(duration_s=duration_s)
    profiler = cProfile.Profile()
    profiler.enable()
    _run_once(config)
    profiler.disable()
    profiler.dump_stats(out_path)
    return pstats.Stats(profiler)


@contextlib.contextmanager
def _reference_path() -> Iterator[None]:
    """Force the pure-Python reference physics for the enclosed runs.

    ``numpy_or_none`` consults ``REPRO_VECTORIZE`` at channel construction,
    so flipping the environment variable around a measurement is enough —
    and worker processes inherit it, so cluster runs flip too.
    """
    previous = os.environ.get("REPRO_VECTORIZE")
    os.environ["REPRO_VECTORIZE"] = "reference"
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_VECTORIZE"]
        else:
            os.environ["REPRO_VECTORIZE"] = previous


def run_perf_suite(
    scale: Optional[str] = None, repeats: int = 1, both_paths: bool = False
) -> Dict:
    """Measure every canonical scenario and build the report dict.

    With ``both_paths`` (and numpy available), each scenario is measured a
    second time over the pure-Python reference physics and the entry gains
    ``reference_wall_s`` / ``speedup_vs_reference`` — so the committed
    artifact always shows what the accelerator is actually worth, and a
    reference-path run records its fingerprints came out identical.
    """
    scale = scale or bench_scale()
    samples = [
        measure_scenario(name, config, repeats=repeats)
        for name, config in perf_scenarios(scale).items()
    ]
    from ..net.vectorized import accelerator_name

    report: Dict = {
        "schema": PERF_SCHEMA_VERSION,
        "scale": scale,
        "repeats": repeats,
        "accelerator": accelerator_name(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "pre_pr_baseline": PRE_PR_BASELINE,
        "scenarios": {},
    }
    for sample in samples:
        entry = asdict(sample)
        baseline = PRE_PR_BASELINE.get(sample.scenario)
        if baseline is not None and scale == SCALE_QUICK:
            entry["baseline_wall_s"] = baseline["wall_s"]
            entry["speedup_vs_pre_pr"] = round(baseline["wall_s"] / sample.wall_s, 2)
        report["scenarios"][sample.scenario] = entry
    if both_paths and report["accelerator"] != "reference":
        with _reference_path():
            for name, config in perf_scenarios(scale).items():
                ref = measure_scenario(name, config, repeats=repeats)
                entry = report["scenarios"][name]
                for field in (
                    "events_executed",
                    "frames_sent",
                    "frames_collided",
                    "mean_success",
                ):
                    if getattr(ref, field) != entry[field]:
                        raise ValueError(
                            f"{name}.{field}: reference path measured "
                            f"{getattr(ref, field)} but the accelerated path "
                            f"measured {entry[field]} — the two physics paths "
                            "diverged; do not commit this report"
                        )
                entry["reference_wall_s"] = ref.wall_s
                entry["speedup_vs_reference"] = round(ref.wall_s / entry["wall_s"], 2)
    return report


def fingerprint_mismatches(report: Dict) -> List[str]:
    """Determinism check: quick-scale runs must match the pinned fingerprints.

    Result-fingerprint mismatches mean the simulation *computes something
    different* (never acceptable from a pure optimization); event-count
    mismatches mean work was repacked into kernel events differently (only
    acceptable when re-pinned deliberately, in the same commit).
    """
    if report.get("scale") != SCALE_QUICK:
        return []
    problems = []
    for name, expected in RESULT_FINGERPRINTS.items():
        got = report["scenarios"].get(name)
        if got is None:
            problems.append(f"{name}: scenario missing from report")
            continue
        for field, value in expected.items():
            if got.get(field) != value:
                problems.append(
                    f"{name}.{field}: expected {value}, measured {got.get(field)} "
                    "— the simulation's results changed, not just its speed"
                )
        events = EVENT_FINGERPRINTS[name]
        if got.get("events_executed") != events:
            problems.append(
                f"{name}.events_executed: expected {events}, measured "
                f"{got.get('events_executed')} — the event structure changed; "
                "if the results above still match, re-pin EVENT_FINGERPRINTS "
                "in the same commit and say so in the commit message"
            )
    return problems


def cluster_scenario(scale: Optional[str] = None):
    """The ``cluster_scale_64users`` spec at ``scale`` (quick|paper)."""
    from ..api.scenarios import get_scenario

    spec = get_scenario(CLUSTER_SCENARIO)
    if (scale or bench_scale()) == SCALE_PAPER:
        spec = spec.with_overrides(duration_s=240.0)
    return spec


def _measure_cluster_once(spec, shards: int, workers: int) -> Dict:
    """One timed cluster run; returns the report entry for it."""
    from ..api.scenarios import run_scenario
    from ..cluster.service import ClusterService
    from .config import ExperimentConfig
    from ..net.network import NetworkConfig

    config = ExperimentConfig(
        mode=spec.mode,
        seed=spec.seed,
        duration_s=spec.duration_s,
        network=NetworkConfig(**spec.network),
    )
    # Always measure through ClusterService — for shards=1 that *is* the
    # point: the bench doubles as the single-shard identity gate.
    backend = ClusterService(
        config, shards=shards, workers=workers, partitioner=spec.partitioner
    )
    started = time.perf_counter()
    result = run_scenario(spec, backend=backend)
    wall = time.perf_counter() - started
    return {
        "shards": shards,
        "workers": workers,
        "parallel_used": backend.parallel_used,
        "wall_s": round(wall, 4),
        "events_executed": result.events_executed,
        "frames_sent": result.frames_sent,
        "frames_collided": result.frames_collided,
        "frames_delivered": result.frames_delivered,
        "mean_success": round(result.mean_success, 6),
        "min_success": round(result.min_success, 6),
        "backbone_size": result.backbone_size,
    }


def _measure_cluster(spec, shards: int, workers: int, repeats: int) -> Dict:
    """Best-of-``repeats`` timed cluster run (min wall, like the hot paths)."""
    best: Optional[Dict] = None
    for _ in range(repeats):
        entry = _measure_cluster_once(spec, shards, workers)
        if best is None or entry["wall_s"] < best["wall_s"]:
            best = entry
    assert best is not None
    return best


def run_cluster_suite(
    scale: Optional[str] = None,
    repeats: int = 1,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    both_paths: bool = False,
) -> Dict:
    """Time ``cluster_scale_64users`` on one world vs a sharded cluster.

    Returns the ``cluster`` report section: a ``shards1`` entry (the
    single-shard identity run), a ``shardsN`` entry (the sharded run,
    worker processes when the machine has the cores), and the wall-clock
    ``speedup`` of sharded over single.  With ``both_paths`` each entry is
    re-measured over the reference physics (``reference_wall_s``), same as
    :func:`run_perf_suite`.
    """
    scale = scale or bench_scale()
    spec = cluster_scenario(scale)
    shards = shards if shards is not None else spec.shards
    workers = workers if workers is not None else spec.workers
    if shards < 2:
        raise ValueError(
            f"the cluster suite compares a sharded layout against one "
            f"world — shards must be >= 2, got {shards}"
        )
    single = _measure_cluster(spec, shards=1, workers=0, repeats=repeats)
    sharded = _measure_cluster(
        spec, shards=shards, workers=workers, repeats=repeats
    )
    from ..net.vectorized import accelerator_name

    if both_paths and accelerator_name() != "reference":
        with _reference_path():
            for entry in (single, sharded):
                ref = _measure_cluster(
                    spec,
                    shards=entry["shards"],
                    workers=entry["workers"],
                    repeats=repeats,
                )
                for field, value in ref.items():
                    if field in ("wall_s", "parallel_used"):
                        continue
                    if entry[field] != value:
                        raise ValueError(
                            f"cluster shards={entry['shards']}.{field}: "
                            f"reference path measured {value} but the "
                            f"accelerated path measured {entry[field]} — the "
                            "two physics paths diverged; do not commit this "
                            "report"
                        )
                entry["reference_wall_s"] = ref["wall_s"]
                entry["speedup_vs_reference"] = round(
                    ref["wall_s"] / entry["wall_s"], 2
                )
    return {
        "scenario": CLUSTER_SCENARIO,
        "scale": scale,
        "repeats": repeats,
        "accelerator": accelerator_name(),
        "duration_s": spec.duration_s,
        "users": sum(int(t.get("count", 1)) for t in spec.requests),
        "partitioner": spec.partitioner,
        "cpu_count": os.cpu_count() or 1,
        "shards1": single,
        f"shards{shards}": sharded,
        "speedup_sharded_vs_single": round(
            single["wall_s"] / sharded["wall_s"], 2
        ),
    }


def cluster_fingerprint_mismatches(cluster_report: Dict) -> List[str]:
    """Determinism gate for the cluster bench (quick scale only).

    ``shards1`` must reproduce the pinned **MobiQueryService** fingerprint
    exactly — that is the single-shard identity guarantee; the sharded
    entry must reproduce its own pin (4 deterministic worlds).
    """
    if cluster_report.get("scale") != SCALE_QUICK:
        return []
    problems: List[str] = []
    for key, expected in CLUSTER_RESULT_FINGERPRINTS.items():
        entry = cluster_report.get(key)
        if entry is None:
            continue  # a non-default shard count was measured
        for field, value in expected.items():
            if entry.get(field) != value:
                problems.append(
                    f"cluster {key}.{field}: expected {value}, measured "
                    f"{entry.get(field)} — "
                    + (
                        "the single-shard cluster no longer matches the "
                        "single-world service"
                        if key == "shards1"
                        else "the sharded run's results changed"
                    )
                )
    return problems


def format_cluster_report(cluster_report: Dict) -> str:
    """Render the cluster section as the standard perf table."""
    from .reporting import format_table

    rows = []
    for key, entry in cluster_report.items():
        if not isinstance(entry, dict):
            continue
        rows.append(
            (
                key,
                f"{entry['wall_s']:.3f}",
                entry["events_executed"],
                entry["frames_sent"],
                f"{entry['mean_success']:.4f}",
                "yes" if entry.get("parallel_used") else "no",
            )
        )
    title = (
        f"Cluster scale-out ({cluster_report['scenario']}, "
        f"{cluster_report['users']} users, {cluster_report['scale']} scale) "
        f"— sharded speedup {cluster_report['speedup_sharded_vs_single']}x"
    )
    return format_table(
        title,
        ["layout", "wall (s)", "events", "frames", "success", "workers"],
        rows,
    )


def check_regressions(
    report: Dict, reference: Dict, threshold: float = REGRESSION_THRESHOLD
) -> List[str]:
    """Compare ``report`` against a same-machine ``reference`` report.

    Returns one message per scenario whose events/sec dropped more than
    ``threshold`` below the reference (empty list: no regression).
    """
    problems = []
    for name, ref_entry in reference.get("scenarios", {}).items():
        cur_entry = report["scenarios"].get(name)
        if cur_entry is None:
            problems.append(f"{name}: present in baseline but not measured")
            continue
        ref_rate = ref_entry.get("events_per_sec")
        cur_rate = cur_entry.get("events_per_sec")
        if not ref_rate or not cur_rate:
            continue
        floor = ref_rate * (1.0 - threshold)
        if cur_rate < floor:
            problems.append(
                f"{name}: {cur_rate:.0f} events/s is "
                f"{(1.0 - cur_rate / ref_rate) * 100.0:.1f}% below the "
                f"baseline {ref_rate:.0f} events/s (allowed: {threshold:.0%})"
            )
    return problems


def format_perf_report(report: Dict) -> str:
    """Render a report as the standard perf table (CLI and benchmark)."""
    from .reporting import format_table

    return format_table(
        f"Hot-path performance ({report['scale']} scale, "
        f"best of {report['repeats']}, "
        f"accelerator {report.get('accelerator', 'reference')})",
        ["scenario", "wall (s)", "ref (s)", "events/s", "events", "vs pre-PR"],
        [
            (
                name,
                f"{entry['wall_s']:.3f}",
                (
                    f"{entry['reference_wall_s']:.3f}"
                    if "reference_wall_s" in entry
                    else "-"
                ),
                f"{entry['events_per_sec']:.0f}",
                entry["events_executed"],
                f"{entry.get('speedup_vs_pre_pr', '-')}",
            )
            for name, entry in report["scenarios"].items()
        ],
    )


def write_report(report: Dict, path: str) -> None:
    """Write ``report`` as pretty JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> Dict:
    """Read a previously written BENCH_perf.json."""
    with open(path) as handle:
        return json.load(handle)


def load_previous_report(path: str) -> Tuple[Optional[Dict], Optional[str]]:
    """Best-effort read of an existing report the bench will merge into.

    ``repro bench`` and ``repro bench --cluster`` each rewrite one section
    of the shared ``BENCH_perf.json`` artifact and must carry the other
    section over from the file on disk.  That merge must never crash on —
    or silently discard sections because of — a missing or corrupt prior
    file, so this returns ``(report, None)`` for a readable prior report,
    ``(None, None)`` when there is no file yet (a fresh artifact: nothing
    to preserve), and ``(None, warning)`` when the file exists but cannot
    be used (unreadable, invalid JSON, or valid JSON that is not an
    object — ``json.load`` happily returns strings and lists, and probing
    those for a ``"cluster"`` key is where the old merge crashed).  The
    caller prints the warning and proceeds with a fresh report.
    """
    try:
        report = load_report(path)
    except FileNotFoundError:
        return None, None
    except (OSError, ValueError) as exc:
        return None, f"existing report {path} is unreadable ({exc})"
    if not isinstance(report, dict):
        return (
            None,
            f"existing report {path} is not a JSON object "
            f"(got {type(report).__name__})",
        )
    return report, None
