"""Spatial hash grid for neighbourhood queries.

The sensor field is static, so neighbour discovery is a one-time cost — but
the mobile user's proxy re-queries "which nodes are within range of me?" on
every contact, and experiment code repeatedly asks "which nodes fall in this
query area?".  A uniform bucket grid answers disk queries in time
proportional to the local density instead of scanning all nodes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Iterable, List, Tuple, TypeVar

from .vec import Vec2

T = TypeVar("T")


class SpatialGrid(Generic[T]):
    """Uniform grid mapping cell coordinates to the items placed in them.

    Items are arbitrary hashable objects registered together with a fixed
    position.  ``cell_size`` should be on the order of the most common query
    radius (the radio range works well) so that disk queries touch only a
    handful of cells.
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be > 0, got {cell_size}")
        self.cell_size = cell_size
        self._cells: Dict[Tuple[int, int], List[Tuple[Vec2, T]]] = defaultdict(list)
        self._positions: Dict[T, Vec2] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _cell_of(self, point: Vec2) -> Tuple[int, int]:
        return (int(point.x // self.cell_size), int(point.y // self.cell_size))

    def insert(self, item: T, position: Vec2) -> None:
        """Register ``item`` at ``position``.

        Raises:
            ValueError: if the item was already inserted (static field —
                re-registration is almost certainly a bug).
        """
        if item in self._positions:
            raise ValueError(f"item {item!r} already present in grid")
        self._positions[item] = position
        self._cells[self._cell_of(position)].append((position, item))

    def insert_many(self, items: Iterable[Tuple[T, Vec2]]) -> None:
        """Register many ``(item, position)`` pairs."""
        for item, position in items:
            self.insert(item, position)

    def remove(self, item: T) -> None:
        """Unregister ``item``.

        Raises:
            KeyError: if the item is not present.
        """
        position = self._positions.pop(item)
        bucket = self._cells[self._cell_of(position)]
        bucket[:] = [(p, it) for (p, it) in bucket if it != item]

    def position_of(self, item: T) -> Vec2:
        """The position ``item`` was registered at."""
        return self._positions[item]

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, item: T) -> bool:
        return item in self._positions

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_disk(self, center: Vec2, radius: float) -> List[T]:
        """All items within ``radius`` of ``center`` (boundary included)."""
        if radius < 0:
            return []
        r_sq = radius * radius
        cs = self.cell_size
        cx_min = int((center.x - radius) // cs)
        cx_max = int((center.x + radius) // cs)
        cy_min = int((center.y - radius) // cs)
        cy_max = int((center.y + radius) // cs)
        found: List[T] = []
        cells = self._cells
        for cx in range(cx_min, cx_max + 1):
            for cy in range(cy_min, cy_max + 1):
                bucket = cells.get((cx, cy))
                if not bucket:
                    continue
                for position, item in bucket:
                    dx = position.x - center.x
                    dy = position.y - center.y
                    if dx * dx + dy * dy <= r_sq + 1e-9:
                        found.append(item)
        return found

    def query_disk_excluding(
        self, center: Vec2, radius: float, excluded: T
    ) -> List[T]:
        """Disk query that drops one item (typically the querying node).

        The excluded item is skipped while collecting, not filtered from a
        fully built candidate list afterwards (this runs once per node at
        network construction over every node's neighbourhood).
        """
        if radius < 0:
            return []
        r_sq = radius * radius
        cs = self.cell_size
        cx_min = int((center.x - radius) // cs)
        cx_max = int((center.x + radius) // cs)
        cy_min = int((center.y - radius) // cs)
        cy_max = int((center.y + radius) // cs)
        found: List[T] = []
        cells = self._cells
        for cx in range(cx_min, cx_max + 1):
            for cy in range(cy_min, cy_max + 1):
                bucket = cells.get((cx, cy))
                if not bucket:
                    continue
                for position, item in bucket:
                    if item == excluded:
                        continue
                    dx = position.x - center.x
                    dy = position.y - center.y
                    if dx * dx + dy * dy <= r_sq + 1e-9:
                        found.append(item)
        return found

    def nearest(self, center: Vec2) -> T:
        """The registered item closest to ``center``.

        Searches outward ring by ring; falls back to a full scan only if the
        grid is sparse relative to the query point.

        Raises:
            ValueError: if the grid is empty.
        """
        if not self._positions:
            raise ValueError("nearest() on empty grid")
        # Expanding-ring search: try radius = cell, 2*cell, 4*cell, ...
        radius = self.cell_size
        max_radius = self._max_extent(center)
        while radius <= max_radius * 2:
            candidates = self.query_disk(center, radius)
            if candidates:
                return min(
                    candidates, key=lambda it: self._positions[it].distance_sq_to(center)
                )
            radius *= 2
        return min(
            self._positions, key=lambda it: self._positions[it].distance_sq_to(center)
        )

    def _max_extent(self, center: Vec2) -> float:
        extent = 0.0
        for position in self._positions.values():
            extent = max(extent, position.distance_to(center))
        return extent if extent > 0 else self.cell_size
