"""2-D geometry primitives: vectors, circles, rectangles, areas, grid."""

from .areas import (
    AreaTemplate,
    DiskTemplate,
    QueryArea,
    RectTemplate,
    SectorTemplate,
)
from .grid import SpatialGrid
from .shapes import (
    Circle,
    Rect,
    is_point_covered,
    is_point_k_covered,
    points_in_circle,
    segment_point_distance,
)
from .vec import Vec2

__all__ = [
    "Vec2",
    "QueryArea",
    "AreaTemplate",
    "DiskTemplate",
    "SectorTemplate",
    "RectTemplate",
    "Circle",
    "Rect",
    "SpatialGrid",
    "points_in_circle",
    "is_point_covered",
    "is_point_k_covered",
    "segment_point_distance",
]
