"""Geometric primitives used throughout the simulator.

Circles model query areas (radius ``Rq`` around the user), radio ranges
(``Rc``) and sensing ranges (``Rs``).  The circle-intersection machinery is
what CCP's sleeping-eligibility rule is built on: a node may sleep when every
intersection point of its neighbours' sensing circles that falls inside its
own sensing disk is covered by an active neighbour (Wang et al., SenSys'03).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .vec import Vec2


@dataclass(frozen=True)
class Circle:
    """A disk with ``center`` and ``radius`` (the boundary is included)."""

    center: Vec2
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"circle radius must be >= 0, got {self.radius}")

    def contains(self, point: Vec2, tol: float = 1e-9) -> bool:
        """Whether ``point`` lies inside or on the circle."""
        return self.center.distance_sq_to(point) <= (self.radius + tol) ** 2

    def area(self) -> float:
        """Disk area."""
        return math.pi * self.radius * self.radius

    def intersects(self, other: "Circle") -> bool:
        """Whether the two disks share at least one point."""
        d = self.center.distance_to(other.center)
        return d <= self.radius + other.radius

    def contains_circle(self, other: "Circle") -> bool:
        """Whether ``other`` lies entirely inside this disk."""
        d = self.center.distance_to(other.center)
        return d + other.radius <= self.radius + 1e-9

    def boundary_point(self, angle: float) -> Vec2:
        """Point on the boundary at ``angle`` radians from the +x axis."""
        return self.center + Vec2.from_polar(self.radius, angle)

    def intersection_points(self, other: "Circle") -> List[Vec2]:
        """The 0, 1 or 2 intersection points of the two circle *boundaries*.

        Coincident circles intersect everywhere; for that degenerate case we
        return an empty list (CCP treats a duplicate-position neighbour as
        fully redundant anyway).
        """
        d = self.center.distance_to(other.center)
        r0, r1 = self.radius, other.radius
        if d == 0.0:
            return []
        if d > r0 + r1 or d < abs(r0 - r1):
            return []
        # Distance from self.center to the chord midpoint.
        a = (r0 * r0 - r1 * r1 + d * d) / (2.0 * d)
        h_sq = r0 * r0 - a * a
        if h_sq < 0.0:
            h_sq = 0.0
        h = math.sqrt(h_sq)
        direction = (other.center - self.center) / d
        mid = self.center + direction * a
        if h == 0.0:
            return [mid]
        offset = direction.perpendicular() * h
        return [mid + offset, mid - offset]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError("rect must have non-negative extent")

    @staticmethod
    def square(side: float) -> "Rect":
        """A ``side x side`` square anchored at the origin."""
        return Rect(0.0, 0.0, side, side)

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    def area(self) -> float:
        return self.width * self.height

    def center(self) -> Vec2:
        return Vec2(
            (self.x_min + self.x_max) / 2.0,
            (self.y_min + self.y_max) / 2.0,
        )

    def contains(self, point: Vec2, tol: float = 0.0) -> bool:
        """Whether ``point`` is inside the rectangle (boundary included)."""
        return (
            self.x_min - tol <= point.x <= self.x_max + tol
            and self.y_min - tol <= point.y <= self.y_max + tol
        )

    def clamp(self, point: Vec2) -> Vec2:
        """Nearest point of the rectangle to ``point``."""
        return Vec2(
            min(max(point.x, self.x_min), self.x_max),
            min(max(point.y, self.y_min), self.y_max),
        )

    def corners(self) -> Tuple[Vec2, Vec2, Vec2, Vec2]:
        """The four corners, counter-clockwise from ``(x_min, y_min)``."""
        return (
            Vec2(self.x_min, self.y_min),
            Vec2(self.x_max, self.y_min),
            Vec2(self.x_max, self.y_max),
            Vec2(self.x_min, self.y_max),
        )


def points_in_circle(points: Iterable[Vec2], circle: Circle) -> List[Vec2]:
    """Filter ``points`` down to those inside ``circle``."""
    r_sq = circle.radius * circle.radius
    c = circle.center
    return [p for p in points if c.distance_sq_to(p) <= r_sq + 1e-9]


def is_point_covered(point: Vec2, disks: Sequence[Circle]) -> bool:
    """Whether ``point`` lies inside at least one of ``disks``."""
    return any(d.contains(point) for d in disks)


def is_point_k_covered(point: Vec2, disks: Sequence[Circle], k: int) -> bool:
    """Whether ``point`` lies inside at least ``k`` of ``disks``.

    This is the predicate CCP evaluates on sensing-circle intersection
    points to decide K-coverage eligibility.
    """
    count = 0
    for d in disks:
        if d.contains(point):
            count += 1
            if count >= k:
                return True
    return k <= 0


def segment_point_distance(a: Vec2, b: Vec2, p: Vec2) -> float:
    """Distance from point ``p`` to the segment ``ab``."""
    ab = b - a
    denom = ab.norm_sq()
    if denom == 0.0:
        return a.distance_to(p)
    t = (p - a).dot(ab) / denom
    t = min(1.0, max(0.0, t))
    closest = a + ab * t
    return closest.distance_to(p)
