"""Two-dimensional points and vectors.

The whole simulator works in a flat 2-D plane measured in metres, matching
the paper's 450 m x 450 m deployment region.  ``Vec2`` is deliberately a
tiny immutable value type: positions, velocities and displacements are all
``Vec2`` instances, and the hot paths (channel neighbour checks, routing
progress computations) only ever need squared distances, dot products and
linear interpolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, slots=True)
class Vec2:
    """An immutable 2-D vector/point with float components.

    ``slots=True`` matters: Vec2 is allocated and read constantly on the
    channel/mobility hot paths, and slot access skips the per-instance dict.
    """

    x: float
    y: float

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "Vec2":
        """The origin / null displacement."""
        return Vec2(0.0, 0.0)

    @staticmethod
    def from_polar(magnitude: float, angle: float) -> "Vec2":
        """Build a vector from a magnitude and an angle in radians."""
        return Vec2(magnitude * math.cos(angle), magnitude * math.sin(angle))

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    def __rmul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def dot(self, other: "Vec2") -> float:
        """Dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids a sqrt on hot paths)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq_to(self, other: "Vec2") -> float:
        """Squared Euclidean distance to ``other``."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def angle(self) -> float:
        """Angle of the vector in radians, in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def normalized(self) -> "Vec2":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: for the zero vector, which has no direction.
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Vec2(self.x / n, self.y / n)

    def perpendicular(self) -> "Vec2":
        """The vector rotated +90 degrees."""
        return Vec2(-self.y, self.x)

    def rotated(self, angle: float) -> "Vec2":
        """The vector rotated by ``angle`` radians counter-clockwise."""
        c = math.cos(angle)
        s = math.sin(angle)
        return Vec2(self.x * c - self.y * s, self.x * s + self.y * c)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: ``self`` at ``t=0``, ``other`` at ``t=1``."""
        return Vec2(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def clamped(self, lo: "Vec2", hi: "Vec2") -> "Vec2":
        """Component-wise clamp into the axis-aligned box ``[lo, hi]``."""
        return Vec2(
            min(max(self.x, lo.x), hi.x),
            min(max(self.y, lo.y), hi.y),
        )

    def as_tuple(self) -> Tuple[float, float]:
        """The ``(x, y)`` tuple, e.g. for numpy interop."""
        return (self.x, self.y)

    def is_close(self, other: "Vec2", tol: float = 1e-9) -> bool:
        """Approximate equality within absolute tolerance ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vec2({self.x:.3f}, {self.y:.3f})"
