"""Query-area shapes beyond the paper's default disk.

Section 3 of the paper: "we assume A(Pu(t)) is a circle with radius Rq
centered around the user ..., although our design can be easily extended to
other types of query areas."  This module is that extension: a query area
is any shape with a containment test and a bounding radius (used for flood
scoping, the eq. (1) sub-deadline reach, and spatial indexing), built from
an :class:`AreaTemplate` anchored at the user's predicted position and
oriented along their predicted heading.

Shipped templates:

* :class:`DiskTemplate` — the paper's default.
* :class:`SectorTemplate` — a forward-facing wedge; natural for a moving
  user who cares about what is ahead (the firefighter looks where he
  walks).
* :class:`RectTemplate` — a corridor along the direction of travel; natural
  for a vehicle following a road.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .vec import Vec2


@dataclass(frozen=True)
class QueryArea:
    """A placed, oriented query area (template + anchor + heading).

    ``contains`` is the spatial constraint; ``center``/``bounding_radius``
    bound the area for routing and flood scoping.
    """

    template: "AreaTemplate"
    center: Vec2
    heading: Vec2

    def contains(self, point: Vec2, tol: float = 1e-9) -> bool:
        """Whether ``point`` lies inside the area."""
        return self.template.contains_local(self.center, self.heading, point, tol)

    @property
    def bounding_radius(self) -> float:
        """Radius of the smallest center-anchored disk covering the area."""
        return self.template.bounding_radius

    # Back-compat with code written against geometry.shapes.Circle:
    @property
    def radius(self) -> float:
        """Alias for :attr:`bounding_radius`."""
        return self.template.bounding_radius


class AreaTemplate:
    """Interface: a user-relative query-area shape."""

    #: radius of the smallest anchored disk covering the shape
    bounding_radius: float = 0.0

    def at(self, center: Vec2, heading: Optional[Vec2] = None) -> QueryArea:
        """Anchor the template at ``center``, oriented along ``heading``.

        A zero or missing heading falls back to +x; only direction matters.
        """
        if heading is None or heading.norm_sq() < 1e-18:
            heading = Vec2(1.0, 0.0)
        else:
            heading = heading.normalized()
        return QueryArea(template=self, center=center, heading=heading)

    def contains_local(
        self, center: Vec2, heading: Vec2, point: Vec2, tol: float
    ) -> bool:
        """Containment test for a placed instance."""
        raise NotImplementedError


@dataclass(frozen=True)
class DiskTemplate(AreaTemplate):
    """The paper's circular query area of radius ``Rq``."""

    radius_m: float = 150.0

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError("disk radius must be > 0")

    @property
    def bounding_radius(self) -> float:
        return self.radius_m

    def contains_local(
        self, center: Vec2, heading: Vec2, point: Vec2, tol: float
    ) -> bool:
        return center.distance_sq_to(point) <= (self.radius_m + tol) ** 2


@dataclass(frozen=True)
class SectorTemplate(AreaTemplate):
    """A forward wedge: radius ``Rq``, half-angle around the heading.

    The anchor point itself (and a small disk around it, ``hub_radius_m``)
    is always included so the user's immediate surroundings are never
    blind, matching how a forward-looking query would be specified.
    """

    radius_m: float = 150.0
    half_angle_deg: float = 60.0
    hub_radius_m: float = 20.0

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError("sector radius must be > 0")
        if not 0 < self.half_angle_deg <= 180:
            raise ValueError("half angle must be in (0, 180] degrees")
        if self.hub_radius_m < 0:
            raise ValueError("hub radius must be >= 0")

    @property
    def bounding_radius(self) -> float:
        return self.radius_m

    def contains_local(
        self, center: Vec2, heading: Vec2, point: Vec2, tol: float
    ) -> bool:
        offset = point - center
        distance_sq = offset.norm_sq()
        if distance_sq <= (self.hub_radius_m + tol) ** 2:
            return True
        if distance_sq > (self.radius_m + tol) ** 2:
            return False
        cos_limit = math.cos(math.radians(self.half_angle_deg))
        distance = math.sqrt(distance_sq)
        return offset.dot(heading) >= cos_limit * distance - tol


@dataclass(frozen=True)
class RectTemplate(AreaTemplate):
    """A corridor centred on the user, long axis along the heading."""

    length_m: float = 300.0
    width_m: float = 120.0

    def __post_init__(self) -> None:
        if self.length_m <= 0 or self.width_m <= 0:
            raise ValueError("corridor dimensions must be > 0")

    @property
    def bounding_radius(self) -> float:
        return math.hypot(self.length_m / 2.0, self.width_m / 2.0)

    def contains_local(
        self, center: Vec2, heading: Vec2, point: Vec2, tol: float
    ) -> bool:
        offset = point - center
        along = offset.dot(heading)
        across = offset.cross(heading)
        return (
            abs(along) <= self.length_m / 2.0 + tol
            and abs(across) <= self.width_m / 2.0 + tol
        )
