"""The multiresolution summary plane.

Backbone nodes already beacon every sleep period (the PSM duty cycle);
the summary plane models each node piggybacking its current reading on
that beacon, so per-region partial aggregates are available in-network
at zero additional frames.  The plane keeps those partials at
:data:`NUM_LEVELS` nested grid resolutions over the deployment region
and answers a query disk by composing the cells that cover it.

Two refresh paths feed a cell:

* **beacon snapshots** — materialised lazily: when a cell is first
  needed (or its snapshot predates the most recent beacon window), the
  plane records every member node's reading as of the window opening.
  Readings therefore age up to one beacon interval, which is exactly
  the staleness an approximate session can observe.
* **report overlay** — the exact protocol's report traffic already
  carries fresh readings; the plane overhears them
  (:meth:`SummaryPlane.observe`) and overlays them on the snapshot.
  Overheard readings never advance the staleness clock (one fresh
  reading says nothing about the cell's other members) — they only
  sharpen values.

Answers carry a declared ``error_bound``:

* ``AVG``/``MIN``/``MAX`` — the summary aggregates a *superset* of the
  query disk (whole cells), so both the summary answer and the exact
  answer are bracketed by the observed value range; the bound is
  ``maximum - minimum`` over the composed cells.
* ``COUNT``/``SUM`` — population-dependent: the answer is the midpoint
  between the cells fully inside the disk (``inner``) and every
  intersecting cell (``outer``), with bound ``(outer - inner) / 2``
  (assumes non-negative readings for ``SUM``, which the sensor
  attributes here satisfy).

The plane is deliberately inert on the exact path: it draws no RNG,
schedules no kernel events and sends no frames — a run without
approximate sessions never constructs one, and a mixed run's plane only
does dictionary work inside callbacks that already existed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.query import Aggregation
from ..geometry.vec import Vec2
from ..net.network import Network

#: grid columns/rows at level 0 (each finer level doubles both)
GRID_BASE = 4

#: nested resolutions maintained by the plane (level 0 = coarsest)
NUM_LEVELS = 3

#: finest level a session of each accuracy class may drill down to.
#: ``coarse`` stays on the two coarse grids; ``medium`` may reach the
#: finest.  (``exact`` never consults the plane at all.)
ACCURACY_LEVEL_CAP = {"coarse": 1, "medium": 2}

#: slack when comparing summary age against a freshness bound (float
#: noise at beacon-window boundaries must not flip a period degraded)
_FRESHNESS_EPS = 1e-6


@dataclass
class _Cell:
    """One grid cell: beacon snapshot + overheard-report overlay."""

    #: node_id -> reading as of the snapshot window (``sampled_s``)
    readings: Dict[int, float] = field(default_factory=dict)
    #: beacon-window opening the snapshot dates from
    sampled_s: float = -float("inf")
    #: fresher readings overheard on report traffic since the snapshot
    overlay: Dict[int, float] = field(default_factory=dict)


@dataclass
class _SessionState:
    """Per-session drill-down bookkeeping (the census counts these)."""

    accuracy: str
    answers: int = 0
    last_level: Optional[int] = None


@dataclass(frozen=True)
class SummaryAnswer:
    """One period's answer composed from cached summaries.

    Carries the composable sufficient statistics (``count``/``total``/
    ``minimum``/``maximum`` over the covering cells) so answers from
    disjoint worlds — cluster shards — merge associatively via
    :func:`merge_answers`.
    """

    value: float
    error_bound: float
    #: distinct readings composed into the answer
    contributors: int
    #: contributing node ids (empty for cross-shard merged answers,
    #: where per-world ids are not comparable)
    contributor_ids: FrozenSet[int]
    #: resolution level the drill-down settled on
    level: int
    #: covering cells composed (outer set)
    cells: int
    #: age of the oldest snapshot used
    age_s: float
    #: True when ``age_s`` exceeds the session's freshness bound
    degraded: bool
    # -- associative raw statistics (outer / inner cell sets) --
    count: int
    total: float
    minimum: float
    maximum: float
    inner_count: int
    inner_total: float


class SummaryPlane:
    """Per-world multiresolution summary cache.

    One plane serves every approximate session of a service instance; it
    is created on the first approximate admission so exact-only runs
    never carry one.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.sim = network.sim
        self.region = network.config.region
        self._psm = network.config.psm
        #: per-level lazily-materialised cells
        self._cells: List[Dict[Tuple[int, int], _Cell]] = [
            {} for _ in range(NUM_LEVELS)
        ]
        #: per-level static cell membership (sensor nodes never move)
        self._members: List[Dict[Tuple[int, int], List]] = [
            {} for _ in range(NUM_LEVELS)
        ]
        for level in range(NUM_LEVELS):
            members = self._members[level]
            for node in network.nodes:
                members.setdefault(self._locate(node.position, level), []).append(
                    node
                )
        #: live approximate sessions (keyed like all protocol state)
        self._sessions: Dict[Tuple[int, int], _SessionState] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def grid_shape(self, level: int) -> Tuple[int, int]:
        n = GRID_BASE * (2**level)
        return (n, n)

    def cell_extent(self, level: int) -> Tuple[float, float]:
        nx, ny = self.grid_shape(level)
        return (self.region.width / nx, self.region.height / ny)

    def cell_size_m(self, level: int) -> float:
        """Characteristic cell size (the larger side) at ``level``."""
        return max(self.cell_extent(level))

    def _locate(self, position: Vec2, level: int) -> Tuple[int, int]:
        nx, ny = self.grid_shape(level)
        w, h = self.cell_extent(level)
        cx = min(nx - 1, max(0, int((position.x - self.region.x_min) / w)))
        cy = min(ny - 1, max(0, int((position.y - self.region.y_min) / h)))
        return (cx, cy)

    def _cell_bounds(
        self, index: Tuple[int, int], level: int
    ) -> Tuple[float, float, float, float]:
        w, h = self.cell_extent(level)
        x0 = self.region.x_min + index[0] * w
        y0 = self.region.y_min + index[1] * h
        return (x0, y0, x0 + w, y0 + h)

    def _covering_cells(
        self, center: Vec2, radius_m: float, level: int
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
        """(outer, inner) cell indices: intersecting vs fully-contained."""
        nx, ny = self.grid_shape(level)
        w, h = self.cell_extent(level)
        lo_x = max(0, int((center.x - radius_m - self.region.x_min) / w))
        hi_x = min(nx - 1, int((center.x + radius_m - self.region.x_min) / w))
        lo_y = max(0, int((center.y - radius_m - self.region.y_min) / h))
        hi_y = min(ny - 1, int((center.y + radius_m - self.region.y_min) / h))
        outer: List[Tuple[int, int]] = []
        inner: List[Tuple[int, int]] = []
        r_sq = radius_m * radius_m
        for cx in range(lo_x, hi_x + 1):
            for cy in range(lo_y, hi_y + 1):
                x0, y0, x1, y1 = self._cell_bounds((cx, cy), level)
                # nearest point of the cell to the disk centre
                nx_ = min(max(center.x, x0), x1)
                ny_ = min(max(center.y, y0), y1)
                if (nx_ - center.x) ** 2 + (ny_ - center.y) ** 2 > r_sq:
                    continue
                outer.append((cx, cy))
                # farthest corner inside the disk => cell fully contained
                fx = x0 if center.x - x0 > x1 - center.x else x1
                fy = y0 if center.y - y0 > y1 - center.y else y1
                if (fx - center.x) ** 2 + (fy - center.y) ** 2 <= r_sq:
                    inner.append((cx, cy))
        return outer, inner

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def last_window_start(self, now: float) -> float:
        """Opening time of the most recent beacon window at ``now``."""
        return now - self._psm.window_phase(now)

    def _refresh_cell(self, index: Tuple[int, int], level: int, now: float) -> _Cell:
        """Materialise/advance a cell's snapshot to the latest window."""
        window = self.last_window_start(now)
        cell = self._cells[level].get(index)
        if cell is None:
            cell = _Cell()
            self._cells[level][index] = cell
        if cell.sampled_s < window:
            members = self._members[level].get(index, ())
            # readings as of the window opening — what the nodes' beacons
            # carried.  field.value() is deterministic and RNG-free.
            cell.readings = {
                node.node_id: node.field.value(node.position, window)
                for node in members
            }
            cell.sampled_s = window
            cell.overlay.clear()
        return cell

    def observe(self, node_id: int, position: Vec2, value: float, now: float) -> None:
        """Overhear one reading from the exact protocol's report traffic.

        Only cells that are already materialised (i.e. some approximate
        session queried them) are updated — the plane never grows state
        on behalf of exact traffic nobody summarises.
        """
        for level in range(NUM_LEVELS):
            cell = self._cells[level].get(self._locate(position, level))
            if cell is not None and now >= cell.sampled_s:
                cell.overlay[node_id] = value

    # ------------------------------------------------------------------
    # Sessions / drill-down
    # ------------------------------------------------------------------
    def register_session(self, key: Tuple[int, int], accuracy: str) -> None:
        if accuracy not in ACCURACY_LEVEL_CAP:
            raise ValueError(
                f"accuracy {accuracy!r} does not use the summary plane"
            )
        self._sessions[key] = _SessionState(accuracy=accuracy)

    def release_session(self, key: Tuple[int, int]) -> None:
        """Drop all per-session drill state (idempotent; cancel support)."""
        self._sessions.pop(key, None)

    def live_session_count(self) -> int:
        """Live approximate sessions (the leak census counts this)."""
        return len(self._sessions)

    def drill_level(self, radius_m: float, accuracy: str) -> int:
        """Finest level the query disk demands, capped by the accuracy class.

        Escalation is driven purely by the user's radius: a disk smaller
        than a cell would inherit the whole cell's population, so the
        drill descends until cells are commensurate with the disk (or
        the accuracy class's cap stops it).
        """
        cap = ACCURACY_LEVEL_CAP[accuracy]
        level = 0
        while level < cap and self.cell_size_m(level) > 2.0 * radius_m:
            level += 1
        return level

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def answer(
        self,
        center: Vec2,
        radius_m: float,
        accuracy: str,
        freshness_s: float,
        aggregation: Aggregation,
        session_key: Optional[Tuple[int, int]] = None,
    ) -> Optional[SummaryAnswer]:
        """Answer one query disk from cached summaries (None = no data)."""
        now = self.sim.now
        level = self.drill_level(radius_m, accuracy)
        outer, inner = self._covering_cells(center, radius_m, level)
        inner_set = set(inner)
        values: Dict[int, float] = {}
        inner_values: Dict[int, float] = {}
        oldest = now
        used = 0
        for index in outer:
            cell = self._refresh_cell(index, level, now)
            if not cell.readings and not cell.overlay:
                continue
            used += 1
            oldest = min(oldest, cell.sampled_s)
            composed = dict(cell.readings)
            composed.update(cell.overlay)
            values.update(composed)
            if index in inner_set:
                inner_values.update(composed)
        if not values:
            return None
        if session_key is not None and session_key in self._sessions:
            state = self._sessions[session_key]
            state.answers += 1
            state.last_level = level
        age = max(0.0, now - oldest)
        degraded = age > freshness_s + _FRESHNESS_EPS
        count = len(values)
        total = sum(values.values())
        minimum = min(values.values())
        maximum = max(values.values())
        inner_count = len(inner_values)
        inner_total = sum(inner_values.values())
        value, bound = _finalize(
            aggregation, count, total, minimum, maximum, inner_count, inner_total
        )
        return SummaryAnswer(
            value=value,
            error_bound=bound,
            contributors=count,
            contributor_ids=frozenset(values),
            level=level,
            cells=used,
            age_s=age,
            degraded=degraded,
            count=count,
            total=total,
            minimum=minimum,
            maximum=maximum,
            inner_count=inner_count,
            inner_total=inner_total,
        )


def _finalize(
    aggregation: Aggregation,
    count: int,
    total: float,
    minimum: float,
    maximum: float,
    inner_count: int,
    inner_total: float,
) -> Tuple[float, float]:
    """(value, error_bound) from composed outer/inner statistics."""
    spread = maximum - minimum
    if aggregation is Aggregation.COUNT:
        value = 0.5 * (count + inner_count)
        return value, 0.5 * (count - inner_count)
    if aggregation is Aggregation.SUM:
        value = 0.5 * (total + inner_total)
        return value, 0.5 * abs(total - inner_total)
    if aggregation is Aggregation.MIN:
        return minimum, spread
    if aggregation is Aggregation.MAX:
        return maximum, spread
    # AVG: both the summary and the exact answer are convex combinations
    # of readings drawn from the covering cells.
    return total / count, spread


def merge_answers(
    answers: Sequence[SummaryAnswer], aggregation: Aggregation
) -> Optional[SummaryAnswer]:
    """Merge per-world answers into one boundary-free answer.

    The statistics carried on :class:`SummaryAnswer` are associative, so
    a cluster router can compose per-shard summaries without any shard
    seeing across its boundary.  Contributor *ids* are dropped (each
    shard numbers its own world); the contributor *count* survives.
    """
    answers = [a for a in answers if a is not None]
    if not answers:
        return None
    count = sum(a.count for a in answers)
    total = sum(a.total for a in answers)
    minimum = min(a.minimum for a in answers)
    maximum = max(a.maximum for a in answers)
    inner_count = sum(a.inner_count for a in answers)
    inner_total = sum(a.inner_total for a in answers)
    value, bound = _finalize(
        aggregation, count, total, minimum, maximum, inner_count, inner_total
    )
    return SummaryAnswer(
        value=value,
        error_bound=bound,
        contributors=count,
        contributor_ids=frozenset(),
        level=min(a.level for a in answers),
        cells=sum(a.cells for a in answers),
        age_s=max(a.age_s for a in answers),
        degraded=any(a.degraded for a in answers),
        count=count,
        total=total,
        minimum=minimum,
        maximum=maximum,
        inner_count=inner_count,
        inner_total=inner_total,
    )
