"""Proxy-side gateway for approximate (summary-served) sessions.

An approximate session never runs the collection machinery: no inject,
no prefetch chains, no setup floods, no per-period trees.  The proxy
overhears the summary digests backbone nodes piggyback on their PSM
beacons, so each period's answer is composed locally from the cached
cells covering the query disk — zero frames on the shared channel.

The price is accuracy, and the gateway is honest about it: every
delivery carries the plane's declared ``error_bound``, and a period
answered from summaries older than the session's freshness bound is
recorded *degraded* (surfaced as ``SessionResult.degraded_periods``)
rather than silently stale.
"""

from __future__ import annotations

from typing import Optional

from ..core.gateway import BaseGateway
from ..core.query import QuerySpec
from ..mobility.path import PiecewisePath
from ..net.network import Network
from ..net.node import MobileEndpoint
from ..sim.trace import Tracer
from .plane import SummaryPlane

#: answers are composed just before the deadline so the freshest beacon
#: snapshot is used; the guard keeps the delivery strictly on-time
_ANSWER_GUARD_S = 1e-3


class ApproxGateway(BaseGateway):
    """Gateway that answers every period from the summary plane."""

    def __init__(
        self,
        proxy: MobileEndpoint,
        network: Network,
        spec: QuerySpec,
        plane: SummaryPlane,
        path: PiecewisePath,
        accuracy: str,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(proxy, network, spec, tracer)
        self.plane = plane
        self.path = path
        self.accuracy = accuracy

    def start(self) -> None:
        """Register with the plane and schedule one answer per period."""
        self.plane.register_session(self.session_key, self.accuracy)
        self.tracer.emit(
            "approx-start",
            self.sim.now,
            user=self.spec.user_id,
            query=self.spec.query_id,
            accuracy=self.accuracy,
        )
        for k in range(1, self.spec.num_periods + 1):
            answer_at = self.spec.deadline(k) - _ANSWER_GUARD_S
            self.sim.schedule_at(max(self.sim.now, answer_at), self._answer, k)

    def _answer(self, k: int) -> None:
        if self.closed:
            return
        deadline = self.spec.deadline(k)
        center = self.path.position_at(deadline)
        answer = self.plane.answer(
            center,
            self.spec.radius_m,
            self.accuracy,
            self.spec.freshness_s,
            self.spec.aggregation,
            session_key=self.session_key,
        )
        if answer is None:
            return  # no summarised data covers the disk: the period misses
        self.record_delivery(
            k,
            answer.value,
            answer.contributor_ids,
            area_center=center,
            degraded=answer.degraded,
            error_bound=answer.error_bound,
        )

    def close(self) -> None:
        """Release the plane's per-session drill state, then go silent."""
        if not self.closed:
            self.plane.release_session(self.session_key)
        super().close()
