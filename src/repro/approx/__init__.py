"""``repro.approx`` — multiresolution in-network summaries.

The summary plane lets a session trade fidelity for frames: backbone
nodes maintain per-region partial aggregates (count/sum/min/max, so
every aggregation operator composes) at nested spatial resolutions,
refreshed opportunistically on the protocol's existing report/beacon
traffic.  A :class:`~repro.api.requests.QueryRequest` with
``accuracy="coarse"`` or ``"medium"`` answers each period from the
cached summaries whose cells cover the query disk — no per-period
collection tree, no floods — and carries a declared ``error_bound``
on every :class:`~repro.api.requests.PeriodOutcome`.
"""

from .gateway import ApproxGateway
from .plane import (
    ACCURACY_LEVEL_CAP,
    SummaryAnswer,
    SummaryPlane,
    merge_answers,
)

__all__ = [
    "ACCURACY_LEVEL_CAP",
    "ApproxGateway",
    "SummaryAnswer",
    "SummaryPlane",
    "merge_answers",
]
