"""Protocol messages exchanged by MobiQuery components.

Each message type documents its role in the protocol and its modelled wire
size (sizes drive airtime, and airtime drives the contention the paper
analyses — the prefetch message is 60 bytes in the paper's own Section 5.2
estimate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..geometry.areas import QueryArea
from ..geometry.vec import Vec2
from ..mobility.profile import MotionProfile
from .query import AggregateState, QuerySpec

#: paper Section 5.2: "The size of a prefetch message is 60 bytes."
PREFETCH_SIZE_BYTES = 60
INJECT_SIZE_BYTES = 70
SETUP_SIZE_BYTES = 44
#: incremental bytes per setup entry in a batched sleeper delivery
SETUP_BATCH_ENTRY_BYTES = 30
SETUP_BATCH_BASE_BYTES = 12
REPORT_SIZE_BYTES = 28
RESULT_SIZE_BYTES = 36
CANCEL_SIZE_BYTES = 20
NP_QUERY_SIZE_BYTES = 48
NP_REPORT_SIZE_BYTES = 24


@dataclass(frozen=True)
class InjectMessage:
    """Proxy -> nearest backbone node: start (or restart) a prefetch chain.

    Carries the query spec and the motion profile the chain should follow,
    plus the first pickup index to target.
    """

    spec: QuerySpec
    profile: MotionProfile
    start_k: int
    proxy_id: int


@dataclass(frozen=True)
class PrefetchMessage:
    """Collector -> next pickup point (area anycast): forewarn query area k."""

    spec: QuerySpec
    profile: MotionProfile
    k: int
    proxy_id: int


@dataclass(frozen=True)
class SetupMessage:
    """Collector -> query area (flood): build the query tree for period k.

    ``pickup`` doubles as the query-area centre and the reference point for
    the sub-deadline formula (eq. 1): nodes farther from the collector time
    out earlier.
    """

    query_id: int
    k: int
    collector_id: int
    pickup: Vec2
    area: QueryArea
    deadline: float
    freshness_s: float
    pickup_radius_m: float
    profile_generation: int
    aggregation_attribute: str
    user_id: int = 0

    @property
    def session_key(self) -> "tuple[int, int]":
        return (self.user_id, self.query_id)


@dataclass(frozen=True)
class ReportMessage:
    """Child -> parent (unicast): partial aggregate for (query, period)."""

    query_id: int
    k: int
    child_id: int
    partial: AggregateState
    user_id: int = 0


@dataclass(frozen=True)
class ResultMessage:
    """Collector -> user proxy: the aggregated result for period k.

    ``pickup`` is the centre of the area that was actually queried; the
    paper's data-fidelity metric is computed over that area.
    """

    query_id: int
    k: int
    collector_id: int
    aggregate: AggregateState
    sent_at: float
    pickup: Vec2
    area: QueryArea
    user_id: int = 0
    #: True when collector duty had to be re-elected after a crash — the
    #: gateway marks the period as degraded in the session report
    degraded: bool = False


@dataclass(frozen=True)
class CancelMessage:
    """Along an abandoned predicted path: tear down stale prefetch state.

    ``misses`` counts consecutive pickup points with no matching state;
    the chain stops after two misses (the prefetch never got that far).
    ``spec`` and ``profile`` travel by reference so each hop can compute the
    next stale pickup point; on the wire only the generation and pickup
    index would be needed (the spec/profile are already cached along the
    chain), which is what :data:`CANCEL_SIZE_BYTES` models.
    """

    query_id: int
    profile_generation: int
    k: int
    misses: int = 0
    spec: Optional[QuerySpec] = None
    profile: Optional[MotionProfile] = None
    user_id: int = 0


@dataclass(frozen=True)
class NpQueryMessage:
    """No-Prefetching baseline: per-period query flooded from the user.

    ``radius_m`` carries the spatial constraint so PSM-buffered re-delivery
    at beacon windows can also enforce it (the flood scope alone only
    covers the direct path).
    """

    query_id: int
    k: int
    deadline: float
    freshness_s: float
    proxy_id: int
    issue_position: Vec2
    radius_m: float
    user_id: int = 0


@dataclass(frozen=True)
class NpReportMessage:
    """No-Prefetching baseline: one node's reading routed back to the user."""

    query_id: int
    k: int
    node_id: int
    value: float
    user_id: int = 0
