"""The MobiQuery node-side protocol engine.

One :class:`MobiQueryProtocol` instance per run wires the four in-network
phases of Section 4 onto every sensor node:

1. **Prefetching** — prefetch messages hop between pickup points by area
   anycast.  Under just-in-time prefetching the collector for pickup ``k``
   holds the message for pickup ``k+1`` until eq. (10)'s bound
   ``k * Tperiod - Tsleep - 2 * Tfresh``; under greedy prefetching it
   forwards immediately.  When the bound is already past (query start,
   motion change) JIT forwards greedily — the Section 5.3 warmup catch-up.
2. **Query dissemination** — the collector floods a setup message over the
   backbone nodes of its query area, building parent pointers; backbone
   nodes buffer setups for their duty-cycled neighbours and deliver them
   (batched) in the next PSM beacon window, where the sleepers install a
   wake override at ``deadline - Tfresh`` and join as leaves.
3. **Data collection** — every tree node sends its partial aggregate to
   its parent at the eq. (1) sub-deadline
   ``du = k*Tp - |u p| / (Rp + Rq) * Tfresh`` (farther nodes time out
   sooner), reading its own sensor at send time so freshness holds; the
   collector transmits the final aggregate to the user's proxy just before
   the deadline.
4. **Cancellation** — when the user abandons a predicted path, a cancel
   message chases the prefetch chain collector-to-collector, tearing down
   pending state; it gives up after two consecutive pickup points with no
   matching state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..geometry.areas import QueryArea
from ..geometry.vec import Vec2
from ..mobility.profile import MotionProfile
from ..net.network import Network
from ..net.node import SensorNode
from ..net.packet import BROADCAST, Frame
from ..net.routing import GeoRouter
from ..sim.trace import Tracer
from .messages import (
    CANCEL_SIZE_BYTES,
    PREFETCH_SIZE_BYTES,
    REPORT_SIZE_BYTES,
    RESULT_SIZE_BYTES,
    SETUP_BATCH_BASE_BYTES,
    SETUP_BATCH_ENTRY_BYTES,
    SETUP_SIZE_BYTES,
    CancelMessage,
    InjectMessage,
    PrefetchMessage,
    ReportMessage,
    ResultMessage,
    SetupMessage,
)
from .query import AggregateState, QuerySpec
from .trees import CollectorState, TreeNodeState

#: prefetch policies
POLICY_JIT = "jit"
POLICY_GREEDY = "greedy"


@dataclass(frozen=True)
class MobiQueryConfig:
    """Protocol tuning knobs.

    Attributes:
        prefetch_policy: ``"jit"`` or ``"greedy"``.
        pickup_radius_m: the anycast delivery radius ``Rp``.
        result_guard_s: how long before each deadline the collector
            transmits the result to the user.
        leaf_jitter_max_s: random stagger of leaf reports after the sense
            time, to decorrelate the wake-up burst.
        wake_slack_s: how long past the sense time a leaf's wake override
            lasts (the MAC drain can extend it slightly).
        setup_rebroadcast_jitter_s: max random delay before a backbone node
            rebroadcasts a setup flood frame.
        state_gc_grace_s: how long after its deadline a tree state lingers
            before garbage collection (for duplicate suppression).
        cancel_miss_limit: consecutive pickup points without matching state
            after which a cancel chain stops.
        parent_upgrade: adopt a closer-to-collector parent from duplicate
            setup receptions (ablation flag; disabling reproduces the
            first-sender flood tree and its sub-deadline inversions).
        redeliver_setups: keep buffered setups pending across beacon
            windows until their period expires, PSM-style (ablation flag;
            disabling gives sleepers exactly one delivery chance).
        reelect_attempt_limit: how many times collector duty may move to
            another backbone node after a crash before the period is
            abandoned (fault recovery; no effect without a fault plan).
        reelect_backoff_s: base delay before a re-elected collector sends
            the salvaged result; grows linearly with the attempt count.
    """

    prefetch_policy: str = POLICY_JIT
    pickup_radius_m: float = 30.0
    result_guard_s: float = 0.05
    leaf_jitter_max_s: float = 0.2
    wake_slack_s: float = 0.35
    setup_rebroadcast_jitter_s: float = 4e-3
    state_gc_grace_s: float = 2.0
    cancel_miss_limit: int = 2
    parent_upgrade: bool = True
    redeliver_setups: bool = True
    reelect_attempt_limit: int = 3
    reelect_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.prefetch_policy not in (POLICY_JIT, POLICY_GREEDY):
            raise ValueError(f"unknown prefetch policy {self.prefetch_policy!r}")
        if self.pickup_radius_m <= 0:
            raise ValueError("pickup radius must be > 0")
        if self.result_guard_s < 0:
            raise ValueError("result guard must be >= 0")


class MobiQueryProtocol:
    """Node-side MobiQuery: prefetch, dissemination, collection, cancel."""

    def __init__(
        self,
        network: Network,
        geo: GeoRouter,
        config: Optional[MobiQueryConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.network = network
        self.geo = geo
        self.config = config or MobiQueryConfig()
        self.tracer = tracer if tracer is not None else network.tracer
        self.sim = network.sim
        # Protocol state, all keyed by (user_id, query_id, ...) so the
        # concurrent sessions of a multi-user workload share one protocol
        # instance (and the backbone) without clobbering each other.
        self._collectors: Dict[Tuple[int, int, int], CollectorState] = {}
        self._tree_states: Dict[Tuple[int, int, int, int], TreeNodeState] = {}
        # node id -> {(user_id, query_id, generation): lowest cancelled
        # pickup index}.  Cancellation is k-aware: "generation G is dead
        # from pickup k on" — the same node may still serve earlier pickups
        # of that chain.
        self._cancelled_from: Dict[int, Dict[Tuple[int, int, int], int]] = {}
        self._pending_batches: Dict[int, List[SetupMessage]] = {}
        self._batch_scheduled: Set[int] = set()
        # Optional summary plane (repro.approx): when set, readings the
        # collection phase computes anyway are overheard into the cached
        # summaries — a pure dictionary update, no frames, no events, no
        # RNG, so exact-only runs (observer None) are byte-for-byte
        # untouched.
        self.summary_observer = None
        # Sessions torn down by the service (operator cancel): frames of a
        # dead session still in flight must not resurrect its chain — a
        # prefetch mid-route would otherwise re-assign a collector and
        # regrow the whole tree sequence.  One tuple per cancelled session.
        self._dead_sessions: Set[Tuple[int, int]] = set()
        for node in network.nodes:
            node.register_handler("mq-inject", self._on_inject)
            node.register_handler("mq-prefetch", self._on_prefetch)
            node.register_handler("mq-setup", self._on_setup_frame)
            node.register_handler("mq-setup-batch", self._on_setup_batch)
            node.register_handler("mq-report", self._on_report)
            node.register_handler("mq-cancel", self._on_cancel)

    # ------------------------------------------------------------------
    # Shared timing helpers
    # ------------------------------------------------------------------
    def jit_forward_time(self, spec: QuerySpec, k: int) -> float:
        """Eq. (10): latest safe send time for the message targeting
        pickup ``k`` (sent by collector ``k-1``)."""
        return (
            spec.start_s
            + (k - 1) * spec.period_s
            - self.network.config.sleep_period_s
            - 2.0 * spec.freshness_s
        )

    def pickup_point(self, profile: MotionProfile, spec: QuerySpec, k: int) -> Vec2:
        """Predicted user position at the k-th deadline."""
        return profile.position_at(spec.deadline(k))

    def query_area(
        self, profile: MotionProfile, spec: QuerySpec, k: int
    ) -> QueryArea:
        """The query area for period ``k``: anchored at the pickup point,
        oriented along the predicted heading (relevant for sector/corridor
        area templates; a disk ignores the heading)."""
        deadline = spec.deadline(k)
        return spec.area_at(
            profile.position_at(deadline), profile.path.velocity_at(deadline)
        )

    # ------------------------------------------------------------------
    # Phase 1 — prefetching
    # ------------------------------------------------------------------
    def _on_inject(self, node: SensorNode, frame: Frame) -> None:
        msg: InjectMessage = frame.payload
        if msg.spec.session_key in self._dead_sessions:
            return
        self.tracer.emit(
            "inject",
            self.sim.now,
            at=node.node_id,
            k=msg.start_k,
            gen=msg.profile.generation,
        )
        self._schedule_prefetch_forward(node, msg.spec, msg.profile, msg.start_k, msg.proxy_id)

    def _schedule_prefetch_forward(
        self,
        node: SensorNode,
        spec: QuerySpec,
        profile: MotionProfile,
        k: int,
        proxy_id: int,
    ) -> None:
        """Arrange for ``node`` to forward the prefetch toward pickup ``k``."""
        now = self.sim.now
        # Skip pickup points whose deadline can no longer be served at all.
        while k <= spec.num_periods and spec.deadline(k) <= now + 1e-9:
            k += 1
        if k > spec.num_periods:
            return
        if self.config.prefetch_policy == POLICY_GREEDY:
            send_at = now
        else:
            send_at = max(now, self.jit_forward_time(spec, k))
        handle = self.sim.schedule_at(
            send_at, self._forward_prefetch, node, spec, profile, k, proxy_id
        )
        key = (spec.user_id, spec.query_id, k - 1)
        holder = self._collectors.get(key)
        if holder is not None and holder.node_id == node.node_id:
            holder.forward_timer = handle

    def _forward_prefetch(
        self,
        node: SensorNode,
        spec: QuerySpec,
        profile: MotionProfile,
        k: int,
        proxy_id: int,
    ) -> None:
        if self._is_cancelled(
            node.node_id, spec.user_id, spec.query_id, profile.generation, k
        ):
            return
        pickup = self.pickup_point(profile, spec, k)
        message = PrefetchMessage(spec=spec, profile=profile, k=k, proxy_id=proxy_id)
        self.tracer.emit(
            "prefetch-forwarded",
            self.sim.now,
            frm=node.node_id,
            k=k,
            gen=profile.generation,
        )
        self.geo.send(
            origin=node,
            dest=pickup,
            deliver_radius=self.config.pickup_radius_m,
            inner_kind="mq-prefetch",
            inner_payload=message,
            inner_size=PREFETCH_SIZE_BYTES,
        )

    def _on_prefetch(self, node: SensorNode, frame: Frame) -> None:
        msg: PrefetchMessage = frame.payload
        spec, profile, k = msg.spec, msg.profile, msg.k
        if spec.session_key in self._dead_sessions:
            return
        now = self.sim.now
        if self._is_cancelled(
            node.node_id, spec.user_id, spec.query_id, profile.generation, k
        ):
            return
        key = (spec.user_id, spec.query_id, k)
        existing = self._collectors.get(key)
        if existing is not None:
            if existing.profile.generation >= profile.generation:
                return  # duplicate or stale prefetch
            self._release_collector(existing, reason="superseded")
        deadline = spec.deadline(k)
        if now > deadline:
            self.tracer.emit("prefetch-too-late", now, k=k, at=node.node_id)
            return
        collector = CollectorState(
            spec=spec,
            profile=profile,
            k=k,
            node_id=node.node_id,
            proxy_id=msg.proxy_id,
            assigned_at=now,
        )
        self._collectors[key] = collector
        self.tracer.emit(
            "collector-assigned",
            now,
            k=k,
            node=node.node_id,
            gen=profile.generation,
            query=spec.query_id,
            user=spec.user_id,
        )
        self._setup_tree(node, collector)
        self._schedule_prefetch_forward(node, spec, profile, k + 1, msg.proxy_id)
        collector.result_timer = self.sim.schedule_at(
            max(now, deadline - self.config.result_guard_s),
            self._send_result,
            node,
            collector,
        )

    # ------------------------------------------------------------------
    # Phase 2 — query dissemination (tree setup)
    # ------------------------------------------------------------------
    def _setup_tree(self, node: SensorNode, collector: CollectorState) -> None:
        spec = collector.spec
        pickup = self.pickup_point(collector.profile, spec, collector.k)
        setup = SetupMessage(
            query_id=spec.query_id,
            k=collector.k,
            collector_id=node.node_id,
            pickup=pickup,
            area=self.query_area(collector.profile, spec, collector.k),
            deadline=collector.deadline,
            freshness_s=spec.freshness_s,
            pickup_radius_m=self.config.pickup_radius_m,
            profile_generation=collector.profile.generation,
            aggregation_attribute=spec.attribute,
            user_id=spec.user_id,
        )
        self.tracer.emit(
            "tree-setup-start",
            self.sim.now,
            k=collector.k,
            query=spec.query_id,
            user=spec.user_id,
            pickup_x=pickup.x,
            pickup_y=pickup.y,
            collector=node.node_id,
        )
        # The collector roots the tree even if the anycast delivered outside
        # the nominal Rp disk (expanded delivery under sparse backbones).
        key = (node.node_id, spec.user_id, spec.query_id, collector.k)
        existing = self._tree_states.get(key)
        if existing is not None:
            # This node was a member of the superseded generation's tree:
            # promote the state to root in place.
            existing.cancel_timer()
            existing.parent_id = None
            existing.collector_id = node.node_id
            existing.pickup = pickup
            existing.profile_generation = collector.profile.generation
        else:
            self._create_tree_state(node, setup, parent_id=None)
        self._broadcast_setup(node, setup)
        self._queue_sleeper_delivery(node, setup)

    def _broadcast_setup(self, node: SensorNode, setup: SetupMessage) -> None:
        frame = Frame(
            kind="mq-setup",
            src=node.node_id,
            dst=BROADCAST,
            size_bytes=SETUP_SIZE_BYTES,
            payload=setup,
        )
        node.send(frame)

    def _on_setup_frame(self, node: SensorNode, frame: Frame) -> None:
        self._handle_setup(node, frame.payload, src_id=frame.src)

    def _on_setup_batch(self, node: SensorNode, frame: Frame) -> None:
        setups: Sequence[SetupMessage] = frame.payload
        for setup in setups:
            self._handle_setup(node, setup, src_id=frame.src)

    def _handle_setup(self, node: SensorNode, setup: SetupMessage, src_id: int) -> None:
        if (setup.user_id, setup.query_id) in self._dead_sessions:
            return
        key = (node.node_id, setup.user_id, setup.query_id, setup.k)
        existing = self._tree_states.get(key)
        if existing is not None:
            if setup.profile_generation > existing.profile_generation:
                self._reparent_to_new_generation(node, existing, setup, src_id)
            else:
                self._maybe_upgrade_parent(node, existing, src_id, setup)
            return
        if not setup.area.contains(node.position):
            return
        now = self.sim.now
        if now >= setup.deadline - 1e-6:
            return  # stale: this period cannot be served anymore
        state = self._create_tree_state(node, setup, parent_id=src_id)
        if state is None:
            return
        if node.is_active:
            self._join_as_interior(node, setup, state)
        else:
            self._join_as_leaf(node, setup, state)

    def _create_tree_state(
        self, node: SensorNode, setup: SetupMessage, parent_id: Optional[int]
    ) -> Optional[TreeNodeState]:
        key = (node.node_id, setup.user_id, setup.query_id, setup.k)
        if key in self._tree_states:
            return None
        state = TreeNodeState(
            query_id=setup.query_id,
            k=setup.k,
            node_id=node.node_id,
            parent_id=parent_id,
            collector_id=setup.collector_id,
            pickup=setup.pickup,
            deadline=setup.deadline,
            created_at=self.sim.now,
            profile_generation=setup.profile_generation,
            user_id=setup.user_id,
        )
        self._tree_states[key] = state
        self.tracer.emit(
            "tree-created",
            self.sim.now,
            node=node.node_id,
            k=setup.k,
            query=setup.query_id,
            user=setup.user_id,
        )
        self.sim.schedule_at(
            setup.deadline + self.config.state_gc_grace_s,
            self._gc_tree_state,
            key,
        )
        return state

    def _gc_tree_state(self, key: Tuple[int, int, int, int]) -> None:
        state = self._tree_states.pop(key, None)
        if state is not None:
            state.cancel_timer()
            self.tracer.emit(
                "tree-released",
                self.sim.now,
                node=state.node_id,
                k=state.k,
                query=state.query_id,
                user=state.user_id,
            )

    def _reparent_to_new_generation(
        self,
        node: SensorNode,
        state: TreeNodeState,
        setup: SetupMessage,
        src_id: int,
    ) -> None:
        """Carry an existing tree membership over to a corrected tree.

        When a new motion profile slightly shifts query area ``k``, the
        replacement collector's setup flood reaches the nodes of the old
        tree.  Rather than tearing their state down (their sleeping leaves
        could never be re-woken in time), members re-parent in place: same
        wake schedule and pending report timer, new collector and pickup.
        Members that fell outside the corrected area drop out; brand-new
        members join normally (sleepers only if a wake window remains —
        which is exactly the warmup effect of Section 5.3).
        """
        if state.sent or self.sim.now >= setup.deadline - 1e-6:
            return
        if not setup.area.contains(node.position):
            return  # no longer part of the corrected area
        state.profile_generation = setup.profile_generation
        state.collector_id = setup.collector_id
        state.pickup = setup.pickup
        if state.parent_id is not None:
            state.parent_id = src_id
            if node.is_active:
                # Spread the corrected tree to peers that also hold old state.
                jitter = float(
                    node.rng.uniform(5e-4, self.config.setup_rebroadcast_jitter_s)
                )
                self.sim.schedule(jitter, self._rebroadcast_setup, node, setup)
                self._queue_sleeper_delivery(node, setup)

    def _maybe_upgrade_parent(
        self,
        node: SensorNode,
        state: TreeNodeState,
        src_id: int,
        setup: SetupMessage,
    ) -> None:
        """Adopt a better parent from a duplicate setup reception.

        The flood's first sender is usually — but not always — closer to
        the collector than the receiver.  A farther parent inverts the
        eq. (1) sub-deadline order and loses the report, so until the node
        has reported it upgrades its parent to the closest-to-pickup sender
        heard.  (The node's location service knows neighbour positions.)
        """
        if not self.config.parent_upgrade:
            return
        if state.sent or state.parent_id is None or src_id == state.parent_id:
            return
        if src_id == node.node_id:
            return
        try:
            current = self.network.node_by_id(state.parent_id)
            candidate = self.network.node_by_id(src_id)
        except (IndexError, KeyError):
            return
        if candidate.position.distance_sq_to(state.pickup) < current.position.distance_sq_to(
            state.pickup
        ):
            state.parent_id = src_id

    def _join_as_interior(
        self, node: SensorNode, setup: SetupMessage, state: TreeNodeState
    ) -> None:
        """Backbone node: rebroadcast, buffer for sleepers, arm sub-deadline."""
        jitter = float(node.rng.uniform(5e-4, self.config.setup_rebroadcast_jitter_s))
        self.sim.schedule(jitter, self._rebroadcast_setup, node, setup)
        self._queue_sleeper_delivery(node, setup)
        du = self._sub_deadline(node, setup)
        state.send_timer = self.sim.schedule_at(
            max(du, self.sim.now + 1e-6), self._send_partial_up, node, state
        )

    def _rebroadcast_setup(self, node: SensorNode, setup: SetupMessage) -> None:
        if node.radio.is_sleeping:
            return
        self._broadcast_setup(node, setup)

    def _sub_deadline(self, node: SensorNode, setup: SetupMessage) -> float:
        """Eq. (1): ``du = k*Tp - |up| / (Rp + Rq) * Tfresh``."""
        distance = node.position.distance_to(setup.pickup)
        reach = setup.pickup_radius_m + setup.area.radius
        fraction = min(1.0, distance / reach)
        return setup.deadline - fraction * setup.freshness_s

    def _join_as_leaf(
        self, node: SensorNode, setup: SetupMessage, state: TreeNodeState
    ) -> None:
        """Duty-cycled node: wake at the sense time, report once, sleep."""
        now = self.sim.now
        sense_time = setup.deadline - setup.freshness_s
        if now >= sense_time:
            # Setup arrived inside the freshness window (e.g. we were awake
            # in a beacon window late in the period): report right away.
            self._leaf_report(node, state)
            return
        scheduler = node.sleep_scheduler
        if scheduler is not None:
            scheduler.add_wake_interval(
                sense_time, min(setup.deadline, sense_time + self.config.wake_slack_s)
            )
        jitter = float(node.rng.uniform(0.0, self.config.leaf_jitter_max_s))
        state.send_timer = self.sim.schedule_at(
            sense_time + jitter, self._leaf_report, node, state
        )

    def _queue_sleeper_delivery(self, node: SensorNode, setup: SetupMessage) -> None:
        """Buffer a setup for this node's sleeping neighbours (PSM style).

        All setups accumulated before the next beacon window go out as one
        batched broadcast at the window start — the 802.11 PSM pattern of
        announcing and delivering buffered traffic inside the ATIM window.
        """
        if not node.is_active:
            return
        has_sleeping_target = any(
            (not nb.is_active) and setup.area.contains(nb.position)
            for nb in node.neighbors
        )
        if not has_sleeping_target:
            return
        self._pending_batches.setdefault(node.node_id, []).append(setup)
        if node.node_id in self._batch_scheduled:
            return
        self._batch_scheduled.add(node.node_id)
        self.sim.schedule_at(self._next_batch_time(node), self._flush_batch, node)

    def _next_batch_time(self, node: SensorNode) -> float:
        """When this node should transmit its sleeper batch.

        Inside a beacon window: almost immediately.  Otherwise: shortly
        after the next window opens.  The random offset spreads the
        in-window traffic of neighbouring backbone nodes.
        """
        now = self.sim.now
        psm = self.network.config.psm
        window = psm.active_window_s
        offset = float(node.rng.uniform(2e-3, max(4e-3, 0.5 * window)))
        if psm.window_phase(now) < window * 0.7:
            return now + float(node.rng.uniform(5e-4, 4e-3))
        return psm.next_window_start(now) + offset

    def _flush_batch(self, node: SensorNode) -> None:
        self._batch_scheduled.discard(node.node_id)
        setups = self._pending_batches.pop(node.node_id, [])
        now = self.sim.now
        live = [s for s in setups if now < s.deadline - 1e-3]
        if not live:
            return
        size = SETUP_BATCH_BASE_BYTES + SETUP_BATCH_ENTRY_BYTES * len(live)
        frame = Frame(
            kind="mq-setup-batch",
            src=node.node_id,
            dst=BROADCAST,
            size_bytes=size,
            payload=tuple(live),
        )
        self.tracer.emit("setup-batch", now, node=node.node_id, count=len(live))
        node.send(frame)
        # PSM keeps buffered traffic pending until delivered: setups whose
        # period is still serviceable are re-announced in the next window
        # too (the broadcast may have collided at some sleepers).  Under JIT
        # a setup stays pending for at most a couple of windows; under
        # greedy prefetching this is what makes tree setups "last multiple
        # query periods" and interfere (paper Section 5.4).
        carry = (
            [s for s in live if self.sim.now < s.deadline - 1e-3]
            if self.config.redeliver_setups
            else []
        )
        if carry:
            self._pending_batches[node.node_id] = carry
            self._batch_scheduled.add(node.node_id)
            psm = self.network.config.psm
            offset = float(node.rng.uniform(2e-3, max(4e-3, 0.5 * psm.active_window_s)))
            self.sim.schedule_at(psm.next_window_start(now) + offset, self._flush_batch, node)

    # ------------------------------------------------------------------
    # Phase 3 — data collection
    # ------------------------------------------------------------------
    def _leaf_report(self, node: SensorNode, state: TreeNodeState) -> None:
        if state.sent or self.sim.now >= state.deadline:
            return
        state.sent = True
        value = node.read_sensor()
        state.partial.merge(AggregateState.from_reading(node.node_id, value))
        self._observe_reading(node, value)
        self._send_report(node, state)

    def _send_partial_up(self, node: SensorNode, state: TreeNodeState) -> None:
        if state.sent:
            return
        state.sent = True
        value = node.read_sensor()
        state.partial.merge(AggregateState.from_reading(node.node_id, value))
        self._observe_reading(node, value)
        self._send_report(node, state)

    def _observe_reading(self, node: SensorNode, value: float) -> None:
        """Overhear one reading into the summary plane, when one exists."""
        if self.summary_observer is not None:
            self.summary_observer.observe(
                node.node_id, node.position, value, self.sim.now
            )

    def _send_report(self, node: SensorNode, state: TreeNodeState) -> None:
        if state.parent_id is None:
            return  # the collector's aggregate leaves via the result path
        dest = state.parent_id
        parent = self._node_or_none(dest)
        if parent is not None and parent.crashed and dest != state.collector_id:
            # Dead parent (fault plane): skip it and aim the report straight
            # at the tree root — one bounded fallback, taken only when the
            # parent is actually crashed, so fault-free runs are untouched.
            root = self._node_or_none(state.collector_id)
            if root is None or root.crashed:
                self.tracer.emit(
                    "report-dropped", self.sim.now, node=node.node_id, k=state.k
                )
                return
            dest = state.collector_id
            self.tracer.emit(
                "report-reroute",
                self.sim.now,
                node=node.node_id,
                dead_parent=state.parent_id,
                k=state.k,
            )
        message = ReportMessage(
            query_id=state.query_id,
            k=state.k,
            child_id=node.node_id,
            partial=state.partial.copy(),
            user_id=state.user_id,
        )
        frame = Frame(
            kind="mq-report",
            src=node.node_id,
            dst=dest,
            size_bytes=REPORT_SIZE_BYTES + 2 * len(message.partial.contributors),
            payload=message,
        )
        node.send(frame)

    def _node_or_none(self, node_id: int) -> Optional[SensorNode]:
        """The sensor node with ``node_id``, or None for proxies/unknowns."""
        try:
            return self.network.node_by_id(node_id)
        except (IndexError, KeyError):
            return None

    def _on_report(self, node: SensorNode, frame: Frame) -> None:
        msg: ReportMessage = frame.payload
        key = (node.node_id, msg.user_id, msg.query_id, msg.k)
        state = self._tree_states.get(key)
        if state is None or state.sent:
            self.tracer.emit(
                "report-late", self.sim.now, node=node.node_id, k=msg.k
            )
            return
        state.partial.merge(msg.partial)

    def _send_result(self, node: SensorNode, collector: CollectorState) -> None:
        if collector.cancelled or collector.result_sent:
            return
        if node.crashed:
            # The collector died before its result left (fault plane):
            # try to move collector duty to a surviving backbone node.
            self._reelect_collector(node, collector)
            return
        collector.result_sent = True
        spec = collector.spec
        key = (node.node_id, spec.user_id, spec.query_id, collector.k)
        state = self._tree_states.get(key)
        partial = state.partial if state is not None else AggregateState()
        area = self.query_area(collector.profile, collector.spec, collector.k)
        if state is not None:
            state.sent = True
            if area.contains(node.position):
                value = node.read_sensor()
                partial.merge(AggregateState.from_reading(node.node_id, value))
                self._observe_reading(node, value)
        message = ResultMessage(
            query_id=spec.query_id,
            k=collector.k,
            collector_id=node.node_id,
            aggregate=partial.copy(),
            sent_at=self.sim.now,
            pickup=self.pickup_point(collector.profile, spec, collector.k),
            area=area,
            user_id=spec.user_id,
            degraded=collector.degraded,
        )
        frame = Frame(
            kind="mq-result",
            src=node.node_id,
            dst=collector.proxy_id,
            size_bytes=RESULT_SIZE_BYTES + 2 * len(partial.contributors),
            payload=message,
        )
        self.tracer.emit(
            "result-sent",
            self.sim.now,
            k=collector.k,
            collector=node.node_id,
            contributors=len(partial.contributors),
        )

        def on_done(success: bool) -> None:
            if not success:
                self.tracer.emit(
                    "result-undeliverable", self.sim.now, k=collector.k
                )

        node.send(frame, on_done)
        # The query area is only queried once (Section 4.4): collector duty
        # for this period ends with the result transmission.
        self._release_collector(collector, reason="completed")

    def _reelect_collector(
        self, dead_node: SensorNode, collector: CollectorState
    ) -> None:
        """Move collector duty off a crashed node (fault recovery).

        The partial aggregate lives in protocol-level tree state, so it is
        transferable: the nearest surviving backbone node to the pickup
        point inherits the root state (merging into its own membership if
        it was already in the tree) and retries the result send after a
        linear backoff.  Attempts are bounded; an unrecoverable period is
        released as *lost* and surfaces as a missed (degraded) period in
        the session report rather than a hang.
        """
        spec = collector.spec
        if spec.session_key in self._dead_sessions:
            # A recovering chain must not resurrect a cancelled session.
            self._release_collector(collector, reason="session-released")
            return
        if collector.reelect_attempts >= self.config.reelect_attempt_limit:
            self.tracer.emit(
                "collector-lost", self.sim.now, k=collector.k, node=dead_node.node_id
            )
            self._release_collector(collector, reason="lost")
            return
        collector.reelect_attempts += 1
        pickup = self.pickup_point(collector.profile, spec, collector.k)
        candidates = [
            n
            for n in self.network.active_nodes_in_disk(
                pickup, self.network.config.comm_range_m
            )
            if not n.crashed and n.node_id != dead_node.node_id
        ]
        if not candidates:
            candidates = [
                n
                for n in self.network.active_nodes
                if not n.crashed and n.node_id != dead_node.node_id
            ]
        if not candidates:
            self.tracer.emit(
                "collector-lost", self.sim.now, k=collector.k, node=dead_node.node_id
            )
            self._release_collector(collector, reason="lost")
            return
        new_node = min(
            candidates,
            key=lambda n: (n.position.distance_sq_to(pickup), n.node_id),
        )
        old_key = (dead_node.node_id, spec.user_id, spec.query_id, collector.k)
        new_key = (new_node.node_id, spec.user_id, spec.query_id, collector.k)
        old_state = self._tree_states.pop(old_key, None)
        existing = self._tree_states.get(new_key)
        if existing is not None:
            # The heir was already a tree member: promote it to root in
            # place, folding in whatever the dead root had aggregated.
            existing.cancel_timer()
            existing.parent_id = None
            existing.collector_id = new_node.node_id
            if old_state is not None:
                existing.partial.merge(old_state.partial)
        elif old_state is not None:
            old_state.cancel_timer()
            old_state.node_id = new_node.node_id
            old_state.parent_id = None
            old_state.collector_id = new_node.node_id
            self._tree_states[new_key] = old_state
            self.sim.schedule_at(
                old_state.deadline + self.config.state_gc_grace_s,
                self._gc_tree_state,
                new_key,
            )
        collector.node_id = new_node.node_id
        collector.degraded = True
        self.tracer.emit(
            "collector-reelected",
            self.sim.now,
            k=collector.k,
            dead=dead_node.node_id,
            heir=new_node.node_id,
            attempt=collector.reelect_attempts,
        )
        collector.result_timer = self.sim.schedule(
            self.config.reelect_backoff_s * collector.reelect_attempts,
            self._send_result,
            new_node,
            collector,
        )

    # ------------------------------------------------------------------
    # Phase 4 — cancellation
    # ------------------------------------------------------------------
    def start_cancel_chain(
        self,
        node: SensorNode,
        spec: QuerySpec,
        profile: MotionProfile,
        start_k: int,
    ) -> None:
        """Launch a cancel chase along ``profile``'s pickup points."""
        message = CancelMessage(
            query_id=spec.query_id,
            profile_generation=profile.generation,
            k=start_k,
            misses=0,
            spec=spec,
            profile=profile,
            user_id=spec.user_id,
        )
        self._route_cancel(node, message)

    def _route_cancel(self, node: SensorNode, message: CancelMessage) -> None:
        pickup = self.pickup_point(message.profile, message.spec, message.k)
        self.geo.send(
            origin=node,
            dest=pickup,
            deliver_radius=self.config.pickup_radius_m,
            inner_kind="mq-cancel",
            inner_payload=message,
            inner_size=CANCEL_SIZE_BYTES,
        )

    def _is_cancelled(
        self, node_id: int, user_id: int, query_id: int, generation: int, k: int
    ) -> bool:
        """Whether pickup ``k`` of ``generation``'s chain is cancelled here."""
        marks = self._cancelled_from.get(node_id)
        if not marks:
            return False
        min_k = marks.get((user_id, query_id, generation))
        return min_k is not None and k >= min_k

    def _on_cancel(self, node: SensorNode, frame: Frame) -> None:
        msg: CancelMessage = frame.payload
        marks = self._cancelled_from.setdefault(node.node_id, {})
        gen_key = (msg.user_id, msg.query_id, msg.profile_generation)
        marks[gen_key] = min(marks.get(gen_key, msg.k), msg.k)
        key = (msg.user_id, msg.query_id, msg.k)
        collector = self._collectors.get(key)
        matched = (
            collector is not None
            and collector.profile.generation == msg.profile_generation
            and not collector.cancelled
        )
        if matched:
            assert collector is not None
            self._release_collector(collector, reason="cancelled")
            misses = 0
        else:
            misses = msg.misses + 1
        next_k = msg.k + 1
        if misses >= self.config.cancel_miss_limit:
            return
        if next_k > msg.spec.num_periods:
            return
        forward = CancelMessage(
            query_id=msg.query_id,
            profile_generation=msg.profile_generation,
            k=next_k,
            misses=misses,
            spec=msg.spec,
            profile=msg.profile,
            user_id=msg.user_id,
        )
        self._route_cancel(node, forward)

    def _release_collector(self, collector: CollectorState, reason: str) -> None:
        collector.cancelled = True
        collector.cancel_timers()
        spec = collector.spec
        self._collectors.pop((spec.user_id, spec.query_id, collector.k), None)
        self.tracer.emit(
            "collector-released",
            self.sim.now,
            k=collector.k,
            node=collector.node_id,
            reason=reason,
            query=spec.query_id,
            user=spec.user_id,
        )

    def release_session(self, user_id: int, query_id: int) -> None:
        """Tear down every piece of in-network state one session owns.

        Service-level cancellation (the user hung up, or an operator evicted
        the session): collectors are released with their timers, tree states
        are dropped node by node (each emitting ``tree-released`` so storage
        accounting stays exact), cancel marks are forgotten, and buffered
        sleeper setups are filtered out of pending PSM batches.  The
        in-protocol cancel *chase* (phase 4) still handles the paper's
        profile-replacement case; this is the operator's backstop, executed
        with the service's global knowledge rather than by message passing.

        Leaf wake overrides already installed in sleep schedulers are left
        to expire on their own — they are bounded by one freshness window
        and cannot be attributed to a session after installation.
        """
        session = (user_id, query_id)
        self._dead_sessions.add(session)
        for key in [k for k in self._collectors if k[0] == user_id and k[1] == query_id]:
            self._release_collector(self._collectors[key], reason="session-released")
        for key in [
            k
            for k, state in self._tree_states.items()
            if state.session_key == session
        ]:
            self._gc_tree_state(key)
        for marks in self._cancelled_from.values():
            for gen_key in [k for k in marks if (k[0], k[1]) == session]:
                del marks[gen_key]
        for node_id, setups in list(self._pending_batches.items()):
            kept = [
                s for s in setups if (s.user_id, s.query_id) != session
            ]
            if kept:
                self._pending_batches[node_id] = kept
            else:
                del self._pending_batches[node_id]

    # ------------------------------------------------------------------
    # Introspection (tests, metrics)
    # ------------------------------------------------------------------
    def live_collector_periods(
        self, session: Optional[Tuple[int, int]] = None
    ) -> List[int]:
        """Periods with an assigned, uncancelled collector right now.

        ``session`` restricts the answer to one ``(user_id, query_id)``
        session; by default all sessions are pooled (the single-user view).
        """
        return sorted(
            cs.k
            for cs in self._collectors.values()
            if not cs.cancelled and (session is None or cs.session_key == session)
        )

    def tree_state_count(self, session: Optional[Tuple[int, int]] = None) -> int:
        """Tree states currently stored across all nodes.

        ``session`` restricts the count to one ``(user_id, query_id)``
        session's trees.
        """
        if session is None:
            return len(self._tree_states)
        return sum(
            1 for st in self._tree_states.values() if st.session_key == session
        )

    def active_sessions(self) -> List[Tuple[int, int]]:
        """All ``(user_id, query_id)`` sessions with live in-network state."""
        keys = {cs.session_key for cs in self._collectors.values()}
        keys.update(st.session_key for st in self._tree_states.values())
        return sorted(keys)
