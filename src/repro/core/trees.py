"""Per-node protocol state for query trees and collector duty.

A *query tree* exists per (query, period): rooted at the collector node for
pickup point ``k``, spanning the backbone nodes of query area ``k``, with
duty-cycled nodes as leaves.  :class:`TreeNodeState` is what one node
stores for one tree — exactly the "storage cost of query states" the
paper's Section 5.2 analyses; the storage metric counts these objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..geometry.vec import Vec2
from ..mobility.profile import MotionProfile
from ..sim.kernel import EventHandle
from .query import AggregateState, QuerySpec


@dataclass
class TreeNodeState:
    """One node's membership in one query tree."""

    query_id: int
    k: int
    node_id: int
    parent_id: Optional[int]
    collector_id: int
    pickup: Vec2
    deadline: float
    created_at: float
    profile_generation: int = 0
    partial: AggregateState = field(default_factory=AggregateState)
    sent: bool = False
    send_timer: Optional[EventHandle] = None
    user_id: int = 0

    @property
    def session_key(self) -> "tuple[int, int]":
        """The owning ``(user_id, query_id)`` session."""
        return (self.user_id, self.query_id)

    @property
    def is_root(self) -> bool:
        """Whether this state belongs to the collector."""
        return self.parent_id is None

    def cancel_timer(self) -> None:
        """Stop the pending sub-deadline send, if any."""
        if self.send_timer is not None:
            self.send_timer.cancel()
            self.send_timer = None


@dataclass
class CollectorState:
    """Collector duty for pickup point ``k`` of one query."""

    spec: QuerySpec
    profile: MotionProfile
    k: int
    node_id: int
    proxy_id: int
    assigned_at: float
    cancelled: bool = False
    result_sent: bool = False
    forward_timer: Optional[EventHandle] = None
    result_timer: Optional[EventHandle] = None
    #: times collector duty moved to another node after a crash (fault
    #: recovery); bounded by the protocol's re-election limit
    reelect_attempts: int = 0
    #: set when this period's result was salvaged through re-election —
    #: carried on the result message and surfaced as a degraded period
    degraded: bool = False

    @property
    def session_key(self) -> "tuple[int, int]":
        """The owning ``(user_id, query_id)`` session."""
        return self.spec.session_key

    @property
    def deadline(self) -> float:
        """The delivery deadline this collector serves."""
        return self.spec.deadline(self.k)

    def cancel_timers(self) -> None:
        """Stop the pending prefetch forward and result delivery."""
        if self.forward_timer is not None:
            self.forward_timer.cancel()
            self.forward_timer = None
        if self.result_timer is not None:
            self.result_timer.cancel()
            self.result_timer = None
