"""Evaluation metrics — the paper's Section 6 measures plus Section 5 traces.

* **Data fidelity** (per period): contributing nodes inside the query area
  around the user's *actual* position at the deadline, over all nodes in
  that area.
* **Success ratio**: fraction of periods whose result arrived by the
  deadline with fidelity above the threshold (95% in the paper).
* **Power**: average radio draw per sleeping node over the run (Figure 8).
* **Storage** (Section 5.2): live query-tree states and the *prefetch
  length* — how many periods ahead of the user trees exist.
* **Contention** (Section 5.4): the *interference length* — how many tree
  setups overlap a given tree's setup in both time and space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geometry.vec import Vec2
from ..mobility.path import PiecewisePath
from ..net.network import Network
from ..sim.trace import TraceRecord, Tracer
from .gateway import BaseGateway, DeliveryRecord
from .query import QuerySpec

#: the paper's data-fidelity success bar
DEFAULT_FIDELITY_THRESHOLD = 0.95


@dataclass(frozen=True)
class PeriodRecord:
    """Everything the evaluation needs to know about one query period.

    ``fidelity`` follows the paper: contributors over the node population
    of the *queried* area (the area the service executed the query on).
    ``fidelity_actual`` additionally scores against the area centred on the
    user's true position at the deadline — it differs from ``fidelity``
    exactly by the motion-prediction error, which ``prediction_error_m``
    reports directly.
    """

    k: int
    deadline: float
    user_position: Vec2
    area_node_count: int
    delivered_at: Optional[float]
    value: Optional[float]
    contributors_in_area: int
    fidelity: float
    fidelity_actual: float
    prediction_error_m: float
    on_time: bool
    success: bool


@dataclass
class SessionMetrics:
    """Per-period records plus the headline ratios."""

    records: List[PeriodRecord]
    fidelity_threshold: float = DEFAULT_FIDELITY_THRESHOLD

    @property
    def num_periods(self) -> int:
        return len(self.records)

    def success_ratio(self) -> float:
        """Fraction of periods that met deadline and fidelity bar."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.success) / len(self.records)

    def deadline_ratio(self) -> float:
        """Fraction of periods with an on-time delivery (any fidelity)."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.on_time) / len(self.records)

    def mean_fidelity(self) -> float:
        """Average data fidelity across all periods."""
        if not self.records:
            return 0.0
        return sum(r.fidelity for r in self.records) / len(self.records)

    def fidelity_series(self) -> List[Tuple[int, float]]:
        """``(k, fidelity)`` pairs — the Figure 5 trace."""
        return [(r.k, r.fidelity) for r in self.records]

    def delivery_margins(self) -> List[float]:
        """Per-period slack between delivery and deadline (positive = early).

        The paper observes that MQ-GP's result latency "has a high
        variance" even though deadlines are met; the spread of these
        margins is that observation's metric.
        """
        return [
            r.deadline - r.delivered_at
            for r in self.records
            if r.delivered_at is not None
        ]

    def mean_delivery_margin(self) -> float:
        """Average slack before the deadline (0.0 with no deliveries)."""
        margins = self.delivery_margins()
        return sum(margins) / len(margins) if margins else 0.0

    def warmup_periods_observed(self, run_length: int = 3) -> int:
        """Measured warmup: periods before fidelity first stays above the
        threshold for ``run_length`` consecutive periods.

        Returns the number of below-par leading periods (0 = no warmup);
        if the run never stabilizes, returns the period count.
        """
        good = 0
        for index, record in enumerate(self.records):
            if record.fidelity >= self.fidelity_threshold:
                good += 1
                if good >= run_length:
                    return index + 1 - run_length
            else:
                good = 0
        return len(self.records)


def build_session_metrics(
    gateway: BaseGateway,
    network: Network,
    spec: QuerySpec,
    true_path: PiecewisePath,
    duration_s: float,
    fidelity_threshold: float = DEFAULT_FIDELITY_THRESHOLD,
) -> SessionMetrics:
    """Convert raw delivery records into per-period metrics.

    For each period the *last on-time* delivery observation is scored (for
    MobiQuery there is normally exactly one result message; for NP the
    aggregate grows as reports trickle in, so the last on-time observation
    is the state at the deadline).
    """
    records: List[PeriodRecord] = []
    # Deadlines past the run horizon never had a chance to be served:
    # score only the periods whose deadline falls inside the run.
    in_run = int((duration_s - spec.start_s) / spec.period_s + 1e-9)
    periods = min(spec.num_periods, max(0, in_run))
    for k in range(1, periods + 1):
        deadline = spec.deadline(k)
        user_position = true_path.position_at(deadline)
        actual_area = spec.area_at(user_position, true_path.velocity_at(deadline))
        actual_ids = {
            node.node_id
            for node in network.nodes_in_disk(
                user_position, actual_area.bounding_radius
            )
            if actual_area.contains(node.position)
        }
        observations = gateway.deliveries_for(k)
        on_time = [d for d in observations if d.time <= deadline + 1e-9]
        chosen: Optional[DeliveryRecord] = None
        if on_time:
            # After a profile correction both the superseded and the new
            # collector may deliver; the user keeps the best on-time result.
            chosen = max(on_time, key=lambda d: (len(d.contributors), d.time))
        elif observations:
            chosen = observations[0]
        contributors_in_area = 0
        fidelity = 0.0
        fidelity_actual = 0.0
        prediction_error = 0.0
        delivered_at = None
        value = None
        if chosen is not None:
            delivered_at = chosen.time
            value = chosen.value
            contributors = set(chosen.contributors)
            queried_center = chosen.area_center or user_position
            prediction_error = queried_center.distance_to(user_position)
            queried_area = chosen.area or spec.area_at(queried_center)
            queried_ids = {
                node.node_id
                for node in network.nodes_in_disk(
                    queried_center, queried_area.bounding_radius
                )
                if queried_area.contains(node.position)
            }
            contributors_in_area = len(queried_ids & contributors)
            if queried_ids:
                fidelity = contributors_in_area / len(queried_ids)
            if actual_ids:
                fidelity_actual = len(actual_ids & contributors) / len(actual_ids)
        met_deadline = bool(on_time)
        records.append(
            PeriodRecord(
                k=k,
                deadline=deadline,
                user_position=user_position,
                area_node_count=len(actual_ids),
                delivered_at=delivered_at,
                value=value,
                contributors_in_area=contributors_in_area,
                fidelity=fidelity,
                fidelity_actual=fidelity_actual,
                prediction_error_m=prediction_error,
                on_time=met_deadline,
                success=met_deadline and fidelity >= fidelity_threshold,
            )
        )
    return SessionMetrics(records, fidelity_threshold)


# ----------------------------------------------------------------------
# Storage (Section 5.2)
# ----------------------------------------------------------------------
class StorageTracker:
    """Tracks live tree states and prefetch length from trace events.

    Subscribe *before* the run starts; the tracker listens for
    ``collector-assigned`` / ``collector-released`` and ``tree-created`` /
    ``tree-released`` events.
    """

    def __init__(
        self,
        tracer: Tracer,
        spec: Optional[QuerySpec] = None,
        specs: Optional[List[QuerySpec]] = None,
    ) -> None:
        self.spec = spec
        # session key -> spec, so each session's period arithmetic uses its
        # own origin *and its own period length* — a heterogeneous workload
        # mixes period_s values, and "how many periods ahead" is only
        # meaningful against the owning session's clock.  Sessions can be
        # registered up front (``specs``) or as they are admitted
        # (:meth:`register_spec`, the service path).
        self._spec_by_session: Dict[Tuple[int, int], QuerySpec] = {
            s.session_key: s
            for s in (specs if specs is not None else ([spec] if spec else []))
        }
        # (user, query, k) -> assign time; keyed per session so concurrent
        # users on one network cannot clobber each other's chain state.
        self._live_collectors: Dict[Tuple[int, int, int], float] = {}
        self.live_tree_states = 0
        self.max_tree_states = 0
        self.max_prefetch_length = 0
        self.prefetch_length_series: List[Tuple[float, int]] = []
        tracer.subscribe("collector-assigned", self._on_assigned)
        tracer.subscribe("collector-released", self._on_released)
        tracer.subscribe("tree-created", self._on_tree_created)
        tracer.subscribe("tree-released", self._on_tree_released)

    def register_spec(self, spec: QuerySpec) -> None:
        """Register (or update) one session's spec for period arithmetic.

        The service façade admits sessions while the run is live, so the
        tracker cannot always know every spec at construction time.
        """
        self._spec_by_session[spec.session_key] = spec

    @staticmethod
    def _session_key(record: TraceRecord) -> Tuple[int, int, int]:
        return (record.get("user", 0), record.get("query", 0), record["k"])

    def _on_assigned(self, record: TraceRecord) -> None:
        self._live_collectors[self._session_key(record)] = record.time
        self._update_prefetch_length(record.time)

    def _on_released(self, record: TraceRecord) -> None:
        self._live_collectors.pop(self._session_key(record), None)

    def _on_tree_created(self, record: TraceRecord) -> None:
        self.live_tree_states += 1
        self.max_tree_states = max(self.max_tree_states, self.live_tree_states)

    def _on_tree_released(self, record: TraceRecord) -> None:
        self.live_tree_states -= 1

    def _update_prefetch_length(self, now: float) -> None:
        """Prefetch length: trees set up ahead of the user's current period.

        With several sessions live, the reported length is the worst
        (longest) per-session chain — the per-node storage bound the paper
        analyses is per chain.  Each session's "current period" is computed
        against its own spec (``start_s`` *and* ``period_s``): under a
        heterogeneous workload a collector for period ``k`` of a slow
        session (say ``Tperiod = 5 s``) is much farther in the future than
        period ``k`` of a fast one, and folding both onto one reference
        period length (the old single-spec fallback) over- or under-counts
        the chain.  Sessions with no registered spec fall back to the
        tracker's primary spec when one was given, else they are skipped
        (their window cannot be computed).
        """
        per_session: Dict[Tuple[int, int], int] = {}
        for user, query, k in self._live_collectors:
            key = (user, query)
            spec = self._spec_by_session.get(key, self.spec)
            if spec is None:
                continue
            if k > spec.period_index(now):
                per_session[key] = per_session.get(key, 0) + 1
        length = max(per_session.values(), default=0)
        self.prefetch_length_series.append((now, length))
        self.max_prefetch_length = max(self.max_prefetch_length, length)


# ----------------------------------------------------------------------
# Contention (Section 5.4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SetupInterval:
    """One tree setup: when it started and where its root sits."""

    k: int
    start: float
    end: float
    pickup: Vec2


class ContentionTracker:
    """Measures the interference length from ``tree-setup-start`` events.

    A tree's setup occupies ``[start, end]`` where ``end`` is the close of
    the first PSM beacon window after the start (sleeping members cannot be
    reached before that window; nothing about the tree transmits after it).
    Two setups interfere when their intervals overlap and their roots are
    within ``2 * Rq + Rc`` (paper Figure 3).
    """

    def __init__(
        self,
        tracer: Tracer,
        sleep_period_s: float,
        active_window_s: float,
        query_radius_m: float,
        comm_range_m: float,
        psm_offset_s: float = 0.0,
    ) -> None:
        self.sleep_period_s = sleep_period_s
        self.active_window_s = active_window_s
        self.psm_offset_s = psm_offset_s
        self.interference_range_m = 2.0 * query_radius_m + comm_range_m
        self.intervals: List[SetupInterval] = []
        tracer.subscribe("tree-setup-start", self._on_setup)

    def _on_setup(self, record: TraceRecord) -> None:
        start = record.time
        shifted = start - self.psm_offset_s
        window_start = (
            math.floor(shifted / self.sleep_period_s) + 1.0
        ) * self.sleep_period_s + self.psm_offset_s
        end = window_start + self.active_window_s
        self.intervals.append(
            SetupInterval(
                k=record["k"],
                start=start,
                end=end,
                pickup=Vec2(record["pickup_x"], record["pickup_y"]),
            )
        )

    def interference_length(self) -> int:
        """Max count of setups interfering with any single tree's setup."""
        worst = 0
        r_sq = self.interference_range_m * self.interference_range_m
        for a in self.intervals:
            count = 0
            for b in self.intervals:
                if a is b:
                    continue
                if a.start <= b.end and b.start <= a.end and (
                    a.pickup.distance_sq_to(b.pickup) <= r_sq
                ):
                    count += 1
            worst = max(worst, count)
        return worst


# ----------------------------------------------------------------------
# Power (Figure 8)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PowerReport:
    """Average radio draw per node class over a run."""

    mean_sleeper_power_w: float
    mean_active_power_w: float
    sleeper_count: int
    active_count: int


def measure_power(network: Network) -> PowerReport:
    """Read the energy meters: the paper's per-sleeping-node average power."""
    sleepers = network.sleeper_nodes
    active = network.active_nodes
    sleeper_power = [n.radio.energy.average_power_w() for n in sleepers]
    active_power = [n.radio.energy.average_power_w() for n in active]
    return PowerReport(
        mean_sleeper_power_w=(
            sum(sleeper_power) / len(sleeper_power) if sleeper_power else 0.0
        ),
        mean_active_power_w=(
            sum(active_power) / len(active_power) if active_power else 0.0
        ),
        sleeper_count=len(sleepers),
        active_count=len(active),
    )
