"""Spatiotemporal query model.

A spatiotemporal query is the paper's six-tuple
``(α, F, A(Pu(t)), Tperiod, Tfresh, Td)``: an attribute, an aggregation
function, a query area relative to the user's position (a disk of radius
``Rq``), the result period, the data-freshness bound, and the query
lifetime.  The k-th result is due at ``k * Tperiod`` and must aggregate
readings taken no earlier than ``k * Tperiod - Tfresh``.

:class:`AggregateState` is the partial aggregate that flows up the query
tree (TAG-style): it carries enough sufficient statistics to finalize any
supported aggregation function, plus the contributor id set used by the
fidelity metric.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Set

from ..geometry.areas import AreaTemplate, DiskTemplate, QueryArea
from ..geometry.vec import Vec2


class Aggregation(enum.Enum):
    """In-network aggregation functions ``F`` supported by the service."""

    MIN = "min"
    MAX = "max"
    AVG = "avg"
    SUM = "sum"
    COUNT = "count"


_query_ids = itertools.count(1)


@dataclass(frozen=True)
class QuerySpec:
    """The paper's query six-tuple plus an identity.

    Attributes:
        attribute: the sensor attribute ``α`` (e.g. ``"temperature"``).
        aggregation: the aggregation function ``F``.
        radius_m: query-area radius ``Rq`` around the user (used when no
            explicit ``area_template`` is given).
        period_s: ``Tperiod`` — one result is due every period.
        freshness_s: ``Tfresh`` — readings may be at most this old when the
            result is delivered.
        lifetime_s: ``Td`` — the query session length.
        area_template: optional non-disk query-area shape (sector,
            corridor, ...) — the extension the paper's Section 3 sketches.
        query_id: unique id (auto-assigned).
        user_id: owning mobile user.  All in-network protocol state is
            keyed by ``(user_id, query_id)`` so concurrent sessions from
            different users never clobber each other.
        start_s: session origin — the k-th deadline falls at
            ``start_s + k * period_s``, which lets a multi-user workload
            stagger session starts on one shared kernel clock.
    """

    attribute: str = "temperature"
    aggregation: Aggregation = Aggregation.AVG
    radius_m: float = 150.0
    period_s: float = 2.0
    freshness_s: float = 1.0
    lifetime_s: float = 400.0
    area_template: Optional[AreaTemplate] = None
    query_id: int = field(default_factory=lambda: next(_query_ids))
    user_id: int = 0
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError("query radius must be > 0")
        if self.period_s <= 0:
            raise ValueError("query period must be > 0")
        if not 0 < self.freshness_s:
            raise ValueError("freshness bound must be > 0")
        if self.lifetime_s < self.period_s:
            raise ValueError("lifetime must cover at least one period")
        if self.start_s < 0:
            raise ValueError("session start must be >= 0")

    @property
    def session_key(self) -> "tuple[int, int]":
        """The ``(user_id, query_id)`` pair all protocol state is keyed by."""
        return (self.user_id, self.query_id)

    @property
    def end_s(self) -> float:
        """Absolute end of the session (``start_s + lifetime_s``)."""
        return self.start_s + self.lifetime_s

    @property
    def effective_radius_m(self) -> float:
        """Bounding radius of the query area (``Rq`` for the default disk)."""
        if self.area_template is not None:
            return self.area_template.bounding_radius
        return self.radius_m

    def area_at(self, center: Vec2, heading: Optional[Vec2] = None) -> QueryArea:
        """The query area anchored at ``center``, oriented along ``heading``."""
        template = self.area_template or DiskTemplate(self.radius_m)
        return template.at(center, heading)

    @property
    def num_periods(self) -> int:
        """Number of results the user expects (``floor(Td / Tperiod)``)."""
        return int(self.lifetime_s / self.period_s + 1e-9)

    def deadline(self, k: int) -> float:
        """Delivery deadline of the k-th result (k starts at 1)."""
        if k < 1:
            raise ValueError(f"period index must be >= 1, got {k}")
        return self.start_s + k * self.period_s

    def sense_time(self, k: int) -> float:
        """Earliest reading time that is still fresh at the k-th deadline."""
        return self.deadline(k) - self.freshness_s

    def period_index(self, t: float) -> int:
        """The period containing absolute time ``t`` (0 before deadline 1).

        ``period_index(deadline(k)) == k``: a deadline instant belongs to
        the period it closes, matching the gateway's watchdog arithmetic.
        The epsilon guards non-representable period lengths (0.7, 0.3, ...)
        the same way :attr:`num_periods` does.
        """
        return int((t - self.start_s) / self.period_s + 1e-9)


@dataclass
class AggregateState:
    """Mergeable partial aggregate (sufficient statistics + contributors)."""

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    contributors: Set[int] = field(default_factory=set)

    @staticmethod
    def from_reading(node_id: int, value: float) -> "AggregateState":
        """A singleton aggregate for one node's reading."""
        return AggregateState(
            count=1,
            total=value,
            minimum=value,
            maximum=value,
            contributors={node_id},
        )

    def merge(self, other: "AggregateState") -> None:
        """Fold ``other`` into this partial (idempotent per contributor).

        Duplicate contributors (a node heard through two paths) are counted
        once: the contributor set is authoritative and the statistics skip
        already-merged singletons when detectable.  In the tree protocol a
        node reports to exactly one parent, so duplicates only arise from
        MAC-level retransmission races, which the contributor check absorbs.
        """
        if other.count == 1:
            (only,) = other.contributors
            if only in self.contributors:
                return
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = (
                other.minimum
                if self.minimum is None
                else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum
                if self.maximum is None
                else max(self.maximum, other.maximum)
            )
        self.contributors |= other.contributors

    def copy(self) -> "AggregateState":
        """An independent copy (what a report message should carry)."""
        return AggregateState(
            count=self.count,
            total=self.total,
            minimum=self.minimum,
            maximum=self.maximum,
            contributors=set(self.contributors),
        )

    def value(self, aggregation: Aggregation) -> Optional[float]:
        """Finalize the aggregate; None when no readings contributed."""
        if self.count == 0:
            return None
        if aggregation is Aggregation.COUNT:
            return float(self.count)
        if aggregation is Aggregation.SUM:
            return self.total
        if aggregation is Aggregation.AVG:
            return self.total / self.count
        if aggregation is Aggregation.MIN:
            return self.minimum
        return self.maximum


@dataclass(frozen=True)
class QueryResult:
    """A finalized per-period result as seen by the user."""

    query_id: int
    k: int
    deadline: float
    delivered_at: float
    value: Optional[float]
    contributors: FrozenSet[int]

    @property
    def on_time(self) -> bool:
        """Whether the result met its delivery deadline."""
        return self.delivered_at <= self.deadline + 1e-9
