"""Closed-form analysis from Section 5 of the paper.

Every formula the paper derives, implemented symbol-for-symbol so the
benchmark harness can print paper-vs-computed tables and the simulator's
behaviour can be validated against theory:

* eq. (10) — the just-in-time prefetch forwarding time,
* eqs. (11)/(12)/(13) — worst-case prefetch length (storage cost) under
  greedy and JIT prefetching and the lifetime threshold where JIT wins,
* eq. (16) — the warmup-interval bound after a motion change,
* eqs. (17)/(18) and the ``v*`` threshold — interference lengths (network
  contention) under both schemes,
* the Section 5.2 back-of-envelope ``vprfh`` estimate (the "469 mph"
  number).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: metres per mile, using the paper's own rounding (it divides by
#: 1000 * 1.6 when converting m/s to mph, so we keep that convention for
#: apples-to-apples numbers).
PAPER_METERS_PER_MILE = 1600.0


@dataclass(frozen=True)
class AnalysisParams:
    """The symbols shared by the Section 5 formulas."""

    t_period_s: float
    t_fresh_s: float
    t_sleep_s: float
    v_user_mps: float
    v_prefetch_mps: float

    def __post_init__(self) -> None:
        if min(self.t_period_s, self.t_fresh_s, self.t_sleep_s) <= 0:
            raise ValueError("timing parameters must be > 0")
        if self.v_user_mps < 0 or self.v_prefetch_mps <= 0:
            raise ValueError("speeds must be positive")

    @property
    def speed_ratio(self) -> float:
        """``v_user / v_prfh`` — must be < 1 for prefetching to keep up
        (paper assumption (4))."""
        return self.v_user_mps / self.v_prefetch_mps


# ----------------------------------------------------------------------
# Section 5.1 — prefetch forwarding time
# ----------------------------------------------------------------------
def jit_forward_time(k_sender: int, params: AnalysisParams) -> float:
    """Eq. (10): latest safe time for collector ``k_sender`` to forward.

    ``tsend(k-1) <= (k-1) * Tperiod - Tsleep - 2 * Tfresh`` — the bound
    under which the (k_sender+1)-th query deadline is still met.
    """
    if k_sender < 0:
        raise ValueError("collector index must be >= 0")
    return (
        k_sender * params.t_period_s
        - params.t_sleep_s
        - 2.0 * params.t_fresh_s
    )


def tree_setup_bound(params: AnalysisParams) -> float:
    """Eq. (7): ``Ttree <= Tfresh + Tsleep`` (using ``Tsetup <= Tfresh``)."""
    return params.t_fresh_s + params.t_sleep_s


# ----------------------------------------------------------------------
# Section 5.2 — storage cost (prefetch length)
# ----------------------------------------------------------------------
def prefetch_length_greedy(lifetime_s: float, params: AnalysisParams) -> int:
    """Eq. (11): worst-case trees set up ahead of the user under greedy.

    ``PLgp = floor(Td/Tp) - floor(Td/Tp * vuser/vprfh)`` — grows with the
    query lifetime.
    """
    if lifetime_s < 0:
        raise ValueError("lifetime must be >= 0")
    periods = math.floor(lifetime_s / params.t_period_s)
    visited = math.floor(lifetime_s / params.t_period_s * params.speed_ratio)
    return int(periods - visited)


def prefetch_length_jit(params: AnalysisParams) -> int:
    """Eq. (12): constant worst-case prefetch length under JIT.

    ``PLjit = ceil((Tsleep + 2*Tfresh) / Tperiod) + 1``.
    """
    return (
        int(
            math.ceil(
                (params.t_sleep_s + 2.0 * params.t_fresh_s) / params.t_period_s
            )
        )
        + 1
    )


def jit_storage_wins_lifetime(params: AnalysisParams) -> float:
    """Eq. (13): query lifetime beyond which JIT stores strictly less.

    ``Td > (Tsleep + 2*Tfresh + Tperiod) / (1 - vuser/vprfh)``.
    """
    ratio = params.speed_ratio
    if ratio >= 1.0:
        return math.inf
    return (
        params.t_sleep_s + 2.0 * params.t_fresh_s + params.t_period_s
    ) / (1.0 - ratio)


# ----------------------------------------------------------------------
# Section 5.2 — prefetch speed estimate
# ----------------------------------------------------------------------
def prefetch_speed_mps(
    hop_distance_m: float,
    hops: int,
    message_bytes: int,
    effective_bandwidth_bps: float,
) -> float:
    """The paper's ``vprfh`` estimate: distance over store-and-forward time.

    With the Section 5.2 numbers (100 m, 5 hops, 60-byte message, 5 kb/s
    effective bandwidth) this evaluates to ~208 m/s, the paper's
    "approximately 469 mph".
    """
    if hops <= 0 or hop_distance_m <= 0:
        raise ValueError("hops and distance must be > 0")
    if effective_bandwidth_bps <= 0:
        raise ValueError("bandwidth must be > 0")
    transfer_s = hops * (message_bytes * 8.0) / effective_bandwidth_bps
    return hop_distance_m / transfer_s


def mps_to_paper_mph(v_mps: float) -> float:
    """m/s to mph with the paper's 1600 m/mile rounding convention."""
    return v_mps * 3600.0 / PAPER_METERS_PER_MILE


# ----------------------------------------------------------------------
# Section 5.3 — warmup interval
# ----------------------------------------------------------------------
def warmup_periods(advance_time_s: float, params: AnalysisParams) -> int:
    """Eq. (16): worst-case periods with degraded fidelity after a change.

    ``k <= ceil((Tsleep + 2*Tfresh - (1 - r) * Ta) / (Tperiod * (1 - r)))``
    with ``r = vuser / vprfh``.  Clamped at zero: a sufficiently early
    profile removes the warmup entirely.
    """
    r = params.speed_ratio
    if r >= 1.0:
        raise ValueError("warmup bound requires v_user < v_prefetch")
    numerator = (
        params.t_sleep_s
        + 2.0 * params.t_fresh_s
        - (1.0 - r) * advance_time_s
    )
    k = math.ceil(numerator / (params.t_period_s * (1.0 - r)))
    return max(0, int(k))


def warmup_interval_s(advance_time_s: float, params: AnalysisParams) -> float:
    """``Tw = k * Tperiod`` for the eq. (16) bound."""
    return warmup_periods(advance_time_s, params) * params.t_period_s


def warmup_free_advance_time(params: AnalysisParams) -> float:
    """The ``Ta`` at which the warmup vanishes:
    ``Ta = (2*Tfresh + Tsleep) / (1 - vuser/vprfh)``."""
    r = params.speed_ratio
    if r >= 1.0:
        return math.inf
    return (2.0 * params.t_fresh_s + params.t_sleep_s) / (1.0 - r)


# ----------------------------------------------------------------------
# Section 5.4 — network contention (interference length)
# ----------------------------------------------------------------------
def spatial_interference_bound(
    query_radius_m: float, comm_range_m: float, params: AnalysisParams
) -> int:
    """Eq. (17): trees close enough to interfere with a given tree.

    ``Ms = ceil((4*Rq + 2*Rc) / (vuser * Tperiod))`` — roots within
    ``2*Rq + Rc`` of each other can interfere, and consecutive pickup
    points are ``vuser * Tperiod`` apart.
    """
    if query_radius_m <= 0 or comm_range_m <= 0:
        raise ValueError("radii must be > 0")
    if params.v_user_mps <= 0:
        raise ValueError("spatial bound needs a moving user")
    return int(
        math.ceil(
            (4.0 * query_radius_m + 2.0 * comm_range_m)
            / (params.v_user_mps * params.t_period_s)
        )
    )


def temporal_interference_greedy(params: AnalysisParams) -> int:
    """Eq. (18): overlapping setups under greedy prefetching.

    ``Mt_gp <= ceil((Tsleep + Tfresh) * vprfh / (Tperiod * vuser))`` —
    greedy spaces setups by the prefetch transit time, so a huge number of
    setups overlap any one tree's ``Ttree``.
    """
    if params.v_user_mps <= 0:
        raise ValueError("temporal bound needs a moving user")
    return int(
        math.ceil(
            (params.t_sleep_s + params.t_fresh_s)
            * params.v_prefetch_mps
            / (params.t_period_s * params.v_user_mps)
        )
    )


def temporal_interference_jit(params: AnalysisParams) -> int:
    """JIT spaces setups by ``Tperiod``: ``Mt_jit = ceil(Ttree / Tperiod)``.

    Using the eq. (7) bound ``Ttree <= Tsleep + Tfresh``.
    """
    return int(
        math.ceil((params.t_sleep_s + params.t_fresh_s) / params.t_period_s)
    )


def interference_length_greedy(
    query_radius_m: float, comm_range_m: float, params: AnalysisParams
) -> int:
    """``Mgp = min(Mt_gp, Ms)``."""
    return min(
        temporal_interference_greedy(params),
        spatial_interference_bound(query_radius_m, comm_range_m, params),
    )


def interference_length_jit(
    query_radius_m: float, comm_range_m: float, params: AnalysisParams
) -> int:
    """``Mjit = min(Mt_jit, Ms)``."""
    return min(
        temporal_interference_jit(params),
        spatial_interference_bound(query_radius_m, comm_range_m, params),
    )


def contention_crossover_speed(
    query_radius_m: float, comm_range_m: float, t_sleep_s: float, t_fresh_s: float
) -> float:
    """``v* = (2*Rc + 4*Rq) / (Tsleep + Tfresh)``.

    Below ``v*`` JIT causes strictly less contention than greedy; above it
    JIT degenerates to greedy-like forwarding and they tie.
    """
    if query_radius_m <= 0 or comm_range_m <= 0:
        raise ValueError("radii must be > 0")
    if t_sleep_s + t_fresh_s <= 0:
        raise ValueError("times must be > 0")
    return (2.0 * comm_range_m + 4.0 * query_radius_m) / (t_sleep_s + t_fresh_s)
